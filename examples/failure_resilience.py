#!/usr/bin/env python3
"""Failure resilience of the clustered stack.

Cluster-heads are single points of (local) failure: when one dies, its
whole cluster must re-affiliate, paying a burst of CLUSTER messages and
a round of route updates.  This example crashes an escalating fraction
of the network mid-run — always preferring cluster-heads, the worst
case — and shows:

* the maintenance protocol repairs the structure after every crash
  (P1/P2 verified continuously),
* the control-message cost of each repair wave,
* how delivery of cross-cluster traffic degrades and recovers.

Run::

    python examples/failure_resilience.py
"""

from __future__ import annotations

import numpy as np

from repro.clustering import (
    ClusterMaintenanceProtocol,
    LowestIdClustering,
    check_properties,
)
from repro.core.params import NetworkParameters
from repro.mobility import EpochRandomWaypointModel
from repro.routing import HybridRoutingProtocol, IntraClusterRoutingProtocol
from repro.sim import HelloProtocol, Simulation

N_NODES = 150


def delivery_probe(sim, hybrid, rng, attempts=30) -> float:
    """Fraction of random pairs with a usable route right now."""
    delivered = tried = 0
    active = np.flatnonzero(sim.active)
    while tried < attempts:
        u, v = rng.choice(active, size=2, replace=False)
        tried += 1
        if hybrid.route(sim, int(u), int(v)) is not None:
            delivered += 1
    return delivered / attempts


def main() -> None:
    params = NetworkParameters.from_fractions(
        n_nodes=N_NODES, range_fraction=0.18, velocity_fraction=0.02
    )
    sim = Simulation(
        params, EpochRandomWaypointModel(params.velocity, epoch=1.0), seed=11
    )
    sim.attach(HelloProtocol("event"))
    maintenance = ClusterMaintenanceProtocol(LowestIdClustering())
    intra = IntraClusterRoutingProtocol(maintenance)
    sim.attach(intra)
    sim.attach(maintenance)
    hybrid = sim.attach(HybridRoutingProtocol(maintenance, intra))
    sim.stats.start_measuring()
    rng = np.random.default_rng(12)

    print(f"N={N_NODES}, r=0.18a — crashing heads in waves\n")
    header = (
        f"{'wave':>4s} {'failed':>7s} {'clusters':>9s} {'P1/P2':>6s} "
        f"{'CLUSTER msgs':>13s} {'delivery':>9s}"
    )
    print(header)
    print("-" * len(header))

    cumulative_failed = 0
    for wave in range(6):
        # Crash the two largest clusters' heads (worst case), if any left.
        state = maintenance.state
        live_heads = [
            int(h) for h in state.heads() if sim.active[h]
        ]
        live_heads.sort(key=lambda h: -len(state.members_of(h)))
        victims = live_heads[:2]
        before_msgs = sim.stats.message_count("cluster")
        for victim in victims:
            sim.fail_node(victim)
            cumulative_failed += 1
        # Let the repair play out.
        for _ in range(20):
            sim.step()
        violations = check_properties(maintenance.state, sim.adjacency)
        repair_msgs = sim.stats.message_count("cluster") - before_msgs
        rate = delivery_probe(sim, hybrid, rng)
        print(
            f"{wave:4d} {cumulative_failed:7d} "
            f"{maintenance.cluster_count():9d} "
            f"{'ok' if violations.ok else 'BROKEN':>6s} "
            f"{repair_msgs:13d} {rate:9.2f}"
        )

    # Now recover everyone and verify the structure heals.
    for node in sim.failed_nodes:
        sim.recover_node(int(node))
    for _ in range(30):
        sim.step()
    violations = check_properties(maintenance.state, sim.adjacency)
    rate = delivery_probe(sim, hybrid, rng)
    print(
        f"\nafter full recovery: structure "
        f"{'ok' if violations.ok else 'BROKEN'}, "
        f"{maintenance.cluster_count()} clusters, delivery {rate:.2f}"
    )


if __name__ == "__main__":
    main()
