#!/usr/bin/env python3
"""Quickstart: the overhead model and its simulation validation.

This example walks the library's core loop in three steps:

1. Describe a network with :class:`~repro.core.params.NetworkParameters`.
2. Evaluate the paper's closed-form overhead model (Eqns 1-18).
3. Run the full simulation stack at the same parameter point and
   compare the measured control message frequencies with the model —
   exactly the validation of the paper's Section 4.

Run::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    NetworkParameters,
    expected_cluster_count,
    expected_degree,
    lid_head_probability,
    overhead_breakdown,
)
from repro.clustering import ClusterMaintenanceProtocol, LowestIdClustering
from repro.mobility import EpochRandomWaypointModel
from repro.routing import IntraClusterRoutingProtocol
from repro.sim import HelloProtocol, Simulation


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A 200-node network: range 15% of the side, speed 5% per unit t.
    # ------------------------------------------------------------------
    params = NetworkParameters.from_fractions(
        n_nodes=200, range_fraction=0.15, velocity_fraction=0.05
    )
    print(f"network: N={params.n_nodes}, side={params.side:.3g}, "
          f"r={params.tx_range:.3g}, v={params.velocity:.3g}")

    # ------------------------------------------------------------------
    # 2. The closed-form model.
    # ------------------------------------------------------------------
    degree = float(
        expected_degree(params.n_nodes, params.density, params.tx_range)
    )
    p_head = float(
        lid_head_probability(params.n_nodes, params.density, params.tx_range)
    )
    model = overhead_breakdown(params, p_head)
    print(f"\nanalysis: expected degree d = {degree:.2f}")
    print(f"analysis: LID head ratio  P = {p_head:.3f} "
          f"(≈ {expected_cluster_count(params):.1f} clusters)")
    for name, value in model.frequencies.items():
        print(f"analysis: {name:10s} = {value:.3f} msgs/node/t")
    print(f"analysis: total overhead = {model.total:.1f} bits/node/t")

    # ------------------------------------------------------------------
    # 3. Simulate and compare (the paper plugs the *measured* P into
    #    the model; we do the same).
    # ------------------------------------------------------------------
    sim = Simulation(
        params, EpochRandomWaypointModel(params.velocity, epoch=1.0), seed=0
    )
    sim.attach(HelloProtocol(mode="event"))
    maintenance = ClusterMaintenanceProtocol(LowestIdClustering())
    intra = IntraClusterRoutingProtocol(maintenance)
    sim.attach(intra)       # attach order matters: routing sees
    sim.attach(maintenance)  # pre-repair membership on link breaks
    print("\nsimulating 20 time units (plus 2 warm-up)...")
    stats = sim.run(duration=20.0, warmup=2.0)

    measured_p = maintenance.head_ratio()
    refreshed = overhead_breakdown(params, measured_p)
    print(f"simulation: measured P = {measured_p:.3f}")
    print(f"{'metric':10s} {'simulated':>10s} {'analysis':>10s}")
    for key, category in (
        ("f_hello", "hello"),
        ("f_cluster", "cluster"),
        ("f_route", "route"),
    ):
        simulated = stats.per_node_frequency(category)
        predicted = refreshed.frequencies[key]
        print(f"{key:10s} {simulated:10.3f} {predicted:10.3f}")
    print("\n(f_hello and f_cluster should agree within tens of percent;"
          "\n f_route's analysis is an explicit lower bound — see DESIGN.md)")


if __name__ == "__main__":
    main()
