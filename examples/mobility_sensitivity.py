#!/usr/bin/env python3
"""How the mobility *pattern* shifts clustering overhead.

The paper's analysis assumes the (B)CV model and validates on an
epoch-synchronized RWP variant engineered to share its statistics; its
conclusion flags "the influence of node mobility patterns" as future
work.  This example does that study: the same clustered stack is run
under eight mobility models at matched nominal speed, and the measured
link-change and CLUSTER/ROUTE rates are compared against the BCV-based
analysis.

The headline: models with isotropic, uncorrelated motion (CV,
epoch-RWP, random walk, random direction, Gauss-Markov) track the BCV
analysis within ~15%; classic RWP runs hotter (its center-biased
density raises encounter rates); street-bound Manhattan motion runs
cooler (collinear velocities); and group mobility breaks the CLUSTER
model completely — coherent group motion keeps members next to their
heads, collapsing the maintenance rate and the head ratio the analysis
keys on.  The analysis is a *mobility-pattern-specific* result, not a
universal law.

Run::

    python examples/mobility_sensitivity.py
"""

from __future__ import annotations

from repro.clustering import ClusterMaintenanceProtocol, LowestIdClustering
from repro.core import overhead as overhead_model
from repro.core.params import NetworkParameters
from repro.mobility import (
    ConstantVelocityModel,
    EpochRandomWaypointModel,
    GaussMarkovModel,
    ManhattanModel,
    RandomDirectionModel,
    RandomWalkModel,
    RandomWaypointModel,
    ReferencePointGroupModel,
)
from repro.routing import IntraClusterRoutingProtocol
from repro.sim import HelloProtocol, Simulation

N_NODES = 150
RANGE_FRACTION = 0.15
SPEED = 0.05  # nominal speed as fraction of the side
DURATION = 15.0
WARMUP = 2.0


def build_models():
    """Each model configured for the same nominal speed."""
    return {
        "cv": ConstantVelocityModel(SPEED),
        "epoch-rwp": EpochRandomWaypointModel(SPEED, epoch=1.0),
        "rwp": RandomWaypointModel((0.5 * SPEED, 1.5 * SPEED)),
        "rwp+pause": RandomWaypointModel(
            (0.5 * SPEED, 1.5 * SPEED), pause_range=(0.0, 2.0)
        ),
        "walk": RandomWalkModel((0.5 * SPEED, 1.5 * SPEED), interval=1.0),
        "direction": RandomDirectionModel((0.5 * SPEED, 1.5 * SPEED)),
        "gauss-markov": GaussMarkovModel(SPEED, alpha=0.75),
        "manhattan": ManhattanModel((0.5 * SPEED, 1.5 * SPEED), blocks=5),
        "rpgm": ReferencePointGroupModel(
            n_groups=6,
            group_radius=0.08,
            member_speed=SPEED,
            center_speed_range=(0.5 * SPEED, 1.5 * SPEED),
        ),
    }


def measure(model) -> dict[str, float]:
    params = NetworkParameters.from_fractions(
        n_nodes=N_NODES,
        range_fraction=RANGE_FRACTION,
        velocity_fraction=SPEED,
    )
    sim = Simulation(params, model, seed=3)
    sim.attach(HelloProtocol("event"))
    maintenance = ClusterMaintenanceProtocol(LowestIdClustering())
    intra = IntraClusterRoutingProtocol(maintenance)
    sim.attach(intra)
    sim.attach(maintenance)
    stats = sim.run(duration=DURATION, warmup=WARMUP)
    return {
        "f_hello": stats.per_node_frequency("hello"),
        "f_cluster": stats.per_node_frequency("cluster"),
        "f_route": stats.per_node_frequency("route"),
        "P": maintenance.head_ratio(),
    }


def main() -> None:
    params = NetworkParameters.from_fractions(
        n_nodes=N_NODES, range_fraction=RANGE_FRACTION, velocity_fraction=SPEED
    )
    f_hello_analysis = overhead_model.hello_frequency(params)

    print(
        f"N={N_NODES}, r={RANGE_FRACTION}a, nominal v={SPEED}a/t  —  "
        f"BCV analysis f_hello = {f_hello_analysis:.3f}\n"
    )
    header = (
        f"{'model':12s} {'f_hello':>8s} {'vs ana':>7s} "
        f"{'f_cluster':>10s} {'f_route':>8s} {'P':>6s}"
    )
    print(header)
    print("-" * len(header))
    for name, model in build_models().items():
        metrics = measure(model)
        ratio = metrics["f_hello"] / f_hello_analysis
        print(
            f"{name:12s} {metrics['f_hello']:8.3f} {ratio:7.2f} "
            f"{metrics['f_cluster']:10.3f} {metrics['f_route']:8.2f} "
            f"{metrics['P']:6.3f}"
        )

    print(
        "\nreading: 'vs ana' near 1.0 means the BCV overhead model "
        "transfers to that\nmobility pattern.  Classic RWP runs hot (its "
        "center-biased stationary density\nraises encounter rates); "
        "manhattan runs cool (collinear street motion);\nand rpgm breaks "
        "the CLUSTER model outright — group-coherent motion keeps\n"
        "members beside their heads, collapsing f_cluster and P.  This "
        "is the\nmobility-pattern sensitivity the paper leaves as "
        "future work."
    )


if __name__ == "__main__":
    main()
