#!/usr/bin/env python3
"""Clustered hybrid routing vs flat DSDV and AODV, head to head.

The paper's introduction argues that flat proactive routing "quickly
becomes unacceptable as network size increases" and that clustering
reduces both storage and communication overhead.  This example
quantifies the claim on the simulator: the exact same mobility trace
and traffic workload are replayed against three protocol stacks, and
per-node control overhead, message rates, per-node routing-state size
and delivery are compared.

Run::

    python examples/protocol_comparison.py
"""

from __future__ import annotations

import numpy as np

from repro.clustering import ClusterMaintenanceProtocol, LowestIdClustering
from repro.core.params import NetworkParameters
from repro.mobility import (
    EpochRandomWaypointModel,
    TraceRecorder,
    TraceReplayModel,
)
from repro.routing import (
    AodvProtocol,
    DsdvProtocol,
    HybridRoutingProtocol,
    IntraClusterRoutingProtocol,
)
from repro.sim import HelloProtocol, Simulation

N_NODES = 150
DURATION = 15.0
WARMUP = 2.0
TRAFFIC_PAIRS = 40


def record_shared_trace(params: NetworkParameters, seed: int):
    """One mobility trace, replayed identically for every stack."""
    recorder = TraceRecorder(
        EpochRandomWaypointModel(params.velocity, epoch=1.0)
    )
    sim = Simulation(params, recorder, seed=seed)
    for _ in range(int(round((DURATION + WARMUP) / sim.dt))):
        sim.step()
    return recorder.trace, sim.dt


def run_stack(name: str, params, trace, dt, pairs):
    sim = Simulation(params, TraceReplayModel(trace), dt=dt, seed=0)
    state_size = None

    if name == "hybrid":
        sim.attach(HelloProtocol("event"))
        maintenance = ClusterMaintenanceProtocol(LowestIdClustering())
        intra = IntraClusterRoutingProtocol(maintenance)
        sim.attach(intra)
        sim.attach(maintenance)
        router = sim.attach(HybridRoutingProtocol(maintenance, intra))
        route = lambda s, d: router.route(sim, s, d)  # noqa: E731
        state_fn = lambda: np.mean(  # noqa: E731
            [intra.table_size(sim, n) for n in range(sim.n_nodes)]
        )
    elif name == "dsdv":
        router = sim.attach(DsdvProtocol(periodic_interval=1.0))
        route = lambda s, d: router.path(sim, s, d)  # noqa: E731
        state_fn = lambda: np.mean(  # noqa: E731
            [len(t) for t in router.tables]
        )
    else:  # aodv
        sim.attach(HelloProtocol("event"))
        router = sim.attach(AodvProtocol())
        route = lambda s, d: router.route(sim, s, d)  # noqa: E731
        state_fn = lambda: router.installed_entries / sim.n_nodes  # noqa: E731

    warmup_steps = int(round(WARMUP / dt))
    total_steps = len(trace) - 1
    sim.stats.stop_measuring()
    for _ in range(warmup_steps):
        sim.step()
    sim.stats.start_measuring()

    request_at = {
        warmup_steps
        + int(round(k * (total_steps - warmup_steps) / len(pairs))): pair
        for k, pair in enumerate(pairs)
    }
    delivered = 0
    for step in range(warmup_steps, total_steps):
        sim.step()
        if step in request_at:
            source, destination = request_at[step]
            if route(source, destination) is not None:
                delivered += 1
    sim.stats.stop_measuring()
    return {
        "overhead": sim.stats.total_overhead(),
        "messages": sum(
            sim.stats.per_node_frequency(c) for c in sim.stats.totals
        ),
        "state": float(state_fn()),
        "delivery": delivered / len(pairs),
    }


def main() -> None:
    params = NetworkParameters.from_fractions(
        n_nodes=N_NODES, range_fraction=0.16, velocity_fraction=0.03
    )
    trace, dt = record_shared_trace(params, seed=7)
    rng = np.random.default_rng(8)
    pairs = []
    while len(pairs) < TRAFFIC_PAIRS:
        u, v = rng.integers(0, N_NODES, 2)
        if u != v:
            pairs.append((int(u), int(v)))

    print(
        f"N={N_NODES}, r={params.range_fraction:.2f}a, "
        f"v={params.velocity_fraction:.2f}a/t, {TRAFFIC_PAIRS} requests, "
        f"{DURATION:.0f}t measured\n"
    )
    header = (
        f"{'stack':8s} {'bits/node/t':>12s} {'msgs/node/t':>12s} "
        f"{'state/node':>11s} {'delivery':>9s}"
    )
    print(header)
    print("-" * len(header))
    results = {}
    for stack in ("hybrid", "dsdv", "aodv"):
        metrics = run_stack(stack, params, trace, dt, list(pairs))
        results[stack] = metrics
        print(
            f"{stack:8s} {metrics['overhead']:12.1f} "
            f"{metrics['messages']:12.2f} {metrics['state']:11.1f} "
            f"{metrics['delivery']:9.2f}"
        )

    saving = 1.0 - results["hybrid"]["overhead"] / results["dsdv"]["overhead"]
    print(
        f"\nclustered hybrid control overhead is {saving:.0%} below flat "
        "DSDV,\nwith per-node routing state bounded by the cluster size "
        "rather than N\n(the storage-reduction claim of the paper's "
        "introduction)."
    )


if __name__ == "__main__":
    main()
