#!/usr/bin/env python3
"""Capacity planning with the overhead model.

The paper's stated purpose: "provide valuable insights into the amount
of overhead that clustering algorithms may incur in different network
environments ... to facilitate the design of efficient clustering
algorithms."  This example uses the closed-form model as a *design
tool*: given a deployment (a sensor field with a fixed per-node
bandwidth budget for control traffic), find the transmission ranges
that keep the clustered stack's control overhead within budget, and
show how the feasible window shifts with node speed.

Everything here is pure analysis — no simulation — so it runs in
milliseconds, which is exactly why a closed form beats a simulator for
design-space exploration.

Run::

    python examples/capacity_planning.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    MessageSizes,
    NetworkParameters,
    lid_head_probability,
    overhead_breakdown,
    total_overhead,
)


#: Deployment: 500 nodes over a 1 km x 1 km field.
N_NODES = 500
SIDE_M = 1000.0
#: Control-plane budget per node, bits/second.
BUDGET_BPS = 2000.0
#: Realistic packet sizes (bits) for a low-power radio.
MESSAGES = MessageSizes(p_hello=320.0, p_cluster=256.0, p_route=192.0)


def overhead_at(tx_range: float, speed: float) -> tuple[float, float]:
    """Total per-node overhead (bits/s) and head ratio at one point."""
    params = NetworkParameters.from_side(
        n_nodes=N_NODES,
        side=SIDE_M,
        tx_range=tx_range,
        velocity=speed,
        messages=MESSAGES,
    )
    p_head = float(
        lid_head_probability(params.n_nodes, params.density, params.tx_range)
    )
    return (
        total_overhead(params, p_head, full_table=True),
        p_head,
    )


def feasible_window(speed: float, ranges: np.ndarray) -> tuple[float, float] | None:
    """The contiguous range window whose overhead fits the budget."""
    feasible = [r for r in ranges if overhead_at(float(r), speed)[0] <= BUDGET_BPS]
    if not feasible:
        return None
    return (min(feasible), max(feasible))


def main() -> None:
    ranges = np.linspace(40.0, 400.0, 37)

    print(f"deployment: {N_NODES} nodes on {SIDE_M:.0f} m x {SIDE_M:.0f} m, "
          f"budget {BUDGET_BPS:.0f} bits/s/node\n")

    # ------------------------------------------------------------------
    # 1. Overhead landscape at walking speed.
    # ------------------------------------------------------------------
    speed = 1.5  # m/s
    print(f"speed {speed} m/s — overhead vs transmission range:")
    print(f"{'r (m)':>7s} {'P':>7s} {'clusters':>9s} {'O_total':>10s} {'fits?':>6s}")
    for tx_range in ranges[::6]:
        overhead, p_head = overhead_at(float(tx_range), speed)
        marker = "yes" if overhead <= BUDGET_BPS else "no"
        print(
            f"{tx_range:7.0f} {p_head:7.3f} {p_head * N_NODES:9.1f} "
            f"{overhead:10.1f} {marker:>6s}"
        )

    # ------------------------------------------------------------------
    # 2. The feasible window shrinks with mobility (overhead is Θ(v)).
    # ------------------------------------------------------------------
    print("\nfeasible transmission-range window vs node speed:")
    print(f"{'v (m/s)':>8s} {'window (m)':>20s}")
    for speed in (0.5, 1.0, 2.0, 4.0, 8.0, 16.0):
        window = feasible_window(speed, ranges)
        if window is None:
            print(f"{speed:8.1f} {'none — over budget':>20s}")
        else:
            print(f"{speed:8.1f} {f'{window[0]:.0f} .. {window[1]:.0f}':>20s}")

    # ------------------------------------------------------------------
    # 3. Where does the budget go?  (Section 6: ROUTE dominates.)
    # ------------------------------------------------------------------
    tx_range, speed = 150.0, 1.5
    params = NetworkParameters.from_side(
        n_nodes=N_NODES, side=SIDE_M, tx_range=tx_range, velocity=speed,
        messages=MESSAGES,
    )
    p_head = float(
        lid_head_probability(params.n_nodes, params.density, params.tx_range)
    )
    breakdown = overhead_breakdown(params, p_head, full_table=True)
    print(f"\nbudget split at r={tx_range:.0f} m, v={speed} m/s:")
    for name, value in (
        ("HELLO", breakdown.hello_overhead),
        ("CLUSTER", breakdown.cluster_overhead),
        ("ROUTE", breakdown.route_overhead),
    ):
        share = value / breakdown.total
        bar = "#" * int(round(40 * share))
        print(f"  {name:8s} {value:8.1f} bits/s  {bar}")


if __name__ == "__main__":
    main()
