"""Closed-loop beacon-rate control (adaptive HELLO periods).

The paper's HELLO bound (Eqn 4) says a node *needs* to beacon only at
its link-generation rate ``f_hello = 8 d v / (pi^2 r)``; the deployable
``periodic`` beacon mode instead burns a fixed interval regardless of
local mobility.  This package closes the loop: a
:class:`~repro.control.policies.BeaconPolicy` picks each node's *next*
beacon interval from measured per-node link dynamics, which a
:class:`~repro.control.signals.ControlSignals` instance taps directly
off the engine's :class:`~repro.spatial.LinkEvents` stream (one tap per
simulation, shared by every policy, so no policy re-derives churn).

Policies::

    fixed               constant interval (bit-identical to `periodic`)
    analytic-rate       interval = 1 / Eqn-4 rate at the local degree
    churn-feedback      Gavalas-style multiplicative increase/decrease
    staleness-bounded   largest interval keeping expected neighbor-table
                        staleness under a target

The HELLO side of the loop lives in :class:`repro.sim.beacon
.HelloProtocol` (``mode="adaptive"``); this package deliberately does
not import :mod:`repro.sim`, so the dependency arrow points one way.
"""

from .policies import (
    POLICIES,
    AnalyticRatePolicy,
    BeaconPolicy,
    ChurnFeedbackPolicy,
    FixedPeriodPolicy,
    StalenessBoundedPolicy,
    build_policy,
)
from .signals import ControlSignals

__all__ = [
    "POLICIES",
    "AnalyticRatePolicy",
    "BeaconPolicy",
    "ChurnFeedbackPolicy",
    "ControlSignals",
    "FixedPeriodPolicy",
    "StalenessBoundedPolicy",
    "build_policy",
]
