"""Beacon-interval policies: the decision side of the control loop.

A :class:`BeaconPolicy` answers one question per beacon: *given what we
measured about this node's link dynamics, how long until its next
HELLO?*  The measurement side is a
:class:`~repro.control.signals.ControlSignals` instance handed in by
the caller; policies never touch the simulation directly, which keeps
them trivially unit-testable against synthetic signals.

Four concrete policies span the design space:

``fixed``
    A constant interval.  Declared non-adaptive; with it the adaptive
    HELLO path reproduces the classic ``periodic`` mode *bit for bit*
    (same RNG draws, same float arithmetic, same attribution cause).
``analytic-rate``
    Open-loop: beacon at the inverse of the paper's Eqn-4 rate
    evaluated at the node's *measured* degree — the rate the analysis
    says is necessary, no more.
``churn-feedback``
    Closed-loop, Gavalas-style multiplicative increase/decrease: widen
    the interval while measured churn sits below the analytic
    expectation for the node's degree, shrink it multiplicatively when
    churn runs hot.
``staleness-bounded``
    Closed-loop on the *output* metric: choose the largest interval
    whose expected neighbor-table staleness stays under a target
    (defaulting to what the fixed baseline would suffer), so quiet
    nodes stretch their period and churning nodes tighten it.

Intervals from adaptive policies are clamped to
``[min_interval, max_interval]`` — the loop must neither melt down to
per-step beaconing nor starve neighbor tables entirely.
"""

from __future__ import annotations

import inspect

import numpy as np

from ..core.linkdynamics import (
    bcv_link_change_rate,
    bcv_link_generation_rate,
)
from ..obs.attribution import (
    CAUSE_ANALYTIC_HELLO,
    CAUSE_CHURN_HELLO,
    CAUSE_PERIODIC_HELLO,
    CAUSE_STALENESS_HELLO,
)

__all__ = [
    "POLICIES",
    "AnalyticRatePolicy",
    "BeaconPolicy",
    "ChurnFeedbackPolicy",
    "FixedPeriodPolicy",
    "StalenessBoundedPolicy",
    "build_policy",
]


def _positive(name: str, value: float) -> float:
    value = float(value)
    if value <= 0.0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


class BeaconPolicy:
    """Per-node beacon-interval policy.

    Attributes
    ----------
    policy_name:
        Spec name (the ``"policy"`` key of :func:`build_policy`).
    cause:
        Attribution cause label every HELLO sent under this policy
        carries — one cause per policy, so the overhead ledger can
        split adaptive beacons out of the ``periodic-hello`` bucket.
    adaptive:
        ``False`` only for :class:`FixedPeriodPolicy`; the HELLO
        protocol uses it to skip control telemetry (and any float
        arithmetic that could perturb bit-identity) on the fixed path.
    """

    policy_name = "policy"
    cause = CAUSE_PERIODIC_HELLO
    adaptive = True

    min_interval: float
    max_interval: float

    def initial_interval(self) -> float:
        """Interval used for phase randomization before any feedback."""
        raise NotImplementedError

    def next_interval(self, node: int, signals) -> float:
        """Time until ``node``'s next beacon, given current signals."""
        raise NotImplementedError

    def spec(self) -> dict:
        """JSON-serializable spec; ``build_policy(spec)`` round-trips."""
        raise NotImplementedError

    def _clamp(self, interval: float) -> float:
        return min(self.max_interval, max(self.min_interval, interval))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = ", ".join(
            f"{key}={value!r}" for key, value in sorted(self.spec().items())
            if key != "policy"
        )
        return f"{type(self).__name__}({fields})"


class FixedPeriodPolicy(BeaconPolicy):
    """Constant beacon interval — the classic ``periodic`` mode."""

    policy_name = "fixed"
    cause = CAUSE_PERIODIC_HELLO
    adaptive = False

    def __init__(self, interval: float = 1.0) -> None:
        self.interval = _positive("interval", interval)
        self.min_interval = self.interval
        self.max_interval = self.interval

    def initial_interval(self) -> float:
        return self.interval

    def next_interval(self, node: int, signals) -> float:
        # Returned verbatim (no clamp arithmetic): the adaptive HELLO
        # path must accumulate exactly the same float the periodic
        # path adds.
        return self.interval

    def spec(self) -> dict:
        return {"policy": self.policy_name, "interval": self.interval}


class AnalyticRatePolicy(BeaconPolicy):
    """Beacon at the inverse of the Eqn-4 rate for the local degree.

    The paper's HELLO lower bound says a node gains neighbors at
    ``lambda_gen = 8 d v / (pi^2 r)`` (Eqn 4); beaconing any faster
    buys nothing the analysis can account for.  This policy sets
    ``interval_i = 1 / lambda_gen(d_i)`` from the node's measured
    degree — open-loop in churn, adaptive in topology.
    """

    policy_name = "analytic-rate"
    cause = CAUSE_ANALYTIC_HELLO

    def __init__(
        self,
        interval: float = 1.0,
        min_interval: float = 0.1,
        max_interval: float = 8.0,
    ) -> None:
        self.interval = _positive("interval", interval)
        self.min_interval = _positive("min_interval", min_interval)
        self.max_interval = _positive("max_interval", max_interval)
        if self.max_interval < self.min_interval:
            raise ValueError(
                f"max_interval ({max_interval}) must be >= min_interval "
                f"({min_interval})"
            )

    def initial_interval(self) -> float:
        return self.interval

    def next_interval(self, node: int, signals) -> float:
        degree = signals.degree(node)
        if degree <= 0.0:
            return self.max_interval
        params = signals.params
        rate = float(
            bcv_link_generation_rate(degree, params.tx_range, params.velocity)
        )
        if rate <= 0.0:
            return self.max_interval
        return self._clamp(1.0 / rate)

    def spec(self) -> dict:
        return {
            "policy": self.policy_name,
            "interval": self.interval,
            "min_interval": self.min_interval,
            "max_interval": self.max_interval,
        }


class ChurnFeedbackPolicy(BeaconPolicy):
    """Multiplicative increase/decrease driven by measured link churn.

    Gavalas et al.'s adaptive broadcast period, transplanted: compare
    the node's EWMA link-change rate against the Eqn-3 expectation for
    its current degree.  Churn above ``high`` times the expectation
    multiplies the interval by ``decrease`` (< 1, beacon faster); churn
    at or below ``low`` times it multiplies by ``increase`` (> 1,
    beacon slower); in between, the interval holds.
    """

    policy_name = "churn-feedback"
    cause = CAUSE_CHURN_HELLO

    def __init__(
        self,
        interval: float = 1.0,
        low: float = 0.5,
        high: float = 1.5,
        increase: float = 1.25,
        decrease: float = 0.8,
        min_interval: float = 0.1,
        max_interval: float = 8.0,
    ) -> None:
        self.interval = _positive("interval", interval)
        self.low = float(low)
        self.high = float(high)
        if not 0.0 <= self.low < self.high:
            raise ValueError(
                f"need 0 <= low < high, got low={low}, high={high}"
            )
        self.increase = float(increase)
        self.decrease = float(decrease)
        if self.increase <= 1.0:
            raise ValueError(f"increase must be > 1, got {increase}")
        if not 0.0 < self.decrease < 1.0:
            raise ValueError(f"decrease must be in (0, 1), got {decrease}")
        self.min_interval = _positive("min_interval", min_interval)
        self.max_interval = _positive("max_interval", max_interval)
        if self.max_interval < self.min_interval:
            raise ValueError(
                f"max_interval ({max_interval}) must be >= min_interval "
                f"({min_interval})"
            )
        self._current: np.ndarray | None = None

    def initial_interval(self) -> float:
        return self.interval

    def _state(self, signals) -> np.ndarray:
        if self._current is None:
            self._current = np.full(
                signals.n_nodes, self.interval, dtype=float
            )
        return self._current

    def next_interval(self, node: int, signals) -> float:
        current = self._state(signals)
        if signals.windows_closed == 0:
            # Cold start: hold the current interval until the first
            # measurement window closes — a zero EWMA is "no data",
            # not "no churn".
            return float(current[node])
        params = signals.params
        expected = float(
            bcv_link_change_rate(
                max(signals.degree(node), 1.0),
                params.tx_range,
                params.velocity,
            )
        )
        measured = signals.link_change_rate(node)
        if measured > self.high * expected:
            current[node] = self._clamp(current[node] * self.decrease)
        elif measured <= self.low * expected:
            current[node] = self._clamp(current[node] * self.increase)
        return float(current[node])

    def spec(self) -> dict:
        return {
            "policy": self.policy_name,
            "interval": self.interval,
            "low": self.low,
            "high": self.high,
            "increase": self.increase,
            "decrease": self.decrease,
            "min_interval": self.min_interval,
            "max_interval": self.max_interval,
        }


class StalenessBoundedPolicy(BeaconPolicy):
    """Largest interval keeping expected table staleness under a target.

    With per-node link-change rate ``lambda_i`` (half breaks, half
    generations), a beacon interval ``T`` and expiry ``m * T``, the
    expected number of wrong neighbor-table entries at a random instant
    is approximately::

        E[stale_i]  =  (lambda_i / 2) * m * T      (broken, not expired)
                     + (lambda_i / 2) * T / 2      (new, not yet heard)
                     =  0.5 * lambda_i * (m + 0.5) * T

    Inverting for ``T`` at a staleness ``target`` gives the largest
    interval the budget allows.  The default target is the staleness
    the *fixed* baseline at ``interval`` would be expected to suffer at
    the **measured** network-mean change rate, scaled by ``margin`` —
    self-calibrating, so the resulting network beacon budget is
    ``~1/(margin * interval)`` per node regardless of how far the
    analytic rates sit from the measured ones.  Nodes churning below
    the network mean stretch their period (overhead win) while hot
    nodes tighten it (staleness win).
    """

    policy_name = "staleness-bounded"
    cause = CAUSE_STALENESS_HELLO

    def __init__(
        self,
        interval: float = 1.0,
        target: float | None = None,
        margin: float = 1.0,
        timeout_multiple: float = 2.5,
        min_interval: float = 0.1,
        max_interval: float = 8.0,
    ) -> None:
        self.interval = _positive("interval", interval)
        if target is not None:
            target = _positive("target", target)
        self.target = target
        self.margin = _positive("margin", margin)
        self.timeout_multiple = _positive("timeout_multiple", timeout_multiple)
        if self.timeout_multiple <= 1.0:
            raise ValueError(
                f"timeout_multiple must be > 1, got {timeout_multiple}"
            )
        self.min_interval = _positive("min_interval", min_interval)
        self.max_interval = _positive("max_interval", max_interval)
        if self.max_interval < self.min_interval:
            raise ValueError(
                f"max_interval ({max_interval}) must be >= min_interval "
                f"({min_interval})"
            )
    def initial_interval(self) -> float:
        return self.interval

    def _staleness_target(self, signals) -> float:
        if self.target is not None:
            return self.target * self.margin
        # Expected staleness of the fixed baseline: the same closed
        # form, evaluated at the *measured* network-mean change rate
        # and the base interval.  Using the measured mean (rather than
        # the analytic rate) self-calibrates the budget: per-node
        # intervals become ``margin * interval * mean(rate) / rate_i``,
        # so the network-wide beacon frequency lands at
        # ``~1/(margin * interval)`` whatever the analytic bias.
        baseline = (
            0.5
            * signals.mean_link_change_rate()
            * (self.timeout_multiple + 0.5)
            * self.interval
        )
        return max(baseline, 1e-12) * self.margin

    def next_interval(self, node: int, signals) -> float:
        if signals.windows_closed == 0:
            # Cold start: no measured rates yet.  Hold the base interval
            # rather than misreading "no data" as "no churn" and
            # sleeping ``max_interval`` with a stale table.
            return self._clamp(self.interval)
        lam = signals.link_change_rate(node)
        denom = 0.5 * lam * (self.timeout_multiple + 0.5)
        if denom <= 0.0:
            return self.max_interval
        return self._clamp(self._staleness_target(signals) / denom)

    def spec(self) -> dict:
        return {
            "policy": self.policy_name,
            "interval": self.interval,
            "target": self.target,
            "margin": self.margin,
            "timeout_multiple": self.timeout_multiple,
            "min_interval": self.min_interval,
            "max_interval": self.max_interval,
        }


#: Spec name -> policy class, the :func:`build_policy` registry.
POLICIES = {
    cls.policy_name: cls
    for cls in (
        FixedPeriodPolicy,
        AnalyticRatePolicy,
        ChurnFeedbackPolicy,
        StalenessBoundedPolicy,
    )
}


def build_policy(spec) -> BeaconPolicy:
    """Instantiate a policy from its JSON spec (``{"policy": name, ...}``).

    Already-constructed policies pass through unchanged.  Unknown
    policy names and unknown per-policy parameters are rejected with
    the full list of valid choices, mirroring the scenario loader's
    unknown-key convention.
    """
    if isinstance(spec, BeaconPolicy):
        return spec
    if not isinstance(spec, dict):
        raise ValueError(
            f"beacon policy spec must be a dict, got {type(spec).__name__}"
        )
    data = dict(spec)
    name = data.pop("policy", None)
    if name not in POLICIES:
        raise ValueError(
            f"unknown beacon policy {name!r}; "
            f"valid policies are: {sorted(POLICIES)}"
        )
    cls = POLICIES[name]
    known = [
        parameter
        for parameter in inspect.signature(cls.__init__).parameters
        if parameter != "self"
    ]
    unknown = set(data) - set(known)
    if unknown:
        raise ValueError(
            f"unknown {name} policy keys: {sorted(unknown)}; "
            f"valid keys are: {sorted(known)}"
        )
    return cls(**data)
