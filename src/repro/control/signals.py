"""Per-node control signals tapped from the engine's link-event stream.

:class:`ControlSignals` registers itself as a *signal tap* on a
:class:`~repro.sim.engine.Simulation` (see
:meth:`~repro.sim.engine.Simulation.add_signal_tap`): after every step
the engine hands it the step's :class:`~repro.spatial.LinkEvents`,
*before* protocol hooks run, so a beacon policy deciding a node's next
interval at ``on_step_end`` always sees signals that include the
current step.

Events are accumulated per node over a fixed-length window of simulated
time; at each window close the raw per-window rate is folded into an
EWMA, and the per-node degree vector is refreshed.  Policies therefore
read *windowed* link-change rates — smooth enough to act on, fresh
enough to track churn — without ever walking the event stream
themselves.

Taps are pure observers: they draw no randomness, record no messages
and emit no trace events, so attaching one cannot perturb a run's
results (``ENGINE_SCHEMA_VERSION`` is unaffected).
"""

from __future__ import annotations

import numpy as np

__all__ = ["ControlSignals"]


class ControlSignals:
    """Windowed per-node link-event rates for beacon policies.

    Parameters
    ----------
    sim:
        The simulation to tap.  Registered via ``sim.add_signal_tap``.
    window:
        Window length in simulated time over which per-node link events
        are counted before being folded into the EWMA.
    alpha:
        EWMA weight of the newest window (``1.0`` = no smoothing).
    """

    def __init__(self, sim, window: float = 1.0, alpha: float = 0.5) -> None:
        if window <= 0.0:
            raise ValueError(f"window must be positive, got {window}")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.sim = sim
        self.n_nodes = int(sim.n_nodes)
        self.window = float(window)
        self.alpha = float(alpha)
        #: Network parameters of the tapped simulation (policies read
        #: ``tx_range`` / ``velocity`` for the analytic rates).
        self.params = sim.params
        #: EWMA per-node link-change rate (generations + breaks per
        #: unit simulated time).  Zero until the first window closes.
        self.rates = np.zeros(self.n_nodes, dtype=float)
        #: Per-node degree snapshot, refreshed at attach and at every
        #: window close (not every step — policies act per window).
        self.degrees = sim.degrees().astype(float)
        #: Number of windows folded into :attr:`rates` so far.
        self.windows_closed = 0
        #: Raw aggregates of the last closed window (``None`` before
        #: the first close) — the payload of ``control_window`` events.
        self.last_window: dict | None = None
        self._counts = np.zeros(self.n_nodes, dtype=float)
        self._window_start = float(sim.time)
        sim.add_signal_tap(self._on_events)

    # ------------------------------------------------------------------
    def _on_events(self, sim, events) -> None:
        """Engine tap: fold one step's link events into the window."""
        if events.generation_count:
            self._counts += np.bincount(
                events.generated.ravel(), minlength=self.n_nodes
            )
        if events.break_count:
            self._counts += np.bincount(
                events.broken.ravel(), minlength=self.n_nodes
            )
        elapsed = sim.time - self._window_start
        # Tolerance absorbs float drift from repeated `time += dt`.
        if elapsed + 1e-9 < self.window:
            return
        measured = self._counts / elapsed
        if self.windows_closed == 0:
            # Seed the EWMA from the first full window rather than
            # decaying up from the zero prior.
            self.rates = measured
        else:
            self.rates = self.alpha * measured + (1.0 - self.alpha) * self.rates
        self.degrees = sim.degrees().astype(float)
        self.windows_closed += 1
        self.last_window = {
            "start": self._window_start,
            "elapsed": float(elapsed),
            "events": float(self._counts.sum()),
            "mean_rate": float(measured.mean()),
            "max_rate": float(measured.max()) if self.n_nodes else 0.0,
        }
        self._counts = np.zeros(self.n_nodes, dtype=float)
        self._window_start = float(sim.time)

    # ------------------------------------------------------------------
    def link_change_rate(self, node: int) -> float:
        """EWMA link-change rate (gen + brk) of ``node``, events per time."""
        return float(self.rates[node])

    def degree(self, node: int) -> float:
        """Degree of ``node`` at the last window close."""
        return float(self.degrees[node])

    def mean_link_change_rate(self) -> float:
        """Network-mean EWMA link-change rate."""
        return float(self.rates.mean()) if self.n_nodes else 0.0
