"""Reference Point Group Mobility (RPGM).

Nodes are partitioned into groups; each group's logical center follows a
carrier mobility model (random waypoint by default) and each member
wanders inside a disk around its reference point on the center.  RPGM
is the group-structured member of the Camp et al. survey and is the
natural stress test for clustering algorithms: cluster structure should
correlate with group structure.
"""

from __future__ import annotations

import numpy as np

from .base import MobilityModel
from .random_waypoint import RandomWaypointModel

__all__ = ["ReferencePointGroupModel"]


class ReferencePointGroupModel(MobilityModel):
    """Group mobility around moving reference centers.

    Parameters
    ----------
    n_groups:
        Number of groups; nodes are assigned round-robin so group sizes
        differ by at most one.
    center_model:
        Mobility model driving the group centers.  Defaults to a
        :class:`~repro.mobility.random_waypoint.RandomWaypointModel`
        with the given ``center_speed_range``.
    group_radius:
        Maximum member offset from the group center, as an absolute
        distance.
    member_speed:
        Speed at which members chase their (jittering) reference point.
    center_speed_range:
        Speed bounds for the default center model.
    """

    def __init__(
        self,
        n_groups: int,
        group_radius: float,
        member_speed: float,
        center_model: MobilityModel | None = None,
        center_speed_range: tuple[float, float] = (0.5, 1.5),
    ) -> None:
        super().__init__()
        if n_groups < 1:
            raise ValueError(f"n_groups must be positive, got {n_groups}")
        if group_radius <= 0.0:
            raise ValueError(f"group_radius must be positive, got {group_radius}")
        if member_speed < 0.0:
            raise ValueError(f"member_speed must be non-negative, got {member_speed}")
        self.n_groups = n_groups
        self.group_radius = group_radius
        self.member_speed = member_speed
        self.center_model = center_model or RandomWaypointModel(center_speed_range)
        self._group_of: np.ndarray | None = None
        self._offsets: np.ndarray | None = None

    @property
    def group_assignment(self) -> np.ndarray:
        """Group index of each node (read-only)."""
        self._require_reset()
        view = self._group_of.view()
        view.flags.writeable = False
        return view

    def _random_offsets(self, count: int) -> np.ndarray:
        """Uniform offsets inside the group disk."""
        radius = self.group_radius * np.sqrt(self.rng.uniform(size=count))
        angle = self.rng.uniform(0.0, 2.0 * np.pi, size=count)
        return np.column_stack([radius * np.cos(angle), radius * np.sin(angle)])

    def _initial_positions(self, n: int) -> np.ndarray:
        self.center_model.reset(
            self.n_groups, self.region, self.rng.integers(2**63)
        )
        self._group_of = np.arange(n) % self.n_groups
        self._offsets = self._random_offsets(n)
        centers = np.asarray(self.center_model.positions)
        raw = centers[self._group_of] + self._offsets
        positions, _ = self.region.apply_boundary(raw)
        return positions

    def _advance(self, dt: float) -> None:
        centers = np.asarray(self.center_model.advance(dt))
        # Members drift toward a jittered reference point; the jitter
        # amplitude scales with sqrt(dt) so behaviour is step-size
        # invariant in distribution.
        jitter = self._random_offsets(self.n_nodes) * min(
            1.0, self.member_speed * dt / self.group_radius
        )
        self._offsets = self._offsets + jitter
        # Keep offsets inside the group disk.
        norms = np.hypot(self._offsets[:, 0], self._offsets[:, 1])
        over = norms > self.group_radius
        if np.any(over):
            self._offsets[over] *= (self.group_radius / norms[over])[:, None]
        raw = centers[self._group_of] + self._offsets
        self._positions, _ = self.region.apply_boundary(raw)
