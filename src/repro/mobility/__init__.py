"""Mobility models: the paper's CV/BCV and epoch-RWP plus the survey zoo."""

from .base import MobilityModel
from .constant_velocity import ConstantVelocityModel
from .random_waypoint import EpochRandomWaypointModel, RandomWaypointModel
from .random_walk import RandomWalkModel
from .random_direction import RandomDirectionModel
from .gauss_markov import GaussMarkovModel
from .manhattan import ManhattanModel
from .group import ReferencePointGroupModel
from .trace import MobilityTrace, TraceRecorder, TraceReplayModel

__all__ = [
    "MobilityModel",
    "ConstantVelocityModel",
    "EpochRandomWaypointModel",
    "RandomWaypointModel",
    "RandomWalkModel",
    "RandomDirectionModel",
    "GaussMarkovModel",
    "ManhattanModel",
    "ReferencePointGroupModel",
    "MobilityTrace",
    "TraceRecorder",
    "TraceReplayModel",
]
