"""Manhattan grid mobility.

Nodes move along the lines of a regular street grid overlaid on the
square: at each intersection a node continues straight with probability
1/2 or turns left/right with probability 1/4 each, re-drawing its speed
per street segment.  This is the urban-topology member of the Camp et
al. survey and exercises strongly non-isotropic movement in the
mobility-sensitivity experiments.
"""

from __future__ import annotations

import numpy as np

from .base import MobilityModel

__all__ = ["ManhattanModel"]

# Unit vectors for the four street directions: +x, -x, +y, -y.
_DIRECTIONS = np.array([[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [0.0, -1.0]])


class ManhattanModel(MobilityModel):
    """Street-grid mobility with straight/turn decisions at intersections.

    Parameters
    ----------
    speed_range:
        ``(v_min, v_max)`` with ``0 < v_min <= v_max``; a speed is drawn
        per street segment.
    blocks:
        Number of city blocks per side (so there are ``blocks + 1``
        streets in each direction).
    turn_probability:
        Probability of turning at an intersection (split evenly between
        left and right).  The classic model uses 0.5.
    """

    def __init__(
        self,
        speed_range: tuple[float, float],
        blocks: int = 5,
        turn_probability: float = 0.5,
    ) -> None:
        super().__init__()
        v_min, v_max = speed_range
        if not 0.0 < v_min <= v_max:
            raise ValueError(
                f"speed_range must satisfy 0 < v_min <= v_max, got {speed_range}"
            )
        if blocks < 1:
            raise ValueError(f"blocks must be at least 1, got {blocks}")
        if not 0.0 <= turn_probability <= 1.0:
            raise ValueError(
                f"turn_probability must lie in [0, 1], got {turn_probability}"
            )
        self.speed_range = (float(v_min), float(v_max))
        self.blocks = blocks
        self.turn_probability = turn_probability
        self._direction: np.ndarray | None = None  # index into _DIRECTIONS
        self._speeds: np.ndarray | None = None

    @property
    def street_spacing(self) -> float:
        """Distance between adjacent parallel streets."""
        return self.region.side / self.blocks

    def _initial_positions(self, n: int) -> np.ndarray:
        """Place nodes on random street lines (snap one coordinate)."""
        pos = self.region.uniform_positions(n, self.rng)
        spacing = self.region.side / self.blocks
        snap_axis = self.rng.integers(0, 2, size=n)
        snapped = np.round(pos / spacing) * spacing
        pos[np.arange(n), snap_axis] = snapped[np.arange(n), snap_axis]
        np.clip(pos, 0.0, self.region.side, out=pos)
        return pos

    def _after_reset(self, n: int) -> None:
        # Travel along the non-snapped axis initially: infer from which
        # coordinate sits on a street line.
        spacing = self.street_spacing
        on_vertical = (
            np.abs(
                self._positions[:, 0] / spacing
                - np.round(self._positions[:, 0] / spacing)
            )
            < 1e-9
        )
        # on a vertical street -> move along y; else along x.
        axis_y = on_vertical
        sign = self.rng.integers(0, 2, size=n) * 2 - 1
        self._direction = np.where(
            axis_y, np.where(sign > 0, 2, 3), np.where(sign > 0, 0, 1)
        )
        self._speeds = self.rng.uniform(*self.speed_range, size=n)

    def _next_intersection_distance(self, idx: np.ndarray) -> np.ndarray:
        """Distance from each node to the next intersection ahead."""
        spacing = self.street_spacing
        dirs = _DIRECTIONS[self._direction[idx]]
        axis = np.argmax(np.abs(dirs), axis=1)
        coord = self._positions[idx, axis]
        forward = dirs[np.arange(len(idx)), axis]
        offset = coord / spacing
        ahead = np.where(forward > 0, np.ceil(offset + 1e-9), np.floor(offset - 1e-9))
        return np.abs(ahead * spacing - coord)

    def _turn(self, idx: np.ndarray) -> None:
        """Apply intersection decisions for nodes at an intersection."""
        side = self.region.side
        u = self.rng.uniform(size=len(idx))
        turning = u < self.turn_probability
        # Current axis: 0/1 -> x, 2/3 -> y.  Turning swaps the axis.
        current = self._direction[idx]
        horizontal = current < 2
        left_right = self.rng.integers(0, 2, size=len(idx))
        turned = np.where(horizontal, 2 + left_right, left_right)
        new_dir = np.where(turning, turned, current)

        # Nodes at the region edge cannot continue off-grid: force any
        # direction that exits the square to its opposite.
        pos = self._positions[idx]
        dirs = _DIRECTIONS[new_dir]
        exits_low = (pos <= 1e-9) & (dirs < 0.0)
        exits_high = (pos >= side - 1e-9) & (dirs > 0.0)
        flip = np.any(exits_low | exits_high, axis=1)
        new_dir = np.where(flip, new_dir ^ 1, new_dir)

        self._direction[idx] = new_dir
        self._speeds[idx] = self.rng.uniform(*self.speed_range, size=len(idx))

    def _advance(self, dt: float) -> None:
        remaining = np.full(self.n_nodes, dt)
        for _ in range(10_000):
            idx = np.flatnonzero(remaining > 1e-12)
            if not len(idx):
                break
            to_cross = self._next_intersection_distance(idx)
            speed = self._speeds[idx]
            time_to_cross = to_cross / speed
            step = np.minimum(remaining[idx], time_to_cross)
            self._positions[idx] += (
                _DIRECTIONS[self._direction[idx]] * (speed * step)[:, None]
            )
            np.clip(self._positions, 0.0, self.region.side, out=self._positions)
            remaining[idx] -= step
            crossed = idx[step >= time_to_cross - 1e-12]
            if len(crossed):
                self._turn(crossed)
        else:  # pragma: no cover - defensive guard
            raise RuntimeError("Manhattan advance failed to converge")
