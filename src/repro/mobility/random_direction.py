"""Random Direction mobility.

Each node picks a uniform heading, travels at a drawn speed until it
reaches the region border, pauses there, then picks a fresh heading
(restricted to directions pointing back inside) and repeats.  Unlike
RWP, the stationary node distribution is uniform-ish rather than
center-biased, which is why it appears in mobility-sensitivity studies.
"""

from __future__ import annotations

import numpy as np

from .base import MobilityModel

__all__ = ["RandomDirectionModel"]


class RandomDirectionModel(MobilityModel):
    """Travel-to-border, pause, turn-around mobility.

    Parameters
    ----------
    speed_range:
        ``(v_min, v_max)`` with ``0 < v_min <= v_max``.
    pause:
        Fixed pause duration at each border arrival (``>= 0``).
    """

    def __init__(self, speed_range: tuple[float, float], pause: float = 0.0) -> None:
        super().__init__()
        v_min, v_max = speed_range
        if not 0.0 < v_min <= v_max:
            raise ValueError(
                f"speed_range must satisfy 0 < v_min <= v_max, got {speed_range}"
            )
        if pause < 0.0:
            raise ValueError(f"pause must be non-negative, got {pause}")
        self.speed_range = (float(v_min), float(v_max))
        self.pause = pause
        self._velocities: np.ndarray | None = None
        self._pause_left: np.ndarray | None = None

    def _after_reset(self, n: int) -> None:
        self._velocities = np.zeros((n, 2))
        self._pause_left = np.zeros(n)
        self._turn(np.arange(n))

    def _turn(self, idx: np.ndarray) -> None:
        """Draw new headings for ``idx`` that point into the region."""
        side = self.region.side
        pos = self._positions[idx]
        headings = self.rng.uniform(0.0, 2.0 * np.pi, size=len(idx))
        speeds = self.rng.uniform(*self.speed_range, size=len(idx))
        vel = self._headings_to_velocities(headings, speeds)
        # Flip any component that would immediately leave the square.
        at_low = pos <= 1e-12
        at_high = pos >= side - 1e-12
        vel[at_low & (vel < 0.0)] *= -1.0
        vel[at_high & (vel > 0.0)] *= -1.0
        self._velocities[idx] = vel

    def _time_to_border(self, idx: np.ndarray) -> np.ndarray:
        """Per-node time until the first coordinate hits the border."""
        side = self.region.side
        pos = self._positions[idx]
        vel = self._velocities[idx]
        with np.errstate(divide="ignore", invalid="ignore"):
            to_high = np.where(vel > 0.0, (side - pos) / vel, np.inf)
            to_low = np.where(vel < 0.0, -pos / vel, np.inf)
        return np.minimum(to_high, to_low).min(axis=1)

    def _advance(self, dt: float) -> None:
        remaining = np.full(self.n_nodes, dt)
        while np.any(remaining > 1e-12):
            active = remaining > 1e-12

            pausing = active & (self._pause_left > 0.0)
            if np.any(pausing):
                spend = np.minimum(remaining[pausing], self._pause_left[pausing])
                self._pause_left[pausing] -= spend
                remaining[pausing] -= spend
                just_done = np.flatnonzero(pausing)[
                    self._pause_left[pausing] <= 1e-12
                ]
                if len(just_done):
                    self._turn(just_done)
                active = remaining > 1e-12

            moving = active & (self._pause_left <= 0.0)
            if not np.any(moving):
                continue
            idx = np.flatnonzero(moving)
            border_in = self._time_to_border(idx)
            step = np.minimum(remaining[idx], border_in)
            self._positions[idx] += self._velocities[idx] * step[:, None]
            np.clip(self._positions, 0.0, self.region.side, out=self._positions)
            remaining[idx] -= step

            hit = idx[step >= border_in - 1e-12]
            if len(hit):
                if self.pause > 0.0:
                    self._pause_left[hit] = self.pause
                else:
                    self._turn(hit)
