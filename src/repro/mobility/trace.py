"""Mobility trace recording and replay.

A :class:`TraceRecorder` wraps any mobility model and captures the
position matrix after every advance; a :class:`TraceReplayModel` plays a
captured trace back as a mobility model of its own (with linear
interpolation between frames).  Together they let experiments pin the
exact same node trajectories across protocol variants — the standard
technique for paired protocol comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..spatial import SquareRegion
from .base import MobilityModel

__all__ = ["MobilityTrace", "TraceRecorder", "TraceReplayModel"]


@dataclass
class MobilityTrace:
    """A sequence of timestamped position snapshots."""

    times: list[float] = field(default_factory=list)
    frames: list[np.ndarray] = field(default_factory=list)

    def append(self, time: float, positions: np.ndarray) -> None:
        """Record one snapshot (positions are copied)."""
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"trace times must be non-decreasing: {time} < {self.times[-1]}"
            )
        self.times.append(float(time))
        self.frames.append(np.array(positions, dtype=float, copy=True))

    def __len__(self) -> int:
        return len(self.times)

    @property
    def n_nodes(self) -> int:
        """Node count of the recorded frames."""
        if not self.frames:
            raise ValueError("empty trace has no node count")
        return len(self.frames[0])

    def positions_at(self, time: float) -> np.ndarray:
        """Linearly interpolated positions at an arbitrary time.

        Times outside the recorded span clamp to the first/last frame.
        Interpolation is performed in raw coordinates, which is correct
        for traces recorded from non-wrapping models; wrapped traces
        interpolate through the interior (a documented limitation —
        replay wrapped traces at their native frame times).
        """
        if not self.frames:
            raise ValueError("cannot interpolate an empty trace")
        times = np.asarray(self.times)
        if time <= times[0]:
            return self.frames[0].copy()
        if time >= times[-1]:
            return self.frames[-1].copy()
        hi = int(np.searchsorted(times, time, side="right"))
        lo = hi - 1
        span = times[hi] - times[lo]
        weight = 0.0 if span == 0.0 else (time - times[lo]) / span
        return (1.0 - weight) * self.frames[lo] + weight * self.frames[hi]


class TraceRecorder(MobilityModel):
    """Wrap a model, recording every snapshot it produces."""

    def __init__(self, inner: MobilityModel) -> None:
        super().__init__()
        self.inner = inner
        self.trace = MobilityTrace()

    def reset(self, n: int, region: SquareRegion, rng=None) -> np.ndarray:
        positions = self.inner.reset(n, region, rng)
        self._region = region
        self._rng = self.inner._rng
        self._time = 0.0
        self._positions = np.array(positions, dtype=float, copy=True)
        self.trace = MobilityTrace()
        self.trace.append(0.0, positions)
        return self.positions

    def _advance(self, dt: float) -> None:
        positions = self.inner.advance(dt)
        self._positions = np.array(positions, dtype=float, copy=True)
        self.trace.append(self._time + dt, positions)


class TraceReplayModel(MobilityModel):
    """Replay a recorded trace as a mobility model."""

    def __init__(self, trace: MobilityTrace) -> None:
        super().__init__()
        if len(trace) == 0:
            raise ValueError("cannot replay an empty trace")
        self.trace = trace

    def _initial_positions(self, n: int) -> np.ndarray:
        if n != self.trace.n_nodes:
            raise ValueError(
                f"trace has {self.trace.n_nodes} nodes, requested {n}"
            )
        return self.trace.positions_at(self.trace.times[0])

    def _advance(self, dt: float) -> None:
        target_time = self.trace.times[0] + self._time + dt
        self._positions = self.trace.positions_at(target_time)
