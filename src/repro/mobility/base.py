"""Mobility model interface.

Every model is a stateful object driven by the simulation loop:

1. :meth:`MobilityModel.reset` places ``n`` nodes in a region and
   initializes per-node motion state from a seeded RNG;
2. :meth:`MobilityModel.advance` moves every node forward by ``dt`` and
   returns the new positions.

Positions are always ``(N, 2)`` float arrays inside the region (for
regions with closed boundaries).  Models must be deterministic given the
seed, so experiments are exactly reproducible.
"""

from __future__ import annotations

import abc

import numpy as np

from ..spatial import SquareRegion

__all__ = ["MobilityModel"]


class MobilityModel(abc.ABC):
    """Base class for all mobility models."""

    def __init__(self) -> None:
        self._region: SquareRegion | None = None
        self._rng: np.random.Generator | None = None
        self._positions: np.ndarray | None = None
        self._time: float = 0.0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def reset(
        self, n: int, region: SquareRegion, rng=None
    ) -> np.ndarray:
        """Place ``n`` nodes and initialize motion state.

        Returns the initial positions.  ``rng`` may be a seed or a
        ``numpy.random.Generator``.
        """
        if n < 1:
            raise ValueError(f"node count must be positive, got {n}")
        self._region = region
        self._rng = np.random.default_rng(rng)
        self._time = 0.0
        self._positions = self._initial_positions(n)
        self._after_reset(n)
        return self.positions

    def _initial_positions(self, n: int) -> np.ndarray:
        """Initial placement; uniform by default, models may override."""
        return self.region.uniform_positions(n, self.rng)

    def _after_reset(self, n: int) -> None:
        """Hook for models to initialize velocities/targets after placement."""

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def advance(self, dt: float) -> np.ndarray:
        """Advance the model by ``dt`` and return the new positions."""
        if dt < 0.0:
            raise ValueError(f"dt must be non-negative, got {dt}")
        self._require_reset()
        if dt > 0.0:
            self._advance(dt)
            self._time += dt
        return self.positions

    @abc.abstractmethod
    def _advance(self, dt: float) -> None:
        """Move all nodes forward by ``dt`` (mutates ``self._positions``)."""

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def positions(self) -> np.ndarray:
        """Current positions as a read-only view."""
        self._require_reset()
        view = self._positions.view()
        view.flags.writeable = False
        return view

    @property
    def region(self) -> SquareRegion:
        """The region the model was reset into."""
        if self._region is None:
            raise RuntimeError(
                f"{type(self).__name__} has not been reset(); call "
                "reset(n, region, rng) before use"
            )
        return self._region

    @property
    def rng(self) -> np.random.Generator:
        """The model's random generator."""
        if self._rng is None:
            raise RuntimeError(
                f"{type(self).__name__} has not been reset(); call "
                "reset(n, region, rng) before use"
            )
        return self._rng

    @property
    def n_nodes(self) -> int:
        """Number of nodes."""
        self._require_reset()
        return len(self._positions)

    @property
    def time(self) -> float:
        """Total simulated time advanced since reset."""
        return self._time

    def _require_reset(self) -> None:
        if self._positions is None or self._region is None or self._rng is None:
            raise RuntimeError(
                f"{type(self).__name__} has not been reset(); call "
                "reset(n, region, rng) before use"
            )

    @staticmethod
    def _headings_to_velocities(headings: np.ndarray, speeds) -> np.ndarray:
        """Convert heading angles and speeds to ``(N, 2)`` velocity vectors."""
        speeds = np.asarray(speeds, dtype=float)
        return np.column_stack(
            [np.cos(headings), np.sin(headings)]
        ) * speeds.reshape(-1, 1)
