"""Random Waypoint mobility: the classic model and the paper's variant.

Two models live here:

* :class:`EpochRandomWaypointModel` — the special RWP case the paper
  simulates (Section 4): all nodes share one constant speed ``v``; at
  every epoch boundary (period ``tau``) each node independently picks a
  fresh uniform heading; nodes that hit the border wrap to the opposite
  side (torus).  This variant matches BCV's uniform spatial distribution
  and link change rate, which is why the paper validates against it.

* :class:`RandomWaypointModel` — the standard RWP of the MANET
  literature (Camp et al. survey): each node repeatedly picks a uniform
  waypoint inside the square, travels to it at a speed drawn from
  ``[v_min, v_max]``, pauses, and repeats.  Included because RWP is the
  de-facto simulation default the paper contrasts its tractable models
  against (non-uniform stationary distribution, speed decay when
  ``v_min = 0``).
"""

from __future__ import annotations

import numpy as np

from .base import MobilityModel

__all__ = ["EpochRandomWaypointModel", "RandomWaypointModel"]


class EpochRandomWaypointModel(MobilityModel):
    """The paper's Section 4 RWP variant (synchronized heading epochs).

    Parameters
    ----------
    speed:
        Common constant speed ``v`` of all nodes.
    epoch:
        Heading re-selection period ``tau > 0``.
    """

    def __init__(self, speed: float, epoch: float = 1.0) -> None:
        super().__init__()
        if speed < 0.0:
            raise ValueError(f"speed must be non-negative, got {speed}")
        if epoch <= 0.0:
            raise ValueError(f"epoch must be positive, got {epoch}")
        self.speed = speed
        self.epoch = epoch
        self._velocities: np.ndarray | None = None
        self._next_epoch: float = 0.0

    def _after_reset(self, n: int) -> None:
        self._next_epoch = 0.0
        self._pick_headings(n)
        self._next_epoch = self.epoch

    def _pick_headings(self, n: int) -> None:
        headings = self.rng.uniform(0.0, 2.0 * np.pi, size=n)
        self._velocities = self._headings_to_velocities(
            headings, np.full(n, self.speed)
        )

    def _advance(self, dt: float) -> None:
        remaining = dt
        now = self._time
        while remaining > 0.0:
            to_epoch = self._next_epoch - now
            step = min(remaining, to_epoch) if to_epoch > 0.0 else remaining
            raw = self._positions + self._velocities * step
            self._positions, _ = self.region.apply_boundary(raw)
            now += step
            remaining -= step
            if now >= self._next_epoch - 1e-12:
                self._pick_headings(self.n_nodes)
                self._next_epoch += self.epoch


class RandomWaypointModel(MobilityModel):
    """Classic Random Waypoint with uniform waypoints and optional pauses.

    Parameters
    ----------
    speed_range:
        ``(v_min, v_max)`` with ``0 < v_min <= v_max``.  A strictly
        positive ``v_min`` avoids the well-known speed-decay pathology.
    pause_range:
        ``(p_min, p_max)`` pause duration bounds, both ``>= 0``.
    """

    def __init__(
        self,
        speed_range: tuple[float, float],
        pause_range: tuple[float, float] = (0.0, 0.0),
    ) -> None:
        super().__init__()
        v_min, v_max = speed_range
        if not 0.0 < v_min <= v_max:
            raise ValueError(
                f"speed_range must satisfy 0 < v_min <= v_max, got {speed_range}"
            )
        p_min, p_max = pause_range
        if not 0.0 <= p_min <= p_max:
            raise ValueError(
                f"pause_range must satisfy 0 <= p_min <= p_max, got {pause_range}"
            )
        self.speed_range = (float(v_min), float(v_max))
        self.pause_range = (float(p_min), float(p_max))
        self._targets: np.ndarray | None = None
        self._speeds: np.ndarray | None = None
        self._pause_left: np.ndarray | None = None

    def _after_reset(self, n: int) -> None:
        self._targets = self.region.uniform_positions(n, self.rng)
        self._speeds = self.rng.uniform(*self.speed_range, size=n)
        self._pause_left = np.zeros(n)

    def _draw_pause(self, count: int) -> np.ndarray:
        p_min, p_max = self.pause_range
        if p_max == p_min:
            return np.full(count, p_min)
        return self.rng.uniform(p_min, p_max, size=count)

    def _advance(self, dt: float) -> None:
        # Per-node remaining time; legs (travel segments / pauses) are
        # consumed until the step budget is exhausted.  The loop runs at
        # most a handful of iterations for sane dt values.
        remaining = np.full(self.n_nodes, dt)
        while np.any(remaining > 1e-12):
            active = remaining > 1e-12

            # Spend pause time first.
            pausing = active & (self._pause_left > 0.0)
            if np.any(pausing):
                spend = np.minimum(remaining[pausing], self._pause_left[pausing])
                self._pause_left[pausing] -= spend
                remaining[pausing] -= spend
                active = remaining > 1e-12

            moving = active & (self._pause_left <= 0.0)
            if not np.any(moving):
                continue
            idx = np.flatnonzero(moving)
            delta = self._targets[idx] - self._positions[idx]
            dist = np.hypot(delta[:, 0], delta[:, 1])
            speed = self._speeds[idx]
            time_to_target = np.where(speed > 0.0, dist / speed, np.inf)
            step = np.minimum(remaining[idx], time_to_target)

            with np.errstate(invalid="ignore", divide="ignore"):
                direction = np.where(
                    dist[:, None] > 0.0, delta / dist[:, None], 0.0
                )
            self._positions[idx] += direction * (speed * step)[:, None]
            remaining[idx] -= step

            arrived = idx[step >= time_to_target - 1e-12]
            if len(arrived):
                self._positions[arrived] = self._targets[arrived]
                self._targets[arrived] = self.region.uniform_positions(
                    len(arrived), self.rng
                )
                self._speeds[arrived] = self.rng.uniform(
                    *self.speed_range, size=len(arrived)
                )
                self._pause_left[arrived] = self._draw_pause(len(arrived))
