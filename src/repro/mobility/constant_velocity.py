"""Constant Velocity (CV) mobility and its bounded variant (BCV).

The CV model (Cho & Hayes, WCNC 2005) used by the paper's analysis:
nodes are uniformly distributed, each picks an independent uniform
heading at time zero and moves with the same constant speed ``v``
forever.  CV assumes an infinite plane; the paper's Bounded Constant
Velocity (BCV) variant observes a square window ``S`` of a plane with
density ``rho``, so the average population of ``S`` is ``N``.

On a computer the unbounded plane is realized as a *torus*: wrapping
preserves the uniform spatial distribution and the CV link-change rate
while keeping the population exactly ``N`` — the closest realizable
equivalent (see DESIGN.md, substitutions).  Instantiating the model on a
region with ``Boundary.REFLECT`` gives the boundary-condition ablation.
"""

from __future__ import annotations

import numpy as np

from ..spatial import Boundary
from .base import MobilityModel

__all__ = ["ConstantVelocityModel"]


class ConstantVelocityModel(MobilityModel):
    """All nodes move forever at speed ``v`` in fixed random headings.

    Parameters
    ----------
    speed:
        The common constant speed ``v >= 0``.
    """

    def __init__(self, speed: float) -> None:
        super().__init__()
        if speed < 0.0:
            raise ValueError(f"speed must be non-negative, got {speed}")
        self.speed = speed
        self._velocities: np.ndarray | None = None

    def _after_reset(self, n: int) -> None:
        headings = self.rng.uniform(0.0, 2.0 * np.pi, size=n)
        self._velocities = self._headings_to_velocities(
            headings, np.full(n, self.speed)
        )

    def _advance(self, dt: float) -> None:
        raw = self._positions + self._velocities * dt
        self._positions, velocities = self.region.apply_boundary(
            raw, self._velocities
        )
        if self.region.boundary is Boundary.REFLECT:
            self._velocities = velocities

    @property
    def velocities(self) -> np.ndarray:
        """Current per-node velocity vectors (read-only)."""
        self._require_reset()
        view = self._velocities.view()
        view.flags.writeable = False
        return view
