"""Random Walk (RW) mobility.

The other "popular" model the paper names alongside RWP: each node
repeatedly draws a uniform heading and a speed from ``[v_min, v_max]``,
walks for a fixed interval, then redraws independently (no pauses, no
destination).  Nodes reflect or wrap at the border according to the
region's boundary rule; the classic formulation reflects.
"""

from __future__ import annotations

import numpy as np

from ..spatial import Boundary
from .base import MobilityModel

__all__ = ["RandomWalkModel"]


class RandomWalkModel(MobilityModel):
    """Memoryless random walk with per-interval redraws.

    Parameters
    ----------
    speed_range:
        ``(v_min, v_max)`` speed bounds, ``0 <= v_min <= v_max``.
    interval:
        Duration of each walk leg before heading/speed are redrawn.
        Unlike the paper's epoch-RWP variant, redraw clocks are *not*
        synchronized across nodes: each node's clock starts at a random
        phase, matching the classic model.
    """

    def __init__(self, speed_range: tuple[float, float], interval: float = 1.0) -> None:
        super().__init__()
        v_min, v_max = speed_range
        if not 0.0 <= v_min <= v_max:
            raise ValueError(
                f"speed_range must satisfy 0 <= v_min <= v_max, got {speed_range}"
            )
        if interval <= 0.0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.speed_range = (float(v_min), float(v_max))
        self.interval = interval
        self._velocities: np.ndarray | None = None
        self._leg_left: np.ndarray | None = None

    def _after_reset(self, n: int) -> None:
        self._redraw(np.arange(n))
        # Random initial phase so redraws are unsynchronized.
        self._leg_left = self.rng.uniform(0.0, self.interval, size=n)

    def _redraw(self, idx: np.ndarray) -> None:
        headings = self.rng.uniform(0.0, 2.0 * np.pi, size=len(idx))
        speeds = self.rng.uniform(*self.speed_range, size=len(idx))
        velocities = self._headings_to_velocities(headings, speeds)
        if self._velocities is None:
            self._velocities = velocities
        else:
            self._velocities[idx] = velocities

    def _advance(self, dt: float) -> None:
        remaining = np.full(self.n_nodes, dt)
        while np.any(remaining > 1e-12):
            idx = np.flatnonzero(remaining > 1e-12)
            step = np.minimum(remaining[idx], self._leg_left[idx])
            raw = self._positions[idx] + self._velocities[idx] * step[:, None]
            corrected, velocities = self.region.apply_boundary(
                raw, self._velocities[idx]
            )
            self._positions[idx] = corrected
            if self.region.boundary is Boundary.REFLECT:
                self._velocities[idx] = velocities
            self._leg_left[idx] -= step
            remaining[idx] -= step
            expired = idx[self._leg_left[idx] <= 1e-12]
            if len(expired):
                self._redraw(expired)
                self._leg_left[expired] = self.interval
