"""Gauss–Markov mobility.

A temporally correlated model from the Camp et al. survey the paper
cites: speed and heading evolve as AR(1) processes

.. math::

    s_{t+1} = \\alpha s_t + (1 - \\alpha) \\bar{s}
              + \\sigma_s \\sqrt{1 - \\alpha^2}\\, w_s,

and likewise for the heading, where ``alpha`` tunes memory (``alpha=1``
degenerates to constant velocity, ``alpha=0`` to a memoryless walk).
Near the border the mean heading is steered toward the region center to
avoid boundary pile-up, following the standard formulation.
"""

from __future__ import annotations

import numpy as np

from ..spatial import Boundary
from .base import MobilityModel

__all__ = ["GaussMarkovModel"]


class GaussMarkovModel(MobilityModel):
    """AR(1)-correlated speed/heading mobility.

    Parameters
    ----------
    mean_speed:
        Long-run mean speed ``s_bar > 0``.
    alpha:
        Memory parameter in ``[0, 1]``.
    speed_sigma:
        Stationary standard deviation of the speed process.  Defaults to
        ``mean_speed / 4``.
    heading_sigma:
        Stationary standard deviation of the heading process (radians).
    update_interval:
        Period between AR(1) updates; motion is linear in between.
    border_margin:
        Distance from the border inside which the mean heading steers
        toward the center (fraction of the side).
    """

    def __init__(
        self,
        mean_speed: float,
        alpha: float = 0.75,
        speed_sigma: float | None = None,
        heading_sigma: float = 0.4,
        update_interval: float = 1.0,
        border_margin: float = 0.1,
    ) -> None:
        super().__init__()
        if mean_speed <= 0.0:
            raise ValueError(f"mean_speed must be positive, got {mean_speed}")
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must lie in [0, 1], got {alpha}")
        if update_interval <= 0.0:
            raise ValueError(
                f"update_interval must be positive, got {update_interval}"
            )
        if not 0.0 <= border_margin < 0.5:
            raise ValueError(
                f"border_margin must lie in [0, 0.5), got {border_margin}"
            )
        self.mean_speed = mean_speed
        self.alpha = alpha
        self.speed_sigma = mean_speed / 4.0 if speed_sigma is None else speed_sigma
        if self.speed_sigma < 0.0:
            raise ValueError(f"speed_sigma must be non-negative, got {speed_sigma}")
        self.heading_sigma = heading_sigma
        self.update_interval = update_interval
        self.border_margin = border_margin
        self._speeds: np.ndarray | None = None
        self._headings: np.ndarray | None = None
        self._until_update: float = 0.0

    def _after_reset(self, n: int) -> None:
        self._speeds = np.full(n, self.mean_speed)
        self._headings = self.rng.uniform(0.0, 2.0 * np.pi, size=n)
        self._until_update = self.update_interval

    def _mean_headings(self) -> np.ndarray:
        """Per-node mean heading, steered inward near the border."""
        side = self.region.side
        margin = self.border_margin * side
        mean = self._headings.copy()
        near = (
            (self._positions[:, 0] < margin)
            | (self._positions[:, 0] > side - margin)
            | (self._positions[:, 1] < margin)
            | (self._positions[:, 1] > side - margin)
        )
        if np.any(near):
            center = np.array([side / 2.0, side / 2.0])
            delta = center - self._positions[near]
            mean[near] = np.arctan2(delta[:, 1], delta[:, 0])
        return mean

    def _update_process(self) -> None:
        n = self.n_nodes
        noise_scale = np.sqrt(max(1.0 - self.alpha**2, 0.0))
        self._speeds = (
            self.alpha * self._speeds
            + (1.0 - self.alpha) * self.mean_speed
            + self.speed_sigma * noise_scale * self.rng.standard_normal(n)
        )
        np.clip(self._speeds, 0.0, None, out=self._speeds)
        self._headings = (
            self.alpha * self._headings
            + (1.0 - self.alpha) * self._mean_headings()
            + self.heading_sigma * noise_scale * self.rng.standard_normal(n)
        )

    def _advance(self, dt: float) -> None:
        remaining = dt
        while remaining > 1e-12:
            step = min(remaining, self._until_update)
            velocities = self._headings_to_velocities(self._headings, self._speeds)
            raw = self._positions + velocities * step
            self._positions, corrected = self.region.apply_boundary(raw, velocities)
            if self.region.boundary is Boundary.REFLECT and corrected is not None:
                flipped = np.sign(corrected) != np.sign(velocities)
                # Recover headings from the reflected velocity vectors.
                needs = np.any(flipped, axis=1)
                if np.any(needs):
                    self._headings[needs] = np.arctan2(
                        corrected[needs, 1], corrected[needs, 0]
                    )
            self._until_update -= step
            remaining -= step
            if self._until_update <= 1e-12:
                self._update_process()
                self._until_update = self.update_interval
