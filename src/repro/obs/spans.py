"""Hierarchical causal spans over the event tracer.

The flat event stream (:mod:`repro.obs.tracer`) answers *how much*
— message counts, rates, reconciliation — but not *why*: the paper's
central claim is that cluster-maintenance events (head changes,
reaffiliations, gateway churn) are what drive HELLO/CLUSTER/ROUTE
overhead, and attributing a burst of ``msg_tx`` events to the repair
that caused it needs structure the flat stream lacks.  This module adds
that structure as **spans**: nested intervals of simulated time,
recorded as ``span_start`` / ``span_end`` events and connected by
explicit ``span_link`` causality edges.

The hierarchy a fully-instrumented run produces::

    run (sim-0)                      kind="run"    one per measurement run
      warmup / measure               kind="phase"  stats.measuring segments
        step                         kind="step"   one kernel step (lazy)
          repair:head-merge          kind="handler" cluster repair operation
            reaffiliate              kind="handler" one node re-homed
            reaffiliate   <-- span_link (cascade) from repair:head-merge

Step spans are **lazy**: the tracker allocates nothing for them until a
handler span opens inside one, so a traced run only records the steps
in which something structurally interesting happened — the trace stays
proportional to the *event* count, not the step count.

Events annotated with a ``span`` field (``msg_tx``, ``head_change``,
``cluster_reaffiliation``) belong to the innermost *materialized* span
at emission time, which is how a CLUSTER message burst is attributed to
the exact repair operation that sent it.

Span ids are drawn from a process-global counter (like simulation ids),
so spans from every simulation of one traced invocation are distinct;
:mod:`repro.analysis.parallel` remaps worker-local ids through
:func:`next_span_id` when merging, exactly as it remaps sim ids.
"""

from __future__ import annotations

import itertools

__all__ = ["SPAN_KINDS", "SpanTracker", "next_span_id"]

#: The span vocabulary, outermost first.
SPAN_KINDS = ("run", "phase", "step", "handler")

_span_ids = itertools.count()


def next_span_id() -> int:
    """Allocate a fresh process-unique span id.

    The same counter serves every :class:`SpanTracker` *and* the
    parallel runner's worker-id remapping, so a merged trace can never
    reuse an id a local simulation already emitted.
    """
    return next(_span_ids)


class _Entry:
    """One open span on the stack (``span_id is None`` until emitted)."""

    __slots__ = ("span_id", "name", "kind", "start", "attrs")

    def __init__(self, name, kind, start, attrs):
        self.span_id = None
        self.name = name
        self.kind = kind
        self.start = start
        self.attrs = attrs


class SpanTracker:
    """Per-simulation span stack writing to the simulation's tracer.

    All methods are no-ops when the tracer is disabled (guarded by
    :attr:`enabled`, one attribute read — the same contract as the
    tracer itself), so untraced runs pay nothing.
    """

    __slots__ = ("tracer", "sim_id", "_stack")

    def __init__(self, tracer, sim_id: int) -> None:
        self.tracer = tracer
        self.sim_id = sim_id
        self._stack: list[_Entry] = []

    @property
    def enabled(self) -> bool:
        """Whether span emission sites should bother at all."""
        return self.tracer.enabled

    @property
    def current(self) -> int | None:
        """Innermost *materialized* span id, for event annotation.

        Lazy (never-emitted) spans are invisible here: annotating an
        event with a span id whose ``span_start`` never reaches the
        trace would dangle.
        """
        for entry in reversed(self._stack):
            if entry.span_id is not None:
                return entry.span_id
        return None

    @property
    def depth(self) -> int:
        """Open spans (materialized or lazy) on the stack."""
        return len(self._stack)

    # ------------------------------------------------------------------
    def _materialize(self) -> int:
        """Emit ``span_start`` for every pending span, outermost first."""
        parent = None
        for entry in self._stack:
            if entry.span_id is None:
                entry.span_id = next_span_id()
                fields = {
                    "sim": self.sim_id,
                    "span": entry.span_id,
                    "name": entry.name,
                    "kind": entry.kind,
                }
                if parent is not None:
                    fields["parent"] = parent
                if entry.attrs:
                    fields.update(entry.attrs)
                self.tracer.emit("span_start", entry.start, **fields)
            parent = entry.span_id
        return parent

    def start(self, name: str, kind: str, time: float, **attrs) -> int:
        """Open a span and emit its ``span_start`` (plus lazy parents).

        Returns the new span's id.
        """
        self._stack.append(_Entry(name, kind, float(time), attrs))
        return self._materialize()

    def start_lazy(self, name: str, kind: str, time: float, **attrs) -> None:
        """Open a span that is only emitted if a child materializes.

        The engine uses this for per-step spans: thousands of steps do
        nothing structurally interesting, and emitting two records for
        each would dwarf the events being explained.
        """
        self._stack.append(_Entry(name, kind, float(time), attrs))

    def end(self, time: float, **attrs) -> int | None:
        """Close the innermost span; emit ``span_end`` if it was emitted.

        Returns the closed span's id (``None`` for a lazy span that
        never materialized).  Ending an empty stack is a silent no-op
        so defensive unwinds stay safe.
        """
        if not self._stack:
            return None
        entry = self._stack.pop()
        if entry.span_id is None:
            return None
        fields = {
            "sim": self.sim_id,
            "span": entry.span_id,
            "name": entry.name,
            "kind": entry.kind,
            "duration": float(time) - entry.start,
        }
        if attrs:
            fields.update(attrs)
        self.tracer.emit("span_end", float(time), **fields)
        return entry.span_id

    def unwind(self, time: float) -> None:
        """Close every open span (run teardown safety net)."""
        while self._stack:
            self.end(time)

    def link(
        self, src_span: int, dst_span: int, kind: str, time: float
    ) -> None:
        """Emit a causal ``span_link`` edge from ``src`` to ``dst``.

        ``kind`` names the mechanism (``"cascade"`` for a repair whose
        resign forces its members to re-affiliate).
        """
        self.tracer.emit(
            "span_link",
            float(time),
            sim=self.sim_id,
            src_span=int(src_span),
            dst_span=int(dst_span),
            kind=kind,
        )
