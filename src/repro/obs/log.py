"""Logging configuration for the ``repro`` package.

Every module logs through the stdlib ``logging`` hierarchy under the
``repro`` root logger; nothing is emitted unless the embedding
application (or the CLI via ``-v`` / ``--log-level``) configures a
handler.  Progress reporting — the human-facing "sweep point 3/5" kind
of line — goes to the dedicated ``repro.progress`` logger so it can be
switched on (``--progress``) without also enabling debug noise.
"""

from __future__ import annotations

import logging
import sys

__all__ = ["configure_logging", "progress", "PROGRESS_LOGGER"]

#: Logger name carrying user-facing progress lines.
PROGRESS_LOGGER = "repro.progress"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}

#: Marker attribute distinguishing handlers we installed from the
#: application's own, so reconfiguration never duplicates output.
_MARKER = "_repro_obs_handler"


def _install_handler(logger: logging.Logger, formatter: logging.Formatter):
    for handler in list(logger.handlers):
        if getattr(handler, _MARKER, False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(formatter)
    setattr(handler, _MARKER, True)
    logger.addHandler(handler)
    return handler


def configure_logging(
    level: str | int | None = None,
    verbosity: int = 0,
    show_progress: bool = False,
) -> None:
    """Wire stderr handlers for the package loggers.

    Parameters
    ----------
    level:
        Explicit level name (``"debug"`` … ``"error"``) or numeric
        level; overrides ``verbosity``.
    verbosity:
        ``-v`` count: 0 → warning, 1 → info, 2+ → debug.
    show_progress:
        Additionally emit bare ``repro.progress`` lines.
    """
    if level is None:
        resolved = (
            logging.WARNING
            if verbosity <= 0
            else logging.INFO
            if verbosity == 1
            else logging.DEBUG
        )
    elif isinstance(level, str):
        try:
            resolved = _LEVELS[level.lower()]
        except KeyError:
            raise ValueError(
                f"unknown log level {level!r}; choose from {sorted(_LEVELS)}"
            ) from None
    else:
        resolved = int(level)

    root = logging.getLogger("repro")
    _install_handler(
        root,
        logging.Formatter("%(asctime)s %(levelname)-7s %(name)s: %(message)s"),
    )
    root.setLevel(resolved)

    progress_logger = logging.getLogger(PROGRESS_LOGGER)
    progress_logger.propagate = False
    if show_progress:
        _install_handler(progress_logger, logging.Formatter("%(message)s"))
        progress_logger.setLevel(logging.INFO)
    else:
        progress_logger.setLevel(logging.WARNING)


def progress(message: str, *args) -> None:
    """Emit one user-facing progress line (no-op unless enabled)."""
    logging.getLogger(PROGRESS_LOGGER).info(message, *args)
