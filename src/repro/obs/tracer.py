"""Structured event tracing for simulation runs.

A tracer receives every noteworthy event of a simulation — steps, link
churn, cluster role changes, control-message transmissions — as a
``(event, time, **fields)`` triple and decides what to do with it.  The
default :data:`NULL_TRACER` does nothing and costs one attribute check
per potential emission, so an untraced simulation runs at full speed.

:class:`JsonlTracer` writes schema-versioned JSON Lines records::

    {"schema": 1, "event": "msg_tx", "t": 3.25, "sim": 0,
     "category": "hello", "messages": 2, "bits": 96.0}

Event vocabulary (``TRACE_EVENTS``):

``run_begin`` / ``run_end``
    Measurement-run boundaries with parameters and final per-category
    totals — ``run_end.totals`` lets a trace be reconciled against the
    ``msg_tx`` stream (see :mod:`repro.obs.summary`).
``step``
    One simulation step (sampled by ``step_every``): link up/down
    counts at that step.
``link_up`` / ``link_down``
    One link appeared/disappeared between nodes ``u`` and ``v``.
``head_change``
    A node gained (``kind="elect"``) or lost (``kind="resign"``) the
    cluster-head role.
``cluster_reaffiliation``
    A node changed its cluster affiliation; ``role`` is its new role.
``msg_tx``
    Control messages transmitted: ``category``, ``messages``, ``bits``.
    Emitted only inside the measurement window, so per-category sums
    reproduce :class:`~repro.sim.stats.MessageStats` totals exactly.
``invariant_audit``
    One run of the P1/P2 invariant auditor: per-kind violation counts
    and the audit verdict (see :mod:`repro.obs.audit`).
``residual``
    One analytic-residual sample: a measured per-node message rate
    compared against the closed-form lower bound, per category and
    window, plus a ``kind="final"`` whole-run verdict record
    (see :mod:`repro.obs.residuals`).
``resource_sample``
    One background resource sample: current RSS, CPU utilisation and
    engine phase-timer deltas (see :mod:`repro.obs.resources`).  The
    envelope ``t`` is *wall-clock seconds since sampling started*, not
    simulated time — like the cache events below, it is emitted off
    the engine's clock.
``cache_hit`` / ``cache_miss`` / ``cache_write``
    One result-store outcome for a fingerprinted task (see
    :mod:`repro.store`): the task's content address (``key``) and
    worker function (``fn``).  Emitted outside any simulation run with
    ``t=0`` and no ``sim`` field; readers treat them as runless.
``span_start`` / ``span_end``
    Boundaries of one hierarchical causal span (run → phase → step →
    handler; see :mod:`repro.obs.spans`): ``span`` id, ``name``,
    ``kind``, optional ``parent``.  Events carrying a ``span`` field
    (``msg_tx``, ``head_change``, ``cluster_reaffiliation``) belong to
    that span.
``span_link``
    A causal edge between two spans (``src_span`` → ``dst_span``),
    e.g. ``kind="cascade"`` from a head-merge repair to the member
    reaffiliations it forced.
``cluster_window``
    One window of the cluster-dynamics time series (see
    :mod:`repro.clustering.stability`): cluster count, head ratio,
    head-change/reaffiliation deltas, gateway churn, mean head tenure
    and cluster diameter over ``[window_start, t)``.
``gateway_change``
    A node became (``kind="add"``) or stopped being (``kind="drop"``)
    a gateway, observed at a cluster-window boundary.
``control_window``
    One closed window of the adaptive-beaconing control loop (see
    :mod:`repro.control`): beacon count, interval statistics, measured
    mean/max link-change rates, mean neighbor-table staleness and mean
    advertised timeout over ``[window_start, t)``.  Emitted only when
    an *adaptive* beacon policy drives the HELLO protocol.
``attribution``
    One run's complete overhead-attribution breakdown (see
    :mod:`repro.obs.attribution`): per-cause tallies by category
    (``causes``), per-node and per-cluster tallies, the spatial
    heatmap, record-order category ``totals``, and the
    ``reconciled`` verdict against the run's ``MessageStats``.
``fault_inject`` / ``fault_clear``
    One fault transition from the run's :mod:`repro.faults` plan:
    ``kind="crash"`` (node radio died, state wiped / recovered),
    ``kind="outage"`` (node crossed a moving outage region's
    boundary), or ``kind="loss"`` (Bernoulli link loss activated at
    ``rate``, announced once at attach).  Crash/outage records carry
    the affected ``node``; all records carry the innermost open
    ``span`` when tracing spans.
"""

from __future__ import annotations

import atexit
import json
import threading
from pathlib import Path

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "TRACE_EVENTS",
    "RESERVED_FIELDS",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "CollectingTracer",
    "JsonlTracer",
]

#: Bump when a record's field meaning changes incompatibly.
TRACE_SCHEMA_VERSION = 1

#: Record keys owned by the envelope; event fields must not use them
#: (``v`` would collide with a link event's second endpoint otherwise).
RESERVED_FIELDS = frozenset({"schema", "event", "t"})

#: The known event vocabulary (tracers accept unknown events, readers
#: should ignore ones they do not understand).
TRACE_EVENTS = frozenset(
    {
        "run_begin",
        "run_end",
        "step",
        "link_up",
        "link_down",
        "head_change",
        "cluster_reaffiliation",
        "msg_tx",
        "invariant_audit",
        "residual",
        "resource_sample",
        "cache_hit",
        "cache_miss",
        "cache_write",
        "span_start",
        "span_end",
        "span_link",
        "cluster_window",
        "control_window",
        "gateway_change",
        "attribution",
        "fault_inject",
        "fault_clear",
    }
)


def _jsonable(value):
    """Coerce NumPy scalars so records serialize cleanly."""
    if hasattr(value, "item"):
        return value.item()
    raise TypeError(f"not JSON serializable: {value!r}")


class Tracer:
    """Base tracer: a no-op sink.

    Emission sites guard with ``tracer.enabled`` before building field
    dicts, so a disabled tracer costs one attribute read.
    """

    #: Whether emission sites should bother constructing events.
    enabled: bool = False

    def emit(self, event: str, time: float, **fields) -> None:
        """Record one event at simulated ``time``."""

    def close(self) -> None:
        """Flush and release any underlying resources."""

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class NullTracer(Tracer):
    """The default tracer: drops everything."""


#: Shared singleton used wherever no tracer was configured.
NULL_TRACER = NullTracer()


class CollectingTracer(Tracer):
    """Keeps events in memory as dicts — for tests and notebooks."""

    enabled = True

    def __init__(self) -> None:
        self.records: list[dict] = []

    def emit(self, event: str, time: float, **fields) -> None:
        self.records.append({"event": event, "t": float(time), **fields})

    def of(self, event: str) -> list[dict]:
        """All collected records of one event type."""
        return [r for r in self.records if r["event"] == event]


class JsonlTracer(Tracer):
    """Writes one JSON object per line to ``path`` (or a file object).

    Parameters
    ----------
    path:
        Output path (truncated) or an open text file object.
    events:
        When given, only these event types are written (filtering).
    step_every:
        Write only every ``step_every``-th ``step`` event (sampling);
        all other event types are unaffected.  ``step`` events are the
        per-step heartbeat, so this is the knob that keeps full-rate
        tracing cheap on long runs.
    """

    enabled = True

    def __init__(
        self,
        path,
        events=None,
        step_every: int = 1,
    ) -> None:
        if step_every < 1:
            raise ValueError(f"step_every must be >= 1, got {step_every}")
        if events is not None:
            events = frozenset(events)
            unknown = events - TRACE_EVENTS
            if unknown:
                raise ValueError(
                    f"unknown trace events {sorted(unknown)}; "
                    f"known: {sorted(TRACE_EVENTS)}"
                )
        self._events = events
        self.step_every = step_every
        self.emitted = 0
        self.suppressed = 0
        self._steps_seen = 0
        # The resource sampler emits from a background thread; the lock
        # keeps each record's two writes (payload + newline) atomic.
        self._lock = threading.Lock()
        if hasattr(path, "write"):
            self._fh = path
            self._owns_fh = False
        else:
            self._fh = Path(path).open("w", encoding="utf-8")
            self._owns_fh = True
        # Abrupt-exit safety net: flush buffered records at interpreter
        # shutdown (SIGINT included — KeyboardInterrupt unwinds into the
        # normal exit path) so a Ctrl-C'd run leaves a parseable trace
        # even when close() is never reached.  Unregistered on close.
        atexit.register(self._flush_at_exit)

    def _flush_at_exit(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.flush()

    # ------------------------------------------------------------------
    def emit(self, event: str, time: float, **fields) -> None:
        if self._events is not None and event not in self._events:
            self.suppressed += 1
            return
        if event == "step":
            self._steps_seen += 1
            if (self._steps_seen - 1) % self.step_every:
                self.suppressed += 1
                return
        if RESERVED_FIELDS & fields.keys():
            clash = sorted(RESERVED_FIELDS & fields.keys())
            raise ValueError(f"event fields shadow envelope keys: {clash}")
        record = {
            "schema": TRACE_SCHEMA_VERSION,
            "event": event,
            "t": float(time),
        }
        record.update(fields)
        payload = json.dumps(record, separators=(",", ":"), default=_jsonable)
        with self._lock:
            self._fh.write(payload)
            self._fh.write("\n")
            self.emitted += 1

    def close(self) -> None:
        atexit.unregister(self._flush_at_exit)
        if self._owns_fh and not self._fh.closed:
            self._fh.close()
        elif not self._owns_fh:
            self._fh.flush()
