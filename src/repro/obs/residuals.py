"""Online comparison of measured message rates against the analytic bounds.

The paper's Section 4 validation loop — simulate, measure the three
per-node control message frequencies, check them against the closed
form — is automated here as a streaming monitor.  Attached as an
ordinary protocol, :class:`ResidualMonitor` splits the measurement
window into fixed simulated-time windows; at each window boundary it
compares the window's measured per-node rate for every monitored
category against the closed-form *lower bound* evaluated for the run's
:class:`~repro.core.params.NetworkParameters` (and, for CLUSTER/ROUTE,
the window's mean *measured* cluster-head ratio — exactly the paper's
"P is measured in real time" methodology), then emits one ``residual``
trace event per category::

    {"event": "residual", "t": 8.0, "sim": 0, "kind": "window",
     "category": "hello", "window_start": 6.0, "elapsed": 2.0,
     "measured": 3.81, "bound": 3.52, "residual": 0.29,
     "head_ratio": 0.21, "rtol": 0.05, "ok": true}

A measured rate *below* the lower bound (beyond ``rtol`` slack) flags
either a measurement-window bug or a model-regime mismatch — the two
failure modes the paper's own validation loop exists to catch.  At run
end a ``kind="final"`` record per category carries the whole-run
verdict (aggregate measured rate vs the time-weighted mean bound);
:mod:`repro.obs.report` renders both into the residual tables.
"""

from __future__ import annotations

from ..core.overhead import cluster_frequency, hello_frequency, route_frequency

__all__ = ["MONITORED_CATEGORIES", "ResidualMonitor"]

#: Categories the closed-form model provides lower bounds for.
MONITORED_CATEGORIES = ("hello", "cluster", "route")


class ResidualMonitor:
    """Protocol streaming measured-vs-bound residuals into the trace.

    Parameters
    ----------
    params:
        The run's network parameters; the bounds are evaluated for
        these.
    maintenance:
        The cluster maintenance protocol, supplying the live measured
        head ratio ``P``.  Required when monitoring ``cluster`` or
        ``route`` (their bounds are functions of ``P``); ``None``
        restricts monitoring to ``hello``.
    categories:
        Subset of :data:`MONITORED_CATEGORIES` to monitor.
    window:
        Simulated-time width of one measurement window.
    rtol:
        Relative slack below the bound tolerated before flagging.
    convention:
        Counting convention forwarded to the closed-form model.
    """

    name = "residual-monitor"

    def __init__(
        self,
        params,
        maintenance=None,
        categories=MONITORED_CATEGORIES,
        window: float = 2.0,
        rtol: float = 0.15,
        convention: str = "consistent",
    ) -> None:
        if window <= 0.0:
            raise ValueError(f"window must be positive, got {window}")
        if rtol < 0.0:
            raise ValueError(f"rtol must be non-negative, got {rtol}")
        categories = tuple(categories)
        unknown = set(categories) - set(MONITORED_CATEGORIES)
        if unknown:
            raise ValueError(
                f"no analytic bound for categories {sorted(unknown)}; "
                f"monitorable: {MONITORED_CATEGORIES}"
            )
        if maintenance is None and set(categories) - {"hello"}:
            raise ValueError(
                "cluster/route bounds need the measured head ratio; "
                "pass the maintenance protocol or monitor 'hello' only"
            )
        self.params = params
        self.maintenance = maintenance
        self.categories = categories
        self.window = window
        self.rtol = rtol
        self.convention = convention
        #: Per-category count of windows completed / windows flagged.
        self.windows: dict[str, int] = {c: 0 for c in categories}
        self.window_violations: dict[str, int] = {c: 0 for c in categories}
        #: Per-category whole-run verdict (populated at run end).
        self.final_verdict: dict[str, dict] = {}
        # Aggregates for the final verdict: message counts and the
        # time-integral of the bound across completed windows.
        self._total_messages: dict[str, int] = {c: 0 for c in categories}
        self._bound_integral: dict[str, float] = {c: 0.0 for c in categories}
        self._total_elapsed = 0.0
        self._window_open = False
        self._window_start = 0.0
        self._start_counts: dict[str, int] = {}
        self._ratio_sum = 0.0
        self._ratio_samples = 0

    # ------------------------------------------------------------------
    # Protocol hooks (duck-typed; see Simulation.attach)
    # ------------------------------------------------------------------
    def on_attach(self, sim) -> None:
        pass

    def on_step_begin(self, sim, time: float) -> None:
        pass

    def on_link_up(self, sim, u: int, v: int, time: float) -> None:
        pass

    def on_link_down(self, sim, u: int, v: int, time: float) -> None:
        pass

    def on_step_end(self, sim, time: float) -> None:
        stats = sim.stats
        if not stats.measuring:
            # Warm-up (or between runs): no open window.
            if self._window_open:
                self._close_window(sim, time)
            return
        if not self._window_open:
            self._open_window(stats, time)
            return
        if self.maintenance is not None:
            self._ratio_sum += self.maintenance.head_ratio()
            self._ratio_samples += 1
        if time - self._window_start + 1e-12 >= self.window:
            self._close_window(sim, time)
            self._open_window(stats, time)

    def on_run_end(self, sim, time: float) -> None:
        if self._window_open:
            self._close_window(sim, time)
        self._emit_final(sim, time)

    # ------------------------------------------------------------------
    def _open_window(self, stats, time: float) -> None:
        self._window_open = True
        self._window_start = time
        self._start_counts = {
            category: stats.message_count(category)
            for category in self.categories
        }
        self._ratio_sum = 0.0
        self._ratio_samples = 0

    def _mean_head_ratio(self) -> float | None:
        if self.maintenance is None:
            return None
        if self._ratio_samples == 0:
            return self.maintenance.head_ratio()
        return self._ratio_sum / self._ratio_samples

    def _bound(self, category: str, head_ratio: float | None) -> float:
        if category == "hello":
            return hello_frequency(self.params)
        if category == "cluster":
            return cluster_frequency(self.params, head_ratio, self.convention)
        return route_frequency(self.params, head_ratio, self.convention)

    def _close_window(self, sim, time: float) -> None:
        self._window_open = False
        elapsed = time - self._window_start
        if elapsed <= 1e-12:
            return
        stats = sim.stats
        head_ratio = self._mean_head_ratio()
        self._total_elapsed += elapsed
        scale = self.params.n_nodes * elapsed
        for category in self.categories:
            delta = stats.message_count(category) - self._start_counts.get(
                category, 0
            )
            measured = delta / scale
            bound = self._bound(category, head_ratio)
            ok = measured >= bound * (1.0 - self.rtol)
            self.windows[category] += 1
            if not ok:
                self.window_violations[category] += 1
            self._total_messages[category] += delta
            self._bound_integral[category] += bound * elapsed
            if sim.tracer.enabled:
                record = {
                    "sim": sim.sim_id,
                    "kind": "window",
                    "category": category,
                    "window_start": self._window_start,
                    "elapsed": elapsed,
                    "measured": measured,
                    "bound": bound,
                    "residual": measured - bound,
                    "rtol": self.rtol,
                    "ok": ok,
                }
                if head_ratio is not None:
                    record["head_ratio"] = head_ratio
                sim.tracer.emit("residual", time, **record)

    def _emit_final(self, sim, time: float) -> None:
        """Whole-run verdict: aggregate rate vs time-weighted mean bound."""
        if self._total_elapsed <= 0.0:
            return
        for category in self.categories:
            measured = self._total_messages[category] / (
                self.params.n_nodes * self._total_elapsed
            )
            bound = self._bound_integral[category] / self._total_elapsed
            ok = measured >= bound * (1.0 - self.rtol)
            self.final_verdict[category] = {
                "measured": measured,
                "bound": bound,
                "residual": measured - bound,
                "windows": self.windows[category],
                "window_violations": self.window_violations[category],
                "ok": ok,
            }
            if sim.tracer.enabled:
                sim.tracer.emit(
                    "residual",
                    time,
                    sim=sim.sim_id,
                    kind="final",
                    category=category,
                    elapsed=self._total_elapsed,
                    measured=measured,
                    bound=bound,
                    residual=measured - bound,
                    rtol=self.rtol,
                    ok=ok,
                )

    @property
    def ok(self) -> bool:
        """Whether every final verdict so far holds the bound."""
        return all(v["ok"] for v in self.final_verdict.values())
