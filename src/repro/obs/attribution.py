"""Overhead attribution: per-cause / per-node / per-cluster accounting.

The paper decomposes control overhead into HELLO, CLUSTER and ROUTE
totals; this module decomposes those totals one level further — *why*
was each control message sent, *who* sent it, and *where*.  An
:class:`OverheadLedger` rides the same
:attr:`~repro.sim.stats.MessageStats.on_record` hook the trace's
``msg_tx`` mirror uses, so its accounting reconciles with the
``MessageStats`` totals **by construction**: every recorded message is
observed exactly once, inside the measurement window, already split
into the same ``(category, messages, bits)`` triples the totals
accumulate.  A run-end ``attribution`` trace event carries the full
breakdown; a mismatch (which would indicate a bookkeeping bug, not a
simulation property) fails the run under ``--audit strict``.

Send sites annotate their cause with :func:`attributed`::

    with attributed(sim, CAUSE_REAFFILIATION, node=orphan):
        sim.stats.record("cluster", 1, bits)

When no ledger is attached (``sim.attribution is None`` — the default)
:func:`attributed` returns a shared no-op context manager, so untraced
simulations pay one attribute read and no allocation.

The root-cause vocabulary mirrors the repair taxonomy of the
maintenance layer (P1 head-adjacency repairs, P2 reaffiliations,
head-merge cascades — the same events the span layer links with
``span_link kind="cascade"``), the beacon modes, and the routing
control-plane verbs:

========================  ==================================================
cause                     meaning
========================  ==================================================
``periodic-hello``        periodic beacon broadcast (HELLO periodic mode,
                          or the adaptive mode under the ``fixed`` policy)
``event-hello``           link-generation HELLO pair (event mode, Eqn 4)
``adaptive-hello-analytic``  adaptive beacon under the ``analytic-rate``
                          policy (interval = inverse Eqn-4 rate)
``adaptive-hello-churn``  adaptive beacon under the ``churn-feedback``
                          policy (Gavalas-style multiplicative control)
``adaptive-hello-staleness``  adaptive beacon under the
                          ``staleness-bounded`` policy
``link-break-repair``     route state invalidation after a link break
                          (AODV/hybrid RERR bursts)
``head-adjacency-repair``  P1 repair: the losing head's own demotion
                          message when two heads became adjacent
``reaffiliation``         P2 repair: an orphaned member re-homing after
                          losing the link to its head
``head-merge-cascade``    reaffiliations forced by a head merge (the
                          ``m`` messages of Eqn 10 beyond the demotion)
``intra-cluster-update``  proactive intra-cluster routing round (Eqn 13)
``route-discovery``       reactive RREQ flood + RREP unicast (AODV or
                          backbone discovery)
``dsdv-periodic``         DSDV full-table periodic dump
``dsdv-triggered``        DSDV triggered incremental update
``broadcast-flood``       network-wide data broadcast flood
``crash-recovery``        repair traffic caused by a fault transition
                          (node crash/recover or outage boundary; see
                          :mod:`repro.faults`) rather than mobility
``loss-retransmit``       HELLO retransmissions compensating Bernoulli
                          packet loss (event-mode announce retries)
``unattributed``          recorded outside any :func:`attributed` scope
                          (kept so per-cause sums stay exact)
========================  ==================================================

Node attribution charges each message to its transmitter (floods and
cluster-wide rounds are split evenly across the transmitting nodes;
event-mode HELLO pairs across both endpoints).  Cluster attribution
uses the transmitter's *current* cluster head (``-1`` when the stack
has no one-hop clustering), and a ``bins * bins`` grid over the
region accumulates a spatial heatmap of message density.
"""

from __future__ import annotations

from . import context as obs_context
from .audit import AuditError

__all__ = [
    "CAUSE_PERIODIC_HELLO",
    "CAUSE_EVENT_HELLO",
    "CAUSE_ANALYTIC_HELLO",
    "CAUSE_CHURN_HELLO",
    "CAUSE_STALENESS_HELLO",
    "CAUSE_LINK_BREAK_REPAIR",
    "CAUSE_HEAD_ADJACENCY_REPAIR",
    "CAUSE_REAFFILIATION",
    "CAUSE_HEAD_MERGE_CASCADE",
    "CAUSE_INTRA_CLUSTER_UPDATE",
    "CAUSE_ROUTE_DISCOVERY",
    "CAUSE_DSDV_PERIODIC",
    "CAUSE_DSDV_TRIGGERED",
    "CAUSE_BROADCAST_FLOOD",
    "CAUSE_CRASH_RECOVERY",
    "CAUSE_LOSS_RETRANSMIT",
    "CAUSE_UNATTRIBUTED",
    "KNOWN_CAUSES",
    "OverheadLedger",
    "attach_attribution",
    "attributed",
]

CAUSE_PERIODIC_HELLO = "periodic-hello"
CAUSE_EVENT_HELLO = "event-hello"
CAUSE_ANALYTIC_HELLO = "adaptive-hello-analytic"
CAUSE_CHURN_HELLO = "adaptive-hello-churn"
CAUSE_STALENESS_HELLO = "adaptive-hello-staleness"
CAUSE_LINK_BREAK_REPAIR = "link-break-repair"
CAUSE_HEAD_ADJACENCY_REPAIR = "head-adjacency-repair"
CAUSE_REAFFILIATION = "reaffiliation"
CAUSE_HEAD_MERGE_CASCADE = "head-merge-cascade"
CAUSE_INTRA_CLUSTER_UPDATE = "intra-cluster-update"
CAUSE_ROUTE_DISCOVERY = "route-discovery"
CAUSE_DSDV_PERIODIC = "dsdv-periodic"
CAUSE_DSDV_TRIGGERED = "dsdv-triggered"
CAUSE_BROADCAST_FLOOD = "broadcast-flood"
CAUSE_CRASH_RECOVERY = "crash-recovery"
CAUSE_LOSS_RETRANSMIT = "loss-retransmit"
CAUSE_UNATTRIBUTED = "unattributed"

#: Every cause a stock protocol stack can produce.
KNOWN_CAUSES = (
    CAUSE_PERIODIC_HELLO,
    CAUSE_EVENT_HELLO,
    CAUSE_ANALYTIC_HELLO,
    CAUSE_CHURN_HELLO,
    CAUSE_STALENESS_HELLO,
    CAUSE_LINK_BREAK_REPAIR,
    CAUSE_HEAD_ADJACENCY_REPAIR,
    CAUSE_REAFFILIATION,
    CAUSE_HEAD_MERGE_CASCADE,
    CAUSE_INTRA_CLUSTER_UPDATE,
    CAUSE_ROUTE_DISCOVERY,
    CAUSE_DSDV_PERIODIC,
    CAUSE_DSDV_TRIGGERED,
    CAUSE_BROADCAST_FLOOD,
    CAUSE_CRASH_RECOVERY,
    CAUSE_LOSS_RETRANSMIT,
    CAUSE_UNATTRIBUTED,
)


class _NullScope:
    """Shared no-op context manager for unattributed simulations."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc_info):
        return False


_NULL_SCOPE = _NullScope()


class _CauseScope:
    """Sets the ledger's active cause for the body; nesting-safe."""

    __slots__ = ("_ledger", "_scope", "_saved")

    def __init__(self, ledger, scope):
        self._ledger = ledger
        self._scope = scope

    def __enter__(self):
        self._saved = self._ledger._scope
        self._ledger._scope = self._scope
        return self._scope

    def __exit__(self, *exc_info):
        self._ledger._scope = self._saved
        return False


def attributed(sim, cause, node=None, nodes=None, cluster=None):
    """Scope tagging every ``sim.stats.record`` in the body with ``cause``.

    Parameters
    ----------
    sim:
        The simulation whose ledger (``sim.attribution``) receives the
        tag; a no-op scope is returned when no ledger is attached.
    cause:
        Root-cause label (one of the ``CAUSE_*`` constants, though the
        ledger accepts any string).
    node:
        Transmitting node, when a single node sent everything.
    nodes:
        Transmitting nodes, when the recorded burst is split evenly
        across several transmitters (e.g. one round where every cluster
        node sends once).
    cluster:
        Explicit cluster (head id) to charge; defaults to each
        transmitter's current cluster from the maintenance state.
    """
    ledger = getattr(sim, "attribution", None)
    if ledger is None:
        return _NULL_SCOPE
    return _CauseScope(ledger, (cause, node, nodes, cluster))


class _Tally:
    """Message/bit accumulator (plain attributes; hot path)."""

    __slots__ = ("messages", "bits")

    def __init__(self) -> None:
        self.messages = 0.0
        self.bits = 0.0

    def add(self, messages, bits) -> None:
        self.messages += messages
        self.bits += bits


def _num(value):
    """Integral floats → int, for compact deterministic JSON."""
    value = float(value)
    return int(value) if value.is_integer() else value


class OverheadLedger:
    """Per-cause / per-node / per-cluster control-overhead accounting.

    Attached as an ordinary (duck-typed) protocol; its ``on_attach``
    chains itself into ``sim.stats.on_record`` *in front of* any
    existing hook (the trace's ``msg_tx`` mirror), so it observes
    exactly the records the totals count — records outside the
    measurement window never reach it, and the reconciliation against
    :attr:`~repro.sim.stats.MessageStats.totals` is exact by
    construction.  ``on_run_end`` emits one ``attribution`` trace event
    with the complete breakdown and verifies the reconciliation,
    raising :class:`~repro.obs.audit.AuditError` in strict mode.

    Parameters
    ----------
    maintenance:
        Cluster maintenance protocol supplying the live node → head
        mapping, or ``None`` for unclustered stacks (cluster ``-1``).
    bins:
        Side of the spatial heatmap grid.
    registry:
        When given, ``overhead_messages_total`` / ``overhead_bits_total``
        counters labelled ``{cause, protocol, cluster}`` (plus
        ``labels``) are kept live in it — the source of the OpenMetrics
        export, and merged across workers by the parallel runner.
    strict:
        Raise :class:`AuditError` when the run-end reconciliation
        fails (the ``--audit strict`` contract).
    labels:
        Extra labels stamped on every registry counter (``{"sim": ...}``
        when sharing a registry across runs).
    """

    name = "overhead-attribution"

    def __init__(
        self,
        maintenance=None,
        bins: int = 8,
        registry=None,
        strict: bool = False,
        labels: dict | None = None,
    ) -> None:
        if bins < 1:
            raise ValueError(f"bins must be positive, got {bins}")
        self.maintenance = maintenance
        self.bins = bins
        self.registry = registry
        self.strict = strict
        self.labels = dict(labels) if labels else {}
        #: ``(category, cause) -> _Tally``
        self.by_cause: dict[tuple[str, str], _Tally] = {}
        #: ``node -> _Tally`` (transmitter attribution).
        self.by_node: dict[int, _Tally] = {}
        #: ``cluster head -> _Tally`` (``-1`` = no cluster).
        self.by_cluster: dict[int, _Tally] = {}
        #: ``(category, cause, cluster) -> _Tally`` — the full label
        #: cross-product behind the ``overhead_*_total`` counters, kept
        #: ledger-side too so a trace alone can rebuild the metrics.
        self.by_cell: dict[tuple[str, str, int], _Tally] = {}
        #: ``category -> _Tally`` accumulated in record order — the
        #: bitwise mirror of the ``MessageStats`` counters.
        self.totals: dict[str, _Tally] = {}
        #: Row-major ``bins * bins`` message-density grid.
        self.heatmap: list[float] = [0.0] * (bins * bins)
        self._scope = None
        self._sim = None
        self._side = 1.0
        self._chained = None
        self._counter_cache: dict[tuple[str, str, int], tuple] = {}
        self._flushed = False

    # ------------------------------------------------------------------
    # Protocol hooks (duck-typed; see Simulation.attach)
    # ------------------------------------------------------------------
    def on_attach(self, sim) -> None:
        self._sim = sim
        self._side = float(sim.params.side)
        sim.attribution = self
        # Chain in front of the existing hook (the msg_tx trace mirror)
        # so both observe the identical record stream.
        self._chained = sim.stats.on_record
        sim.stats.on_record = self._on_record

    def on_step_begin(self, sim, time: float) -> None:
        pass

    def on_link_up(self, sim, u: int, v: int, time: float) -> None:
        pass

    def on_link_down(self, sim, u: int, v: int, time: float) -> None:
        pass

    def on_step_end(self, sim, time: float) -> None:
        pass

    def on_run_end(self, sim, time: float) -> None:
        if self._flushed:  # manual drivers may notify more than once
            return
        self._flushed = True
        mismatches = self.reconcile()
        if sim.tracer.enabled:
            sim.tracer.emit(
                "attribution",
                time,
                sim=sim.sim_id,
                **self.snapshot(),
                reconciled=not mismatches,
            )
        if mismatches and self.strict:
            raise AuditError(
                f"overhead attribution failed to reconcile with message "
                f"totals (sim {sim.sim_id}): " + "; ".join(mismatches)
            )

    # ------------------------------------------------------------------
    # Accounting (the MessageStats.on_record hook)
    # ------------------------------------------------------------------
    def _on_record(self, category: str, messages: int, bits: float) -> None:
        scope = self._scope
        if scope is None:
            cause, node, nodes, cluster = CAUSE_UNATTRIBUTED, None, None, None
        else:
            cause, node, nodes, cluster = scope

        tally = self.by_cause.get((category, cause))
        if tally is None:
            tally = self.by_cause[(category, cause)] = _Tally()
        tally.add(messages, bits)
        total = self.totals.get(category)
        if total is None:
            total = self.totals[category] = _Tally()
        total.add(messages, bits)

        if node is not None:
            targets = (int(node),)
        elif nodes is not None and len(nodes):
            targets = tuple(int(x) for x in nodes)
        else:
            targets = ()

        if targets:
            share_messages = messages / len(targets)
            share_bits = bits / len(targets)
            positions = self._sim.positions
            scale = self.bins / self._side
            last = self.bins - 1
            for target in targets:
                entry = self.by_node.get(target)
                if entry is None:
                    entry = self.by_node[target] = _Tally()
                entry.add(share_messages, share_bits)
                home = (
                    int(cluster)
                    if cluster is not None
                    else self._cluster_of(target)
                )
                entry = self.by_cluster.get(home)
                if entry is None:
                    entry = self.by_cluster[home] = _Tally()
                entry.add(share_messages, share_bits)
                x, y = positions[target]
                col = min(last, int(x * scale))
                row = min(last, int(y * scale))
                self.heatmap[row * self.bins + col] += share_messages
                self._registry_add(
                    category, cause, home, share_messages, share_bits
                )
        else:
            home = int(cluster) if cluster is not None else -1
            entry = self.by_cluster.get(home)
            if entry is None:
                entry = self.by_cluster[home] = _Tally()
            entry.add(messages, bits)
            self._registry_add(category, cause, home, messages, bits)

        if self._chained is not None:
            self._chained(category, messages, bits)

    def _cluster_of(self, node: int) -> int:
        maintenance = self.maintenance
        if maintenance is None or maintenance.state is None:
            return -1
        return int(maintenance.state.head_of[node])

    def _registry_add(self, category, cause, cluster, messages, bits) -> None:
        cell = self.by_cell.get((category, cause, cluster))
        if cell is None:
            cell = self.by_cell[(category, cause, cluster)] = _Tally()
        cell.add(messages, bits)
        if self.registry is None:
            return
        key = (category, cause, cluster)
        pair = self._counter_cache.get(key)
        if pair is None:
            pair = (
                self.registry.counter(
                    "overhead_messages_total",
                    cause=cause,
                    protocol=category,
                    cluster=str(cluster),
                    **self.labels,
                ),
                self.registry.counter(
                    "overhead_bits_total",
                    cause=cause,
                    protocol=category,
                    cluster=str(cluster),
                    **self.labels,
                ),
            )
            self._counter_cache[key] = pair
        pair[0].inc(messages)
        pair[1].inc(bits)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def reconcile(self) -> list[str]:
        """Check the ledger against ``sim.stats``; returns mismatches.

        Two properties are verified: the ledger's record-order category
        totals equal the ``MessageStats`` totals exactly (same stream,
        same accumulation order — bitwise), and per-cause message
        counts sum to the category totals (integer arithmetic).
        """
        problems: list[str] = []
        stats_totals = self._sim.stats.totals
        categories = sorted(set(stats_totals) | set(self.totals))
        for category in categories:
            expected = stats_totals.get(category)
            expected_messages = 0 if expected is None else expected.messages
            expected_bits = 0.0 if expected is None else expected.bits
            seen = self.totals.get(category)
            seen_messages = 0 if seen is None else int(seen.messages)
            seen_bits = 0.0 if seen is None else seen.bits
            if seen_messages != expected_messages or seen_bits != expected_bits:
                problems.append(
                    f"{category}: ledger {seen_messages} msg/{seen_bits:g} "
                    f"bits vs stats {expected_messages} msg/"
                    f"{expected_bits:g} bits"
                )
            cause_messages = sum(
                tally.messages
                for (cat, _cause), tally in self.by_cause.items()
                if cat == category
            )
            if int(cause_messages) != expected_messages:
                problems.append(
                    f"{category}: per-cause sum {int(cause_messages)} msg "
                    f"vs stats {expected_messages} msg"
                )
        return problems

    def snapshot(self) -> dict:
        """JSON-ready breakdown (sorted keys, deterministic bytes)."""
        causes: dict[str, dict] = {}
        for (category, cause), tally in sorted(self.by_cause.items()):
            causes.setdefault(category, {})[cause] = {
                "messages": _num(tally.messages),
                "bits": tally.bits,
            }
        return {
            "causes": causes,
            "nodes": {
                str(node): {
                    "messages": _num(tally.messages),
                    "bits": tally.bits,
                }
                for node, tally in sorted(self.by_node.items())
            },
            "clusters": {
                str(cluster): {
                    "messages": _num(tally.messages),
                    "bits": tally.bits,
                }
                for cluster, tally in sorted(self.by_cluster.items())
            },
            "cells": [
                [
                    category,
                    cause,
                    cluster,
                    _num(tally.messages),
                    tally.bits,
                ]
                for (category, cause, cluster), tally in sorted(
                    self.by_cell.items()
                )
            ],
            "heatmap": {
                "bins": self.bins,
                "side": self._side,
                "messages": [
                    [
                        _num(self.heatmap[row * self.bins + col])
                        for col in range(self.bins)
                    ]
                    for row in range(self.bins)
                ],
            },
            "totals": {
                category: {
                    "messages": _num(tally.messages),
                    "bits": tally.bits,
                }
                for category, tally in sorted(self.totals.items())
            },
        }


def attach_attribution(sim, maintenance=None, bins: int = 8):
    """Attach an :class:`OverheadLedger` to ``sim`` when telemetry is on.

    The ledger is attached when the simulation is traced or the ambient
    context carries a shared metrics registry (``--metrics-json`` /
    ``--metrics-openmetrics``); otherwise this is a no-op returning
    ``None`` — the zero-cost default, matching
    :func:`~repro.obs.health.attach_run_health`.  Strictness follows
    the ambient :class:`~repro.obs.context.RunHealthConfig`.

    Must be called after the message-producing protocols are attached
    (so cluster lookups see the maintained state) — in practice right
    next to the other ``attach_*`` helpers.
    """
    context = obs_context.current()
    if not sim.tracer.enabled and context.registry is None:
        return None
    ledger = OverheadLedger(
        maintenance=maintenance,
        bins=bins,
        registry=context.registry,
        strict=context.health.strict if context.health is not None else False,
        labels={"sim": str(sim.sim_id)} if context.registry is not None else None,
    )
    sim.attach(ledger)
    return ledger
