"""OpenMetrics / Prometheus text-exposition export.

Renders a :class:`~repro.obs.metrics.MetricsRegistry` in the
OpenMetrics text format (the Prometheus exposition format plus the
``# EOF`` terminator), so a run's counters — including the overhead
attribution ledger's ``overhead_*_total{cause, protocol, cluster}``
family — can be scraped, diffed, or pushed to a gateway::

    # HELP overhead_messages repro-manet metric overhead_messages_total.
    # TYPE overhead_messages counter
    overhead_messages_total{cause="reaffiliation",cluster="3",protocol="cluster",sim="0"} 30
    ...
    # EOF

Two sources feed the renderer:

* the **live registry** a run populated (``repro-manet run ...
  --metrics-openmetrics out.om``) — workers' registries are folded into
  the parent's by the parallel runner, so any ``--jobs`` value exports
  identical bytes;
* a **trace file** (``repro-manet metrics trace.jsonl``) — rebuilt by
  :func:`registry_from_trace` from ``run_end`` totals, ``attribution``
  events and the raw event counts, so the export needs nothing beyond
  the trace.

Family naming follows the Prometheus convention: a counter family is
announced without the ``_total`` suffix its samples carry.
"""

from __future__ import annotations

import math
from pathlib import Path

from .metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "render_openmetrics",
    "registry_from_trace",
    "write_openmetrics",
]

#: Help strings for the families this package produces.
_HELP = {
    "messages": "Control messages recorded, by category.",
    "bits": "Control-message bits recorded, by category.",
    "overhead_messages": (
        "Attributed control messages, by root cause, protocol "
        "(category) and cluster."
    ),
    "overhead_bits": (
        "Attributed control-message bits, by root cause, protocol "
        "(category) and cluster."
    ),
    "overhead_node_messages": "Attributed control messages, by node.",
    "overhead_node_bits": "Attributed control-message bits, by node.",
    "trace_events": "Trace records read, by event type.",
    "measured_time": "Measured simulated time of the run.",
    "cache_hits": "Result-store hits.",
    "cache_misses": "Result-store misses.",
    "cache_writes": "Result-store records written.",
    "worker_chunk_size": "Tasks per worker chunk of the last parallel run.",
}


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_text(labels: dict) -> str:
    if not labels:
        return ""
    parts = ",".join(
        f'{key}="{_escape(str(value))}"'
        for key, value in sorted(labels.items())
    )
    return "{" + parts + "}"


def _value_text(value) -> str:
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _family_name(metric) -> str:
    name = metric.name
    if isinstance(metric, Counter) and name.endswith("_total"):
        return name[: -len("_total")]
    return name


def _help_line(family: str) -> str:
    text = _HELP.get(family, f"repro-manet metric {family}.")
    return f"# HELP {family} {_escape(text)}"


def render_openmetrics(registry: MetricsRegistry) -> str:
    """Render every instrument of ``registry`` as OpenMetrics text.

    Families keep registry registration order; samples within a family
    are sorted by label set, so the output is deterministic for a
    deterministic registry (which the parallel runner's fold
    guarantees).
    """
    families: dict[str, list] = {}
    for metric in registry.collect():
        families.setdefault(_family_name(metric), []).append(metric)

    lines: list[str] = []
    for family, metrics in families.items():
        kind = metrics[0]
        lines.append(_help_line(family))
        if isinstance(kind, Counter):
            lines.append(f"# TYPE {family} counter")
            for metric in sorted(metrics, key=lambda m: sorted(m.labels.items())):
                lines.append(
                    f"{family}_total{_label_text(metric.labels)} "
                    f"{_value_text(metric.value)}"
                )
        elif isinstance(kind, Gauge):
            lines.append(f"# TYPE {family} gauge")
            for metric in sorted(metrics, key=lambda m: sorted(m.labels.items())):
                lines.append(
                    f"{family}{_label_text(metric.labels)} "
                    f"{_value_text(metric.value)}"
                )
        elif isinstance(kind, Histogram):
            lines.append(f"# TYPE {family} histogram")
            for metric in sorted(metrics, key=lambda m: sorted(m.labels.items())):
                cumulative = 0
                for bound, count in zip(
                    tuple(metric.bounds) + (float("inf"),),
                    metric.bucket_counts,
                ):
                    cumulative += count
                    labels = dict(metric.labels)
                    labels["le"] = _value_text(bound) if math.isfinite(
                        bound
                    ) else "+Inf"
                    lines.append(
                        f"{family}_bucket{_label_text(labels)} {cumulative}"
                    )
                base = _label_text(metric.labels)
                lines.append(f"{family}_count{base} {metric.count}")
                lines.append(f"{family}_sum{base} {_value_text(metric.sum)}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def registry_from_trace(path) -> MetricsRegistry:
    """Rebuild a metrics registry from a trace file.

    Produces the same counter families a live traced run populates:
    ``messages_total`` / ``bits_total`` per category (from ``run_end``
    totals), the attribution ``overhead_*_total`` cross-product (from
    ``attribution`` events' ``cells``), per-node attribution counters,
    per-run ``measured_time`` gauges, and ``trace_events_total`` counts
    of every record type read.
    """
    from .summary import read_trace

    registry = MetricsRegistry()
    for record in read_trace(path):
        event = record["event"]
        registry.counter("trace_events_total", event=event).inc()
        if event == "run_end":
            sim = str(record.get("sim", 0))
            registry.gauge("measured_time", sim=sim).set(
                float(record.get("measured_time", 0.0))
            )
            for category, totals in sorted(
                record.get("totals", {}).items()
            ):
                registry.counter(
                    "messages_total", category=category, sim=sim
                ).inc(totals["messages"])
                registry.counter(
                    "bits_total", category=category, sim=sim
                ).inc(totals["bits"])
        elif event == "attribution":
            sim = str(record.get("sim", 0))
            for category, cause, cluster, messages, bits in record.get(
                "cells", []
            ):
                labels = {
                    "cause": cause,
                    "protocol": category,
                    "cluster": str(cluster),
                    "sim": sim,
                }
                registry.counter(
                    "overhead_messages_total", **labels
                ).inc(messages)
                registry.counter("overhead_bits_total", **labels).inc(bits)
            for node, tally in record.get("nodes", {}).items():
                registry.counter(
                    "overhead_node_messages_total", node=node, sim=sim
                ).inc(tally["messages"])
                registry.counter(
                    "overhead_node_bits_total", node=node, sim=sim
                ).inc(tally["bits"])
    return registry


def write_openmetrics(registry: MetricsRegistry, path) -> None:
    """Write ``registry`` to ``path`` in OpenMetrics text format."""
    Path(path).write_text(render_openmetrics(registry), encoding="utf-8")
