"""Chrome/Perfetto timeline export and collapsed-stack profiles.

``repro-manet timeline <trace>`` converts a JSONL trace into the Chrome
trace-event JSON format (the ``traceEvents`` array understood by
``chrome://tracing`` and https://ui.perfetto.dev), so a simulation run
can be inspected *visually*: span hierarchies become nested slices,
``span_link`` edges become flow arrows, the cluster-dynamics series
become counter tracks, and head changes become instant markers.

Mapping (all timestamps are simulated seconds scaled to microseconds,
since the trace-event format is wall-clock-oriented):

===================  =================================================
trace event          Chrome trace event
===================  =================================================
``span_start/end``   one complete slice (``ph="X"``) per matched pair,
                     on ``pid=sim``, ``tid`` by span kind
``span_link``        a flow arrow (``ph="s"`` → ``ph="f"``)
``cluster_window``   counter samples (``ph="C"``): clusters, gateways,
                     head changes, reaffiliations per window
``head_change``      instant events (``ph="i"``)
``run_begin/end``    process metadata (``ph="M"``) naming ``pid=sim``
===================  =================================================

Zero-duration slices (a handler span opens and closes at the same
simulated instant — common, since repairs complete within one step) are
widened to a nominal minimum so they remain clickable in the viewer;
the true ``duration`` is preserved in the slice's ``args``.

The module also hosts the ``--profile`` helper used by ``run`` /
``simulate``: a :mod:`cProfile` capture written in *collapsed-stack*
format (``caller;callee count`` lines, one per line), the input format
of flamegraph tooling.  The two-frame stacks are an approximation —
cProfile records caller/callee pairs, not full stacks — which is
exactly enough for a width-proportional flame graph of where run time
went.
"""

from __future__ import annotations

import json
from pathlib import Path

from .summary import read_trace

__all__ = [
    "build_timeline",
    "profile_to_collapsed",
    "write_collapsed_profile",
    "write_timeline",
]

#: Simulated seconds → trace-event microseconds.
_US = 1_000_000.0

#: Nominal width for zero-duration slices (µs) so they stay visible.
_MIN_SLICE_US = 1.0

#: Counter tracks exported from each ``cluster_window`` record.
_WINDOW_COUNTERS = (
    ("clusters", "clusters"),
    ("gateways", "gateways"),
    ("head_changes", "head changes/window"),
    ("reaffiliations", "reaffiliations/window"),
)

#: Stable thread ids per span kind, so the viewer groups slices in a
#: fixed vertical order (run on top, handlers at the bottom).
_KIND_TIDS = {"run": 0, "phase": 1, "step": 2, "handler": 3}


def _tid_for(kind: str) -> int:
    return _KIND_TIDS.get(kind, 4)


def build_timeline(path) -> dict:
    """Convert the JSONL trace at ``path`` into a Chrome trace dict.

    Returns ``{"traceEvents": [...], "displayTimeUnit": "ms"}``, ready
    for ``json.dump``.  Raises ``ValueError`` for a malformed or empty
    trace (same contract as :func:`~repro.obs.summary.summarize_trace`).
    """
    events: list[dict] = []
    #: span id -> its span_start record (until the span_end arrives).
    open_spans: dict[int, dict] = {}
    named_pids: set[int] = set()
    records = 0

    def ensure_process(sim: int) -> None:
        if sim in named_pids:
            return
        named_pids.add(sim)
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": sim,
                "args": {"name": f"sim {sim}"},
            }
        )
        for kind, tid in sorted(_KIND_TIDS.items(), key=lambda kv: kv[1]):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": sim,
                    "tid": tid,
                    "args": {"name": kind},
                }
            )

    for record in read_trace(path):
        records += 1
        event = record.get("event")
        sim = int(record.get("sim", 0))
        time_us = float(record.get("t", 0.0)) * _US
        if event == "span_start":
            open_spans[int(record["span"])] = record
        elif event == "span_end":
            span = int(record["span"])
            start = open_spans.pop(span, None)
            if start is None:
                continue  # start lost to filtering/truncation
            ensure_process(sim)
            start_us = float(start["t"]) * _US
            duration_us = max(time_us - start_us, _MIN_SLICE_US)
            args = {
                key: value
                for key, value in start.items()
                if key
                not in ("schema", "event", "t", "sim", "span", "name", "kind")
            }
            args["span"] = span
            args["duration"] = record.get("duration", 0.0)
            events.append(
                {
                    "name": str(start.get("name", "span")),
                    "cat": str(start.get("kind", "span")),
                    "ph": "X",
                    "ts": start_us,
                    "dur": duration_us,
                    "pid": sim,
                    "tid": _tid_for(str(start.get("kind", ""))),
                    "args": args,
                }
            )
        elif event == "span_link":
            ensure_process(sim)
            link_id = f"{record['src_span']}->{record['dst_span']}"
            common = {
                "name": str(record.get("kind", "link")),
                "cat": "span_link",
                "id": link_id,
                "pid": sim,
                "tid": _tid_for("handler"),
            }
            events.append({**common, "ph": "s", "ts": time_us})
            events.append(
                {**common, "ph": "f", "bp": "e", "ts": time_us + _MIN_SLICE_US}
            )
        elif event == "cluster_window":
            ensure_process(sim)
            for field, label in _WINDOW_COUNTERS:
                events.append(
                    {
                        "name": label,
                        "cat": "cluster_window",
                        "ph": "C",
                        "ts": time_us,
                        "pid": sim,
                        "args": {label: record.get(field, 0)},
                    }
                )
        elif event == "head_change":
            ensure_process(sim)
            events.append(
                {
                    "name": f"head {record.get('kind', '?')} "
                    f"n{record.get('node', '?')}",
                    "cat": "head_change",
                    "ph": "i",
                    "s": "p",
                    "ts": time_us,
                    "pid": sim,
                    "tid": _tid_for("handler"),
                    "args": {
                        "node": record.get("node"),
                        "kind": record.get("kind"),
                    },
                }
            )
    if records == 0:
        raise ValueError(f"{path}: empty trace (no records)")
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_timeline(trace_path, out_path) -> int:
    """Export ``trace_path`` as Chrome trace JSON; returns event count."""
    timeline = build_timeline(trace_path)
    Path(out_path).write_text(
        json.dumps(timeline, separators=(",", ":")) + "\n", encoding="utf-8"
    )
    return len(timeline["traceEvents"])


# ----------------------------------------------------------------------
# cProfile capture → collapsed stacks
# ----------------------------------------------------------------------
def _func_label(func: tuple) -> str:
    """``file:function`` label for a pstats function key."""
    filename, _lineno, name = func
    if filename == "~":  # built-in: name already reads "<method ...>"
        return name
    return f"{Path(filename).name}:{name}"


def profile_to_collapsed(profile) -> list[str]:
    """Collapse a :class:`cProfile.Profile` into flamegraph input lines.

    Each line is ``caller;callee <microseconds>`` (or a single frame
    for root calls), weighting each function's *own* time across its
    call edges in proportion to the cumulative time under each caller —
    the two-frame approximation cProfile's caller tables support (it
    records caller/callee pairs, not full stacks).  Lines are sorted by
    stack name for deterministic output.
    """
    import pstats

    stats = pstats.Stats(profile)
    lines: dict[str, int] = {}
    for func, (_cc, _nc, own_s, _cum_s, callers) in stats.stats.items():
        name = _func_label(func)
        own_us = int(own_s * _US)
        if not callers:
            lines[name] = lines.get(name, 0) + own_us
            continue
        edge_cum = {
            caller: caller_stats[3]
            for caller, caller_stats in callers.items()
        }
        total_cum = sum(edge_cum.values())
        for caller, cum in edge_cum.items():
            share = cum / total_cum if total_cum > 0 else 1 / len(edge_cum)
            stack = f"{_func_label(caller)};{name}"
            lines[stack] = lines.get(stack, 0) + int(own_us * share)
    return [
        f"{stack} {value}"
        for stack, value in sorted(lines.items())
        if value > 0
    ]


def write_collapsed_profile(profile, out_path) -> int:
    """Write a profile's collapsed stacks to ``out_path``; returns lines."""
    lines = profile_to_collapsed(profile)
    Path(out_path).write_text("\n".join(lines) + "\n", encoding="utf-8")
    return len(lines)
