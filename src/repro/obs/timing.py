"""Per-phase wall-clock accounting for simulation runs.

The simulation kernel charges every step's work to named phases —
``mobility`` (model advance), ``adjacency`` (unit-disk recompute),
``link_diff`` (event extraction) and one ``protocol:<name>`` phase per
attached protocol — into a :class:`PhaseTimer`.  A timer can be private
to one :class:`~repro.sim.engine.Simulation` or shared through the
ambient observability context (see :mod:`repro.obs.context`) so that a
whole sweep or benchmark accumulates a single breakdown.

Timing is always on: the cost is a handful of ``perf_counter`` calls
per step, orders of magnitude below the adjacency recompute they
measure.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = ["PhaseTimer", "PhaseTiming", "TimingReport"]


@dataclass(frozen=True)
class PhaseTiming:
    """Accumulated wall-clock for one phase."""

    phase: str
    seconds: float
    calls: int

    @property
    def mean_seconds(self) -> float:
        """Mean wall-clock per call (NaN when never called)."""
        if self.calls == 0:
            return float("nan")
        return self.seconds / self.calls


@dataclass(frozen=True)
class TimingReport:
    """Snapshot of a :class:`PhaseTimer`, renderable as a table."""

    phases: tuple[PhaseTiming, ...]

    @property
    def total_seconds(self) -> float:
        """Wall-clock summed over every phase."""
        return sum(p.seconds for p in self.phases)

    def to_dict(self) -> dict:
        """JSON-serializable view."""
        return {
            "total_seconds": self.total_seconds,
            "phases": [
                {
                    "phase": p.phase,
                    "seconds": p.seconds,
                    "calls": p.calls,
                }
                for p in self.phases
            ],
        }

    def render(self) -> str:
        """Human-readable per-phase breakdown, slowest phase first."""
        lines = ["phase timing (wall-clock)"]
        total = self.total_seconds
        ordered = sorted(self.phases, key=lambda p: -p.seconds)
        for timing in ordered:
            share = timing.seconds / total if total > 0 else 0.0
            lines.append(
                f"  {timing.phase:28s} {timing.seconds:10.4f} s "
                f"{share:7.1%}  ({timing.calls} calls, "
                f"{1e6 * timing.mean_seconds:9.1f} us/call)"
            )
        lines.append(f"  {'total':28s} {total:10.4f} s")
        return "\n".join(lines)


class PhaseTimer:
    """Accumulates wall-clock seconds per named phase."""

    def __init__(self) -> None:
        self._seconds: dict[str, float] = {}
        self._calls: dict[str, int] = {}

    # ------------------------------------------------------------------
    def add(self, phase: str, seconds: float, calls: int = 1) -> None:
        """Charge ``seconds`` of wall-clock to ``phase``."""
        self._seconds[phase] = self._seconds.get(phase, 0.0) + seconds
        self._calls[phase] = self._calls.get(phase, 0) + calls

    @contextmanager
    def phase(self, name: str):
        """Context manager charging its body's duration to ``name``."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.add(name, time.perf_counter() - start)

    def reset(self) -> None:
        """Drop all accumulated phases."""
        self._seconds.clear()
        self._calls.clear()

    # ------------------------------------------------------------------
    @property
    def phases(self) -> list[str]:
        """Phase names seen so far, in first-use order."""
        return list(self._seconds)

    def seconds(self, phase: str) -> float:
        """Accumulated wall-clock of ``phase`` (0 when unseen)."""
        return self._seconds.get(phase, 0.0)

    def report(self) -> TimingReport:
        """Immutable snapshot of the current accumulation."""
        return TimingReport(
            phases=tuple(
                PhaseTiming(name, self._seconds[name], self._calls[name])
                for name in self._seconds
            )
        )
