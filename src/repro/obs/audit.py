"""Streaming invariant auditor for the one-hop clustering properties.

The maintenance protocol promises the paper's properties P1 (no two
adjacent cluster-heads) and P2 (every node affiliated to a neighboring
head) after *every* delivered link event.  The test suite asserts this
on small runs; :class:`InvariantAuditor` carries the same check into
any live simulation: attached as an ordinary protocol it re-validates
the maintained :class:`~repro.clustering.base.ClusterState` against the
live adjacency on a configurable simulated-time cadence and emits one
``invariant_audit`` trace event per check::

    {"event": "invariant_audit", "t": 6.5, "sim": 0, "ok": true,
     "adjacent_heads": 0, "unaffiliated": 0, "detached_members": 0,
     "dangling_members": 0, "audits": 13, "violations": 0}

Violation *durations* are tracked across audits (the simulated time the
structure spent invalid, at audit resolution), so a transient glitch
and a persistently broken structure are distinguishable in the trace.
In ``strict`` mode the first violation raises :class:`AuditError` —
``repro-manet run --audit strict`` turns any invariant regression into
a non-zero exit, which is how CI uses it.

Attach the auditor *after* the maintenance protocol so its
``on_step_end`` sees the repaired structure of the step, not the
pre-repair one (:func:`repro.obs.health.attach_run_health` does this).
"""

from __future__ import annotations

__all__ = ["AuditError", "InvariantAuditor"]


class AuditError(RuntimeError):
    """A strict-mode invariant audit found a P1/P2 violation."""


class InvariantAuditor:
    """Protocol auditing P1/P2 of a maintained cluster structure.

    Parameters
    ----------
    maintenance:
        The :class:`~repro.clustering.maintenance.ClusterMaintenanceProtocol`
        (or any object with a ``state`` attribute holding a
        :class:`~repro.clustering.base.ClusterState`) to audit.
    every:
        Simulated time between audits.
    strict:
        Raise :class:`AuditError` on the first violating audit.
    """

    name = "invariant-audit"

    def __init__(self, maintenance, every: float = 1.0, strict: bool = False):
        if every <= 0.0:
            raise ValueError(f"every must be positive, got {every}")
        self.maintenance = maintenance
        self.every = every
        self.strict = strict
        #: Audits performed / audits that found at least one violation.
        self.audits = 0
        self.violations = 0
        #: Simulated time spent in violation, at audit resolution.
        self.violation_time = 0.0
        #: ``(start, end)`` simulated-time spans of violation episodes.
        self.violation_spans: list[tuple[float, float]] = []
        self._violating_since: float | None = None
        self._last_audit_time: float | None = None
        self._next_audit: float = 0.0

    # ------------------------------------------------------------------
    # Protocol hooks (duck-typed; see Simulation.attach)
    # ------------------------------------------------------------------
    def on_attach(self, sim) -> None:
        self._next_audit = sim.time

    def on_step_begin(self, sim, time: float) -> None:
        pass

    def on_link_up(self, sim, u: int, v: int, time: float) -> None:
        pass

    def on_link_down(self, sim, u: int, v: int, time: float) -> None:
        pass

    def on_step_end(self, sim, time: float) -> None:
        if time + 1e-12 < self._next_audit:
            return
        self._next_audit = time + self.every
        self.audit(sim, time)

    def on_run_end(self, sim, time: float) -> None:
        # One closing audit so the trace always ends with a verdict,
        # and any open violation episode is closed at run end.
        self.audit(sim, time)
        if self._violating_since is not None:
            self._close_episode(time)

    # ------------------------------------------------------------------
    def audit(self, sim, time: float) -> bool:
        """Run one audit now; returns whether the structure is valid."""
        # Imported lazily: obs must not pull the clustering package (and
        # through it the simulation engine) at import time.
        from ..clustering.properties import check_properties

        state = self.maintenance.state
        if state is None:
            return True
        found = check_properties(state, sim.adjacency)
        self.audits += 1
        ok = found.ok
        counts = {
            "adjacent_heads": len(found.adjacent_heads),
            "unaffiliated": len(found.unaffiliated),
            "detached_members": len(found.detached_members),
            "dangling_members": len(found.dangling_members),
        }
        if not ok:
            self.violations += 1
            if self._violating_since is None:
                self._violating_since = time
        elif self._violating_since is not None:
            self._close_episode(time)
        self._last_audit_time = time
        if sim.tracer.enabled:
            sim.tracer.emit(
                "invariant_audit",
                time,
                sim=sim.sim_id,
                ok=ok,
                audits=self.audits,
                violations=self.violations,
                **counts,
            )
        if not ok and self.strict:
            raise AuditError(
                f"invariant audit failed at t={time:.6g} "
                f"(sim {sim.sim_id}): {found.describe()}"
            )
        return ok

    def _close_episode(self, time: float) -> None:
        start = self._violating_since
        self.violation_spans.append((start, time))
        self.violation_time += time - start
        self._violating_since = None

    @property
    def ok(self) -> bool:
        """Whether every audit so far passed."""
        return self.violations == 0
