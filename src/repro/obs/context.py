"""Ambient observability context.

Experiments build their :class:`~repro.sim.engine.Simulation` objects
several layers below the CLI, so threading a tracer/registry/timer
through every experiment signature would bloat the whole call graph.
Instead an *ambient context* (the pattern stdlib ``logging`` uses) owns
the current observability configuration; ``Simulation.__init__`` reads
it when no explicit tracer/timer is passed::

    from repro.obs import JsonlTracer, observe

    with JsonlTracer("run.jsonl") as tracer, observe(tracer=tracer):
        run_experiment("fig1", quick=True)   # every sim inside traces

Contexts nest; leaving the ``with`` restores the previous one.  The
default context has the null tracer, no shared registry and no shared
timer, so nothing changes for code that never touches this module.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

from .metrics import MetricsRegistry
from .timing import PhaseTimer
from .tracer import NULL_TRACER, Tracer

__all__ = ["ObsContext", "RunHealthConfig", "current", "observe"]


@dataclass(frozen=True)
class RunHealthConfig:
    """Configuration of the run-health layer (see :mod:`repro.obs.health`).

    Carried by the ambient context so experiment code several layers
    below the CLI can attach the invariant auditor and the analytic
    residual monitor without new plumbing — and so worker processes can
    inherit the exact same configuration (it is picklable by design).
    """

    #: Simulated-time cadence between invariant audits.
    audit_every: float = 1.0
    #: Raise :class:`~repro.obs.audit.AuditError` on a P1/P2 violation
    #: instead of only recording it.
    strict: bool = False
    #: Simulated-time width of one residual measurement window.
    residual_window: float = 2.0
    #: Relative slack below the analytic lower bound tolerated before a
    #: window (or the final verdict) is flagged.  The measured rate of a
    #: window carrying ``M`` messages fluctuates with relative std
    #: ``~1/sqrt(M)``, so short runs need slack well above the model's
    #: own accuracy; 0.15 absorbs that noise while still catching
    #: genuine regime mismatches (which run tens of percent).
    residual_rtol: float = 0.15

    def __post_init__(self) -> None:
        if self.audit_every <= 0.0:
            raise ValueError(
                f"audit_every must be positive, got {self.audit_every}"
            )
        if self.residual_window <= 0.0:
            raise ValueError(
                f"residual_window must be positive, got {self.residual_window}"
            )
        if self.residual_rtol < 0.0:
            raise ValueError(
                f"residual_rtol must be non-negative, got {self.residual_rtol}"
            )


@dataclass(frozen=True)
class ObsContext:
    """One observability configuration scope.

    ``registry`` and ``timer`` being ``None`` means "per-simulation
    private instances"; a non-None value is shared by every simulation
    constructed inside the scope (runs are distinguished by a ``sim``
    label / phase accumulation respectively).  ``health`` being
    ``None`` means "no run-health protocols are attached".
    """

    tracer: Tracer = NULL_TRACER
    registry: MetricsRegistry | None = None
    timer: PhaseTimer | None = None
    health: RunHealthConfig | None = None


_stack: list[ObsContext] = [ObsContext()]


def current() -> ObsContext:
    """The innermost active context."""
    return _stack[-1]


@contextmanager
def observe(
    tracer: Tracer | None = None,
    registry: MetricsRegistry | None = None,
    timer: PhaseTimer | None = None,
    health: RunHealthConfig | None = None,
):
    """Push a context for the ``with`` body; unset fields inherit."""
    base = current()
    context = ObsContext(
        tracer=tracer if tracer is not None else base.tracer,
        registry=registry if registry is not None else base.registry,
        timer=timer if timer is not None else base.timer,
        health=health if health is not None else base.health,
    )
    _stack.append(context)
    try:
        yield context
    finally:
        _stack.pop()
