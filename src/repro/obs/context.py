"""Ambient observability context.

Experiments build their :class:`~repro.sim.engine.Simulation` objects
several layers below the CLI, so threading a tracer/registry/timer
through every experiment signature would bloat the whole call graph.
Instead an *ambient context* (the pattern stdlib ``logging`` uses) owns
the current observability configuration; ``Simulation.__init__`` reads
it when no explicit tracer/timer is passed::

    from repro.obs import JsonlTracer, observe

    with JsonlTracer("run.jsonl") as tracer, observe(tracer=tracer):
        run_experiment("fig1", quick=True)   # every sim inside traces

Contexts nest; leaving the ``with`` restores the previous one.  The
default context has the null tracer, no shared registry and no shared
timer, so nothing changes for code that never touches this module.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

from .metrics import MetricsRegistry
from .timing import PhaseTimer
from .tracer import NULL_TRACER, Tracer

__all__ = ["ObsContext", "current", "observe"]


@dataclass(frozen=True)
class ObsContext:
    """One observability configuration scope.

    ``registry`` and ``timer`` being ``None`` means "per-simulation
    private instances"; a non-None value is shared by every simulation
    constructed inside the scope (runs are distinguished by a ``sim``
    label / phase accumulation respectively).
    """

    tracer: Tracer = NULL_TRACER
    registry: MetricsRegistry | None = None
    timer: PhaseTimer | None = None


_stack: list[ObsContext] = [ObsContext()]


def current() -> ObsContext:
    """The innermost active context."""
    return _stack[-1]


@contextmanager
def observe(
    tracer: Tracer | None = None,
    registry: MetricsRegistry | None = None,
    timer: PhaseTimer | None = None,
):
    """Push a context for the ``with`` body; unset fields inherit."""
    base = current()
    context = ObsContext(
        tracer=tracer if tracer is not None else base.tracer,
        registry=registry if registry is not None else base.registry,
        timer=timer if timer is not None else base.timer,
    )
    _stack.append(context)
    try:
        yield context
    finally:
        _stack.pop()
