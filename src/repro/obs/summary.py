"""Trace aggregation: turn a JSONL trace back into per-category rates.

This is the read side of :class:`~repro.obs.tracer.JsonlTracer` and the
engine behind ``repro-manet trace-summary``: it folds the ``msg_tx``
event stream into per-category message/bit totals (per simulation run
and overall) and — when ``run_begin`` / ``run_end`` events are present —
derives the paper's per-node frequencies and checks that the streamed
events *exactly* reproduce the totals the run's
:class:`~repro.sim.stats.MessageStats` reported.  A trace that fails
reconciliation means events were lost or double-counted somewhere,
which is precisely the regression this closed loop exists to catch.
"""

from __future__ import annotations

import json
import logging
from dataclasses import dataclass, field
from pathlib import Path

from .tracer import TRACE_SCHEMA_VERSION

__all__ = ["RunSummary", "TraceSummary", "read_trace", "summarize_trace"]

logger = logging.getLogger(__name__)


@dataclass
class RunSummary:
    """Per-simulation aggregation of one trace."""

    sim: int
    messages: dict[str, int] = field(default_factory=dict)
    bits: dict[str, float] = field(default_factory=dict)
    n_nodes: int | None = None
    measured_time: float | None = None
    reported_totals: dict | None = None
    #: Per-event-type record counts for this run — the counts the
    #: cluster-dynamics report section reconciles its window sums
    #: against.
    events: dict[str, int] = field(default_factory=dict)

    def frequencies(self) -> dict[str, float] | None:
        """Per-node message frequencies, when run metadata is present."""
        if not self.n_nodes or not self.measured_time:
            return None
        scale = self.n_nodes * self.measured_time
        return {
            category: count / scale
            for category, count in sorted(self.messages.items())
        }

    def mismatches(self) -> list[str]:
        """Discrepancies between streamed events and reported totals."""
        if self.reported_totals is None:
            return []
        problems = []
        categories = set(self.reported_totals) | set(self.messages)
        for category in sorted(categories):
            reported = self.reported_totals.get(category, {})
            expected_messages = int(reported.get("messages", 0))
            expected_bits = float(reported.get("bits", 0.0))
            seen_messages = self.messages.get(category, 0)
            seen_bits = self.bits.get(category, 0.0)
            if seen_messages != expected_messages:
                problems.append(
                    f"sim {self.sim} {category}: traced {seen_messages} "
                    f"messages, run_end reported {expected_messages}"
                )
            if abs(seen_bits - expected_bits) > 1e-6 * max(1.0, expected_bits):
                problems.append(
                    f"sim {self.sim} {category}: traced {seen_bits:.6g} "
                    f"bits, run_end reported {expected_bits:.6g}"
                )
        return problems


@dataclass
class TraceSummary:
    """Aggregation of a whole trace file (possibly many runs)."""

    path: str
    records: int = 0
    event_counts: dict[str, int] = field(default_factory=dict)
    runs: dict[int, RunSummary] = field(default_factory=dict)
    first_time: float | None = None
    last_time: float | None = None

    # ------------------------------------------------------------------
    @property
    def messages(self) -> dict[str, int]:
        """Per-category message totals across every run."""
        totals: dict[str, int] = {}
        for run in self.runs.values():
            for category, count in run.messages.items():
                totals[category] = totals.get(category, 0) + count
        return totals

    @property
    def bits(self) -> dict[str, float]:
        """Per-category bit totals across every run."""
        totals: dict[str, float] = {}
        for run in self.runs.values():
            for category, count in run.bits.items():
                totals[category] = totals.get(category, 0.0) + count
        return totals

    @property
    def spans(self) -> dict[str, int]:
        """Span-layer totals: started / ended / links across the trace."""
        counts = self.event_counts
        return {
            "started": counts.get("span_start", 0),
            "ended": counts.get("span_end", 0),
            "links": counts.get("span_link", 0),
        }

    def mismatches(self) -> list[str]:
        """All reconciliation problems across runs (empty when clean)."""
        problems: list[str] = []
        for sim in sorted(self.runs):
            problems.extend(self.runs[sim].mismatches())
        return problems

    def reconciles(self) -> bool:
        """Whether every run's events reproduce its reported totals."""
        return not self.mismatches()

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable view."""
        return {
            "path": self.path,
            "records": self.records,
            "events": dict(sorted(self.event_counts.items())),
            "time_span": [self.first_time, self.last_time],
            "spans": self.spans,
            "messages": dict(sorted(self.messages.items())),
            "bits": dict(sorted(self.bits.items())),
            "runs": [
                {
                    "sim": run.sim,
                    "n_nodes": run.n_nodes,
                    "measured_time": run.measured_time,
                    "messages": dict(sorted(run.messages.items())),
                    "bits": dict(sorted(run.bits.items())),
                    "frequencies": run.frequencies(),
                    "events": dict(sorted(run.events.items())),
                }
                for _, run in sorted(self.runs.items())
            ],
            "reconciles": self.reconciles(),
            "mismatches": self.mismatches(),
        }

    def render(self) -> str:
        """Human-readable multi-line summary."""
        lines = [f"trace: {self.path}  ({self.records} records)"]
        if self.first_time is not None:
            lines.append(
                f"  time span: {self.first_time:.4g} .. {self.last_time:.4g}"
            )
        for event, count in sorted(self.event_counts.items()):
            lines.append(f"  {event:24s} {count:10d} events")
        spans = self.spans
        if any(spans.values()):
            lines.append(
                "spans: {started} started, {ended} ended, "
                "{links} causal links".format(**spans)
            )
        lines.append("per-category message totals:")
        bits = self.bits
        for category, count in sorted(self.messages.items()):
            lines.append(
                f"  {category:16s} {count:10d} msgs {bits[category]:14.4g} bits"
            )
        for sim, run in sorted(self.runs.items()):
            frequencies = run.frequencies()
            if frequencies is None:
                continue
            lines.append(
                f"sim {sim} (N={run.n_nodes}, T={run.measured_time:.4g}):"
            )
            for category, rate in frequencies.items():
                lines.append(f"  {category:16s} {rate:10.4g} msgs/node/t")
        problems = self.mismatches()
        if problems:
            lines.append("RECONCILIATION FAILED:")
            lines.extend(f"  {p}" for p in problems)
        elif any(
            run.reported_totals is not None for run in self.runs.values()
        ):
            lines.append(
                "reconciliation: traced msg_tx events match reported totals"
            )
        return "\n".join(lines)


def read_trace(path):
    """Yield every record of a JSONL trace, checking the schema version.

    A malformed *final* line in a trace with no trailing newline — the
    signature of a writer killed mid-record — is skipped with a warning
    rather than failing the whole read; a malformed line anywhere else
    (or one the writer did terminate) still raises, because a trace
    that is corrupt in the middle cannot be trusted at all.
    """
    text = Path(path).read_text(encoding="utf-8")
    lines = text.splitlines()
    last_content = -1
    if text and not text.endswith("\n"):
        last_content = max(
            (i for i, line in enumerate(lines) if line.strip()), default=-1
        )
    for line_number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            if line_number - 1 == last_content:
                logger.warning(
                    "%s:%d: skipping truncated final record "
                    "(trace writer was interrupted mid-line)",
                    path,
                    line_number,
                )
                return
            raise ValueError(
                f"{path}:{line_number}: not valid JSON: {error}"
            ) from None
        version = record.get("schema")
        if version != TRACE_SCHEMA_VERSION:
            raise ValueError(
                f"{path}:{line_number}: unsupported trace schema "
                f"version {version!r} (supported: {TRACE_SCHEMA_VERSION})"
            )
        yield record


def summarize_trace(path) -> TraceSummary:
    """Aggregate a trace file into a :class:`TraceSummary`.

    Raises ``ValueError`` when the trace contains no records at all —
    an empty file is always a broken pipeline, never a healthy run.
    """
    summary = TraceSummary(path=str(path))
    for record in read_trace(path):
        summary.records += 1
        event = record.get("event", "?")
        summary.event_counts[event] = summary.event_counts.get(event, 0) + 1
        if event == "resource_sample" or event.startswith("cache_"):
            # Wall-clock envelope and no owning run; counted above only.
            continue
        time = record.get("t")
        if time is not None:
            if summary.first_time is None:
                summary.first_time = time
            summary.last_time = time
        sim = int(record.get("sim", 0))
        run = summary.runs.get(sim)
        if run is None:
            run = summary.runs[sim] = RunSummary(sim=sim)
        run.events[event] = run.events.get(event, 0) + 1
        if event == "msg_tx":
            category = record["category"]
            run.messages[category] = run.messages.get(category, 0) + int(
                record.get("messages", 1)
            )
            run.bits[category] = run.bits.get(category, 0.0) + float(
                record.get("bits", 0.0)
            )
        elif event == "run_begin":
            run.n_nodes = int(record["n_nodes"])
        elif event == "run_end":
            run.measured_time = float(record["measured_time"])
            run.reported_totals = record.get("totals")
    if summary.records == 0:
        raise ValueError(f"{path}: empty trace (no records)")
    return summary
