"""Cross-run trace diffing: ``repro-manet compare <a> <b>``.

Two traced runs of the same scenario rarely fail identically — a perf
regression, a seed change, or a model edit shows up as *shifted rates*.
This module digests each trace into a compact set of comparable
metrics and diffs them:

* **overhead rates** — per-category per-node message frequencies
  (``msg_tx`` folded through :func:`~repro.obs.summary.summarize_trace`,
  averaged across the trace's runs);
* **cluster dynamics** — head-change / reaffiliation / gateway-churn
  rates and structural means from the ``cluster_window`` series, which
  is what lets an overhead delta be *attributed*: the paper's model
  says CLUSTER and ROUTE overhead follow maintenance-event rates, so a
  run whose cluster overhead moved together with its head-change rate
  has a mechanistic explanation, not just a diff — and when both traces
  carry overhead-attribution ledgers the delta is further decomposed
  into exact per-cause contributions (head-merge cascades,
  reaffiliations, ...);
* **residual verdicts** — the per-category ``kind="final"`` outcomes of
  the analytic-residual monitor (a verdict *flip* between runs always
  fails the gate, whatever the threshold);
* **phase timings** — per-phase wall-clock totals from the
  ``resource_sample`` stream (informational);
* **span totals** — spans started / causal links (informational).

The gate: any *gating* metric (overhead rates and dynamics rates) whose
relative delta exceeds the threshold, or any residual verdict change,
makes the comparison "exceeding" — the CLI maps that to exit code 1, so
``compare`` slots into CI next to the bench-history check.  A trace
compared against itself always yields zero deltas and exit 0.

:func:`diff_phases` is the shared attribution helper: ``repro-manet
bench --history`` uses it to annotate steps/sec regressions with the
engine phases whose per-step cost moved most.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .summary import read_trace, summarize_trace

__all__ = [
    "DEFAULT_COMPARE_THRESHOLD",
    "TraceComparison",
    "TraceDigest",
    "compare_traces",
    "diff_phases",
]

#: Relative delta above which a gating metric fails the comparison.
DEFAULT_COMPARE_THRESHOLD = 0.10

#: Overhead categories whose deltas the attribution step tries to
#: explain with cluster-dynamics deltas.  HELLO is excluded: in both
#: hello modes its rate follows link churn / the beacon period, not
#: cluster-maintenance events.
_ATTRIBUTABLE = ("cluster", "route")

#: Dynamics metrics that can carry an attribution (rate-like, causally
#: upstream of CLUSTER/ROUTE traffic in the paper's model).
_DYNAMICS_CAUSES = (
    ("head_change_rate", "head-change rate"),
    ("reaffiliation_rate", "reaffiliation rate"),
)


def _finite(value) -> float | None:
    if value is None:
        return None
    value = float(value)
    return value if math.isfinite(value) else None


@dataclass
class TraceDigest:
    """Comparable metrics extracted from one trace file."""

    path: str
    runs: int = 0
    #: ``category -> `` mean per-node msg frequency across runs.
    rates: dict[str, float] = field(default_factory=dict)
    #: Cluster-dynamics aggregates (rates are per node per sim-time).
    dynamics: dict[str, float] = field(default_factory=dict)
    #: ``(category, cause) -> `` mean per-node msg frequency across
    #: runs, from the overhead-attribution ledger (empty for traces
    #: recorded before the ``attribution`` event existed).
    causes: dict[tuple[str, str], float] = field(default_factory=dict)
    #: Adaptive-beaconing aggregates from the ``control_window`` series
    #: (beacon-weighted mean interval, mean staleness, beacons per node
    #: per sim-time); empty for non-adaptive runs.
    control: dict[str, float] = field(default_factory=dict)
    #: ``category -> `` every residual final verdict was OK.
    residuals: dict[str, bool] = field(default_factory=dict)
    #: Per-phase wall-clock seconds from ``resource_sample`` deltas.
    phases: dict[str, float] = field(default_factory=dict)
    #: Span totals (started / ended / links).
    spans: dict[str, int] = field(default_factory=dict)
    #: Fault-injection digest: ``inject:<kind>`` / ``clear:<kind>``
    #: event counts plus the announced ``loss_rate``; empty for
    #: unfaulted traces, so classic comparisons gain no rows.
    faults: dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_trace(cls, path) -> "TraceDigest":
        """Digest the trace at ``path`` (raises like ``summarize_trace``)."""
        summary = summarize_trace(path)
        digest = cls(path=str(path), runs=len(summary.runs))
        digest.spans = summary.spans

        rate_sums: dict[str, list[float]] = {}
        for run in summary.runs.values():
            frequencies = run.frequencies()
            if not frequencies:
                continue
            for category, rate in frequencies.items():
                rate_sums.setdefault(category, []).append(rate)
        digest.rates = {
            category: sum(values) / len(values)
            for category, values in sorted(rate_sums.items())
        }

        windows: dict[int, list[dict]] = {}
        control_windows: dict[int, list[dict]] = {}
        ledgers: dict[int, dict] = {}
        for record in read_trace(path):
            event = record.get("event")
            if event == "cluster_window":
                windows.setdefault(int(record.get("sim", 0)), []).append(
                    record
                )
            elif event == "control_window":
                control_windows.setdefault(
                    int(record.get("sim", 0)), []
                ).append(record)
            elif event == "attribution":
                ledgers[int(record.get("sim", 0))] = record
            elif event == "residual" and record.get("kind") == "final":
                category = str(record.get("category", "?"))
                digest.residuals[category] = digest.residuals.get(
                    category, True
                ) and bool(record.get("ok", True))
            elif event == "resource_sample":
                for phase, seconds in (record.get("phases") or {}).items():
                    digest.phases[phase] = (
                        digest.phases.get(phase, 0.0) + float(seconds)
                    )
            elif event in ("fault_inject", "fault_clear"):
                kind = str(record.get("kind", "?"))
                if kind == "loss":
                    digest.faults["loss_rate"] = float(
                        record.get("rate", 0.0)
                    )
                else:
                    verb = "inject" if event == "fault_inject" else "clear"
                    key = f"{verb}:{kind}"
                    digest.faults[key] = digest.faults.get(key, 0.0) + 1.0
        digest.dynamics = _dynamics_aggregates(windows, summary)
        digest.control = _control_aggregates(control_windows, summary)
        digest.causes = _cause_rates(ledgers, summary)
        return digest


def _dynamics_aggregates(windows: dict[int, list[dict]], summary) -> dict:
    """Per-node-per-time dynamics rates, averaged across runs."""
    per_sim: dict[str, list[float]] = {}
    all_clusters: list[float] = []
    for sim, records in sorted(windows.items()):
        run = summary.runs.get(sim)
        n_nodes = run.n_nodes if run is not None and run.n_nodes else None
        observed = float(records[-1]["t"]) - float(
            records[0].get("window_start", records[0]["t"])
        )
        all_clusters.extend(float(w.get("clusters", 0)) for w in records)
        if n_nodes is None or observed <= 0.0:
            continue
        scale = n_nodes * observed
        per_sim.setdefault("head_change_rate", []).append(
            sum(int(w.get("head_changes", 0)) for w in records) / scale
        )
        per_sim.setdefault("reaffiliation_rate", []).append(
            sum(int(w.get("reaffiliations", 0)) for w in records) / scale
        )
        per_sim.setdefault("gateway_churn_rate", []).append(
            sum(
                int(w.get("gateway_adds", 0)) + int(w.get("gateway_drops", 0))
                for w in records
            )
            / scale
        )
        tenure = _finite(records[-1].get("mean_head_tenure"))
        if tenure is not None:
            per_sim.setdefault("mean_head_tenure", []).append(tenure)
        diameter = _finite(records[-1].get("mean_diameter"))
        if diameter is not None:
            per_sim.setdefault("mean_diameter", []).append(diameter)
    aggregates = {
        name: sum(values) / len(values)
        for name, values in sorted(per_sim.items())
        if values
    }
    if all_clusters:
        aggregates["mean_clusters"] = sum(all_clusters) / len(all_clusters)
    return aggregates


def _control_aggregates(windows: dict[int, list[dict]], summary) -> dict:
    """Adaptive-beaconing aggregates, averaged across runs."""
    per_sim: dict[str, list[float]] = {}
    for sim, records in sorted(windows.items()):
        beacons = sum(int(w.get("beacons", 0)) for w in records)
        interval_sum = sum(
            float(w.get("mean_interval", 0.0)) * int(w.get("beacons", 0))
            for w in records
        )
        staleness = [float(w.get("staleness", 0.0)) for w in records]
        if beacons:
            per_sim.setdefault("mean_interval", []).append(
                interval_sum / beacons
            )
        if staleness:
            per_sim.setdefault("mean_staleness", []).append(
                sum(staleness) / len(staleness)
            )
        run = summary.runs.get(sim)
        observed = float(records[-1]["t"]) - float(
            records[0].get("window_start", records[0]["t"])
        )
        if run is not None and run.n_nodes and observed > 0.0:
            per_sim.setdefault("beacon_rate", []).append(
                beacons / (run.n_nodes * observed)
            )
    return {
        name: sum(values) / len(values)
        for name, values in sorted(per_sim.items())
        if values
    }


def _cause_rates(ledgers: dict[int, dict], summary) -> dict:
    """Per-(category, cause) per-node-per-time rates across runs.

    A cause absent from one run counts as rate zero there, so the
    averages stay comparable between digests with different cause sets.
    """
    per_run: list[dict[tuple[str, str], float]] = []
    for sim, record in sorted(ledgers.items()):
        run = summary.runs.get(sim)
        if run is None or not run.n_nodes or not run.measured_time:
            continue
        scale = run.n_nodes * run.measured_time
        per_run.append(
            {
                (category, cause): tally["messages"] / scale
                for category, breakdown in record.get("causes", {}).items()
                for cause, tally in breakdown.items()
            }
        )
    if not per_run:
        return {}
    keys = sorted(set().union(*per_run))
    return {
        key: sum(rates.get(key, 0.0) for rates in per_run) / len(per_run)
        for key in keys
    }


@dataclass
class ComparisonRow:
    """One diffed metric."""

    metric: str
    a: float | None
    b: float | None
    gating: bool

    @property
    def delta(self) -> float | None:
        if self.a is None or self.b is None:
            return None
        return self.b - self.a

    @property
    def rel(self) -> float | None:
        """Relative delta vs ``a`` (``None`` when undefined; a change
        from exactly zero is reported as ``inf``)."""
        if self.a is None or self.b is None:
            return None
        if self.a == 0.0:
            return 0.0 if self.b == 0.0 else math.inf
        return (self.b - self.a) / abs(self.a)


@dataclass
class TraceComparison:
    """The full diff of two trace digests."""

    a: TraceDigest
    b: TraceDigest
    threshold: float
    rows: list[ComparisonRow] = field(default_factory=list)
    verdict_changes: list[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    def exceeding(self) -> list[ComparisonRow]:
        """Gating rows whose relative delta exceeds the threshold."""
        found = []
        for row in self.rows:
            if not row.gating:
                continue
            rel = row.rel
            if rel is not None and abs(rel) > self.threshold:
                found.append(row)
        return found

    @property
    def within_threshold(self) -> bool:
        """The CLI's exit-0 condition."""
        return not self.exceeding() and not self.verdict_changes

    def attributions(self) -> list[str]:
        """Overhead deltas explained down to their causes.

        Two levels.  For each attributable overhead category whose rate
        moved beyond the threshold, name the cluster-dynamics rates
        that moved with it (the paper's causal account of CLUSTER/ROUTE
        overhead).  Then, when both traces carry overhead-attribution
        ledgers, decompose *every* category's delta into exact
        per-cause contributions — e.g. a +12% cluster rate arriving as
        "head-merge-cascade +9.0%, reaffiliation +3.0%" — expressed as
        shares of A's category rate so they sum to the row's relative
        delta.
        """
        by_metric = {row.metric: row for row in self.rows}
        lines = []
        for category in _ATTRIBUTABLE:
            row = by_metric.get(f"rate:{category}")
            if row is None or row.rel is None:
                continue
            if abs(row.rel) <= self.threshold:
                continue
            causes = []
            for key, label in _DYNAMICS_CAUSES:
                cause = by_metric.get(f"dynamics:{key}")
                if cause is None or cause.rel is None:
                    continue
                if abs(cause.rel) > self.threshold and (
                    (cause.rel > 0) == (row.rel > 0)
                ):
                    causes.append(f"{label} {_fmt_rel(cause.rel)}")
            if causes:
                lines.append(
                    f"{category} rate {_fmt_rel(row.rel)} attributed to: "
                    + ", ".join(causes)
                )
            else:
                lines.append(
                    f"{category} rate {_fmt_rel(row.rel)}: no "
                    "cluster-dynamics delta moved with it (unattributed)"
                )
        lines.extend(self._cause_attributions(by_metric))
        return lines

    def _cause_attributions(self, by_metric: dict) -> list[str]:
        """Per-cause decomposition of every exceeding category delta."""
        keys = set(self.a.causes) | set(self.b.causes)
        lines = []
        for category in sorted({category for category, _cause in keys}):
            row = by_metric.get(f"rate:{category}")
            if row is None or row.rel is None or not row.a:
                continue
            if abs(row.rel) <= self.threshold:
                continue
            contributions = []
            for cause in sorted(
                {c for cat, c in keys if cat == category}
            ):
                key = (category, cause)
                delta = self.b.causes.get(key, 0.0) - self.a.causes.get(
                    key, 0.0
                )
                share = delta / abs(row.a)
                if abs(share) >= 0.005:  # hide sub-half-percent noise
                    contributions.append(
                        (abs(share), f"{cause} {_fmt_rel(share)}")
                    )
            if contributions:
                contributions.sort(reverse=True)
                lines.append(
                    f"{category} rate {_fmt_rel(row.rel)} by cause: "
                    + ", ".join(text for _size, text in contributions)
                )
        return lines

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable view."""
        return {
            "a": self.a.path,
            "b": self.b.path,
            "threshold": self.threshold,
            "rows": [
                {
                    "metric": row.metric,
                    "a": row.a,
                    "b": row.b,
                    "delta": row.delta,
                    "rel": None
                    if row.rel is None or not math.isfinite(row.rel)
                    else row.rel,
                    "gating": row.gating,
                }
                for row in self.rows
            ],
            "verdict_changes": list(self.verdict_changes),
            "attributions": self.attributions(),
            "within_threshold": self.within_threshold,
        }

    def render(self) -> str:
        """Human-readable comparison."""
        lines = [
            f"comparing  A: {self.a.path}",
            f"           B: {self.b.path}",
            f"  {'metric':32s} {'A':>12s} {'B':>12s} "
            f"{'delta':>12s} {'rel':>8s}",
        ]
        for row in self.rows:
            marker = ""
            rel = row.rel
            if (
                row.gating
                and rel is not None
                and abs(rel) > self.threshold
            ):
                marker = "  <-- exceeds threshold"
            lines.append(
                f"  {row.metric:32s} {_fmt(row.a):>12s} {_fmt(row.b):>12s} "
                f"{_fmt(row.delta):>12s} {_fmt_rel(rel):>8s}{marker}"
            )
        for change in self.verdict_changes:
            lines.append(f"  residual verdict changed: {change}")
        attributions = self.attributions()
        if attributions:
            lines.append("attribution:")
            lines.extend(f"  {line}" for line in attributions)
        if self.within_threshold:
            lines.append(
                f"verdict: WITHIN THRESHOLD ({self.threshold:.0%})"
            )
        else:
            lines.append(
                f"verdict: EXCEEDS THRESHOLD ({self.threshold:.0%})"
            )
        return "\n".join(lines)


def _fmt(value: float | None) -> str:
    if value is None:
        return "-"
    return format(value, ".4g")


def _fmt_rel(rel: float | None) -> str:
    if rel is None:
        return "-"
    if math.isinf(rel):
        return "+inf" if rel > 0 else "-inf"
    return f"{rel:+.1%}"


def compare_traces(
    path_a,
    path_b,
    threshold: float = DEFAULT_COMPARE_THRESHOLD,
) -> TraceComparison:
    """Digest and diff two traces (raises like ``summarize_trace``)."""
    if threshold <= 0.0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    a = TraceDigest.from_trace(path_a)
    b = TraceDigest.from_trace(path_b)
    comparison = TraceComparison(a=a, b=b, threshold=threshold)
    rows = comparison.rows
    for category in sorted(set(a.rates) | set(b.rates)):
        rows.append(
            ComparisonRow(
                metric=f"rate:{category}",
                a=a.rates.get(category),
                b=b.rates.get(category),
                gating=True,
            )
        )
    gating_dynamics = {
        "head_change_rate",
        "reaffiliation_rate",
        "gateway_churn_rate",
    }
    for name in sorted(set(a.dynamics) | set(b.dynamics)):
        rows.append(
            ComparisonRow(
                metric=f"dynamics:{name}",
                a=a.dynamics.get(name),
                b=b.dynamics.get(name),
                gating=name in gating_dynamics,
            )
        )
    for name in sorted(set(a.control) | set(b.control)):
        rows.append(
            ComparisonRow(
                metric=f"control:{name}",
                a=a.control.get(name),
                b=b.control.get(name),
                gating=False,
            )
        )
    for phase in sorted(set(a.phases) | set(b.phases)):
        rows.append(
            ComparisonRow(
                metric=f"phase:{phase}",
                a=a.phases.get(phase),
                b=b.phases.get(phase),
                gating=False,
            )
        )
    for name in ("started", "links"):
        rows.append(
            ComparisonRow(
                metric=f"spans:{name}",
                a=float(a.spans.get(name, 0)),
                b=float(b.spans.get(name, 0)),
                gating=False,
            )
        )
    # Fault digests are informational: a fault plan is part of the
    # run's configuration, so differing schedules are expected when
    # comparing faulted vs unfaulted twins — the gate should fire on
    # the *consequences* (rates, dynamics), not the plan itself.
    for name in sorted(set(a.faults) | set(b.faults)):
        rows.append(
            ComparisonRow(
                metric=f"fault:{name}",
                a=a.faults.get(name),
                b=b.faults.get(name),
                gating=False,
            )
        )
    for category in sorted(set(a.residuals) | set(b.residuals)):
        verdict_a = a.residuals.get(category)
        verdict_b = b.residuals.get(category)
        if verdict_a is not None and verdict_b is not None and (
            verdict_a != verdict_b
        ):
            comparison.verdict_changes.append(
                f"{category}: {'OK' if verdict_a else 'BELOW BOUND'} -> "
                f"{'OK' if verdict_b else 'BELOW BOUND'}"
            )
    return comparison


# ----------------------------------------------------------------------
# Phase-delta attribution (shared with bench --history)
# ----------------------------------------------------------------------
def diff_phases(
    phases_a: dict[str, float],
    phases_b: dict[str, float],
    top: int = 4,
) -> list[str]:
    """Attribution lines for the phases whose cost moved most, B vs A.

    Inputs are per-phase costs in comparable units (e.g. seconds per
    step); output lines read ``adjacency: 0.8 -> 1.9 (+138%)``, sorted
    by absolute delta, largest first.  Used by the bench-history gate
    so a steps/sec regression arrives with its likely cause attached.
    """
    deltas = []
    for phase in sorted(set(phases_a) | set(phases_b)):
        before = float(phases_a.get(phase, 0.0))
        after = float(phases_b.get(phase, 0.0))
        if before == 0.0 and after == 0.0:
            continue
        rel = (after - before) / before if before > 0.0 else math.inf
        deltas.append((abs(after - before), phase, before, after, rel))
    deltas.sort(reverse=True)
    return [
        f"{phase}: {before:.4g} -> {after:.4g} ({_fmt_rel(rel)})"
        for _size, phase, before, after, rel in deltas[:top]
    ]
