"""Observability subsystem: metrics, tracing, timing and logging.

The simulation stack is instrumented through three orthogonal,
individually optional channels:

* **metrics** (:mod:`repro.obs.metrics`) — labelled counters, gauges
  and histograms in a :class:`MetricsRegistry`; backs
  :class:`~repro.sim.stats.MessageStats` and the CLI's
  ``--metrics-json`` export;
* **tracing** (:mod:`repro.obs.tracer`) — schema-versioned structured
  events (steps, link churn, cluster role changes, message
  transmissions) written as JSON Lines; the no-op
  :data:`NULL_TRACER` is the default, so untraced runs pay nothing;
* **timing** (:mod:`repro.obs.timing`) — per-phase wall-clock
  accumulation (mobility / adjacency / link diff / each protocol hook)
  reported by :meth:`~repro.sim.engine.Simulation.timing_report`.

Configuration flows either explicitly (constructor arguments) or via
the ambient context (:func:`observe`), which is how the CLI turns on
telemetry for whole experiments without touching their signatures.
:func:`summarize_trace` closes the loop, folding a trace back into the
per-category totals and rates that :class:`MessageStats` reported.

On top of the three channels sits the **run-health layer**
(:mod:`~repro.obs.audit`, :mod:`~repro.obs.residuals`,
:mod:`~repro.obs.resources`, :mod:`~repro.obs.report`): a streaming
P1/P2 invariant auditor, an online measured-vs-analytic-bound residual
monitor, a background RSS/CPU sampler, and a Markdown report renderer
over the resulting trace events — wired into simulations through
:func:`attach_run_health` and a :class:`RunHealthConfig` carried by the
ambient context (the CLI's ``--audit`` flag).

The **span layer** (:mod:`~repro.obs.spans`) adds causal structure to
the trace: a hierarchy of run → phase → step → handler spans with
``span_link`` edges from cluster-maintenance repairs to the message
bursts they trigger.  :mod:`~repro.obs.timeline` exports the result as
Chrome/Perfetto trace-event JSON, and :mod:`~repro.obs.compare` diffs
two traces — overhead rates, cluster-dynamics rates, residual verdicts
— behind the ``repro-manet compare`` gate.

The **attribution layer** (:mod:`~repro.obs.attribution`) tags every
control message with a root cause at its send site and accumulates
per-cause / per-node / per-cluster ledgers plus a spatial heatmap that
reconcile with :class:`~repro.sim.stats.MessageStats` by construction;
:mod:`~repro.obs.openmetrics` exports the metrics registry — including
the attribution counters — in OpenMetrics text format
(``repro-manet metrics`` and ``--metrics-openmetrics``).
"""

from .attribution import (
    KNOWN_CAUSES,
    OverheadLedger,
    attach_attribution,
    attributed,
)
from .audit import AuditError, InvariantAuditor
from .compare import TraceComparison, TraceDigest, compare_traces
from .context import ObsContext, RunHealthConfig, current, observe
from .health import attach_run_health
from .log import PROGRESS_LOGGER, configure_logging, progress
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .openmetrics import (
    registry_from_trace,
    render_openmetrics,
    write_openmetrics,
)
from .report import HealthReport, TraceHealth, build_report
from .residuals import MONITORED_CATEGORIES, ResidualMonitor
from .resources import ResourceSampler, current_rss_kb
from .spans import SpanTracker, next_span_id
from .summary import RunSummary, TraceSummary, read_trace, summarize_trace
from .timeline import build_timeline, write_timeline
from .timing import PhaseTimer, PhaseTiming, TimingReport
from .tracer import (
    NULL_TRACER,
    TRACE_EVENTS,
    TRACE_SCHEMA_VERSION,
    CollectingTracer,
    JsonlTracer,
    NullTracer,
    Tracer,
)

__all__ = [
    "ObsContext",
    "RunHealthConfig",
    "current",
    "observe",
    "AuditError",
    "InvariantAuditor",
    "KNOWN_CAUSES",
    "OverheadLedger",
    "attach_attribution",
    "attributed",
    "registry_from_trace",
    "render_openmetrics",
    "write_openmetrics",
    "MONITORED_CATEGORIES",
    "ResidualMonitor",
    "ResourceSampler",
    "current_rss_kb",
    "attach_run_health",
    "HealthReport",
    "TraceHealth",
    "build_report",
    "PROGRESS_LOGGER",
    "configure_logging",
    "progress",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunSummary",
    "TraceSummary",
    "read_trace",
    "summarize_trace",
    "SpanTracker",
    "next_span_id",
    "TraceComparison",
    "TraceDigest",
    "compare_traces",
    "build_timeline",
    "write_timeline",
    "PhaseTimer",
    "PhaseTiming",
    "TimingReport",
    "NULL_TRACER",
    "TRACE_EVENTS",
    "TRACE_SCHEMA_VERSION",
    "CollectingTracer",
    "JsonlTracer",
    "NullTracer",
    "Tracer",
]
