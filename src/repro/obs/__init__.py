"""Observability subsystem: metrics, tracing, timing and logging.

The simulation stack is instrumented through three orthogonal,
individually optional channels:

* **metrics** (:mod:`repro.obs.metrics`) — labelled counters, gauges
  and histograms in a :class:`MetricsRegistry`; backs
  :class:`~repro.sim.stats.MessageStats` and the CLI's
  ``--metrics-json`` export;
* **tracing** (:mod:`repro.obs.tracer`) — schema-versioned structured
  events (steps, link churn, cluster role changes, message
  transmissions) written as JSON Lines; the no-op
  :data:`NULL_TRACER` is the default, so untraced runs pay nothing;
* **timing** (:mod:`repro.obs.timing`) — per-phase wall-clock
  accumulation (mobility / adjacency / link diff / each protocol hook)
  reported by :meth:`~repro.sim.engine.Simulation.timing_report`.

Configuration flows either explicitly (constructor arguments) or via
the ambient context (:func:`observe`), which is how the CLI turns on
telemetry for whole experiments without touching their signatures.
:func:`summarize_trace` closes the loop, folding a trace back into the
per-category totals and rates that :class:`MessageStats` reported.
"""

from .context import ObsContext, current, observe
from .log import PROGRESS_LOGGER, configure_logging, progress
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .summary import RunSummary, TraceSummary, read_trace, summarize_trace
from .timing import PhaseTimer, PhaseTiming, TimingReport
from .tracer import (
    NULL_TRACER,
    TRACE_EVENTS,
    TRACE_SCHEMA_VERSION,
    CollectingTracer,
    JsonlTracer,
    NullTracer,
    Tracer,
)

__all__ = [
    "ObsContext",
    "current",
    "observe",
    "PROGRESS_LOGGER",
    "configure_logging",
    "progress",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunSummary",
    "TraceSummary",
    "read_trace",
    "summarize_trace",
    "PhaseTimer",
    "PhaseTiming",
    "TimingReport",
    "NULL_TRACER",
    "TRACE_EVENTS",
    "TRACE_SCHEMA_VERSION",
    "CollectingTracer",
    "JsonlTracer",
    "NullTracer",
    "Tracer",
]
