"""Markdown run-health reports from JSONL traces.

``repro-manet report`` renders one or more trace files into a single
Markdown document with four diagnostic sections per trace:

* **reconciliation** — the per-category message/bit totals, aggregated
  from the ``msg_tx`` stream exactly as ``trace-summary`` computes them
  (both commands share :func:`~repro.obs.summary.summarize_trace`, so
  the numbers reconcile by construction), and the verdict of the
  events-vs-``run_end`` closed loop;
* **overhead attribution** — the run-end ``attribution`` ledger: a
  per-cause breakdown of every message category (whose totals equal the
  reconciliation section's, by construction), top-K hotspot nodes and
  clusters, and an ASCII spatial heatmap of where overhead was spent;
* **cluster dynamics** — per-run totals of the ``cluster_window`` time
  series (head changes, reaffiliations, gateway churn, mean cluster
  count/tenure/diameter), reconciled against the trace's own
  ``head_change`` / ``cluster_reaffiliation`` / ``gateway_change``
  event counts — the same counts ``trace-summary`` prints — so the
  two commands agree by construction;
* **invariant timeline** — audits, violations and violation spans from
  the ``invariant_audit`` stream;
* **analytic residuals** — per-category window statistics (quantiles
  via :meth:`~repro.obs.metrics.Histogram.summary`) and the final
  measured-vs-bound verdicts from the ``residual`` stream;
* **resources** — RSS/CPU aggregates and per-phase wall-clock totals
  from the ``resource_sample`` stream;
* **result store** — cache hit/miss/write counts and the task hit rate
  from the ``cache_hit`` / ``cache_miss`` / ``cache_write`` stream of
  a ``--store`` run (see :mod:`repro.store`).

:meth:`HealthReport.healthy` folds it all into one boolean — the exit
code of the CLI command — and :meth:`HealthReport.problems` lists what
went wrong in one line each.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .metrics import Histogram
from .summary import TraceSummary, read_trace, summarize_trace

__all__ = ["TraceHealth", "HealthReport", "build_report"]


def _fmt(value, precision: str = ".4g") -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, precision)
    return str(value)


def _table(headers: list[str], rows: list[list]) -> list[str]:
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(_fmt(cell) for cell in row) + " |")
    return lines


@dataclass
class _AuditTimeline:
    """Aggregated ``invariant_audit`` stream of one simulation."""

    audits: int = 0
    violations: int = 0
    spans: list[tuple[float, float]] = field(default_factory=list)
    _open_since: float | None = None
    last_time: float | None = None

    def feed(self, record: dict) -> None:
        self.audits += 1
        time = float(record["t"])
        if record.get("ok", True):
            if self._open_since is not None:
                self.spans.append((self._open_since, time))
                self._open_since = None
        else:
            self.violations += 1
            if self._open_since is None:
                self._open_since = time
        self.last_time = time

    def close(self) -> None:
        if self._open_since is not None and self.last_time is not None:
            self.spans.append((self._open_since, self.last_time))
            self._open_since = None


@dataclass
class TraceHealth:
    """Everything the report knows about one trace file."""

    summary: TraceSummary
    audits: dict[int, _AuditTimeline] = field(default_factory=dict)
    #: ``(sim, category) -> list`` of ``kind="window"`` residual records.
    residual_windows: dict[tuple[int, str], list[dict]] = field(
        default_factory=dict
    )
    #: ``(sim, category) -> `` the ``kind="final"`` verdict record.
    residual_finals: dict[tuple[int, str], dict] = field(default_factory=dict)
    resources: list[dict] = field(default_factory=list)
    #: ``cache_hit`` / ``cache_miss`` / ``cache_write`` event counts.
    cache: dict[str, int] = field(default_factory=dict)
    #: ``sim -> list`` of ``cluster_window`` records, in trace order.
    dynamics: dict[int, list[dict]] = field(default_factory=dict)
    #: ``sim -> list`` of ``control_window`` records (adaptive beacon).
    control: dict[int, list[dict]] = field(default_factory=dict)
    #: ``sim -> `` run-end ``attribution`` record (overhead ledger).
    attribution: dict[int, dict] = field(default_factory=dict)
    #: ``sim -> list`` of ``fault_inject`` / ``fault_clear`` records,
    #: in trace order (empty for unfaulted runs).
    faults: dict[int, list[dict]] = field(default_factory=dict)

    def cache_hit_rate(self) -> float | None:
        """Task cache-hit rate, or ``None`` without cache events."""
        hits = self.cache.get("cache_hit", 0)
        misses = self.cache.get("cache_miss", 0)
        if hits + misses == 0:
            return None
        return hits / (hits + misses)

    def dynamics_mismatches(self) -> list[str]:
        """Window sums that fail to reproduce the trace's event counts.

        The collector computes window deltas from counters incremented
        at the exact emission points of ``head_change`` /
        ``cluster_reaffiliation`` / ``gateway_change``, so any
        difference means records were lost — the cluster-dynamics
        analogue of the ``msg_tx`` reconciliation loop.
        """
        found: list[str] = []
        checks = (
            ("head_changes", "head_change"),
            ("reaffiliations", "cluster_reaffiliation"),
        )
        for sim, windows in sorted(self.dynamics.items()):
            run = self.summary.runs.get(sim)
            events = run.events if run is not None else {}
            for window_field, event in checks:
                summed = sum(int(w.get(window_field, 0)) for w in windows)
                counted = events.get(event, 0)
                if summed != counted:
                    found.append(
                        f"sim {sim}: cluster_window {window_field} sum to "
                        f"{summed}, trace has {counted} {event} events"
                    )
            churn = sum(
                int(w.get("gateway_adds", 0)) + int(w.get("gateway_drops", 0))
                for w in windows
            )
            counted = events.get("gateway_change", 0)
            if churn != counted:
                found.append(
                    f"sim {sim}: cluster_window gateway churn sums to "
                    f"{churn}, trace has {counted} gateway_change events"
                )
        return found

    def attribution_mismatches(self) -> list[str]:
        """Ledger totals that fail to reproduce the ``msg_tx`` stream.

        The ledger chains into the same ``MessageStats.on_record`` hook
        that feeds the trace's ``msg_tx`` events, so the two views must
        agree message-for-message; any difference means a send site
        bypassed the hook (or a trace lost records).
        """
        found: list[str] = []
        for sim, record in sorted(self.attribution.items()):
            if not record.get("reconciled", True):
                found.append(
                    f"sim {sim}: overhead attribution failed to reconcile "
                    f"with the run's message totals"
                )
            run = self.summary.runs.get(sim)
            traced = run.messages if run is not None else {}
            totals = record.get("totals", {})
            for category in sorted(set(totals) | set(traced)):
                ledger = int(totals.get(category, {}).get("messages", 0))
                streamed = int(traced.get(category, 0))
                if ledger != streamed:
                    found.append(
                        f"sim {sim} {category}: attribution ledger has "
                        f"{ledger} messages, traced msg_tx stream has "
                        f"{streamed}"
                    )
        return found

    # ------------------------------------------------------------------
    def problems(self) -> list[str]:
        """Everything unhealthy about this trace, one line each."""
        path = self.summary.path
        found = [f"{path}: {m}" for m in self.summary.mismatches()]
        found.extend(f"{path}: {m}" for m in self.dynamics_mismatches())
        found.extend(f"{path}: {m}" for m in self.attribution_mismatches())
        for sim, timeline in sorted(self.audits.items()):
            if timeline.violations:
                found.append(
                    f"{path}: sim {sim} failed {timeline.violations} of "
                    f"{timeline.audits} invariant audits"
                )
        for (sim, category), final in sorted(self.residual_finals.items()):
            if not final.get("ok", True):
                found.append(
                    f"{path}: sim {sim} {category} rate "
                    f"{final['measured']:.4g} below analytic bound "
                    f"{final['bound']:.4g}"
                )
        return found


def analyze_trace(path) -> TraceHealth:
    """Read one trace into a :class:`TraceHealth`."""
    health = TraceHealth(summary=summarize_trace(path))
    for record in read_trace(path):
        event = record.get("event")
        if event == "invariant_audit":
            sim = int(record.get("sim", 0))
            timeline = health.audits.get(sim)
            if timeline is None:
                timeline = health.audits[sim] = _AuditTimeline()
            timeline.feed(record)
        elif event == "residual":
            sim = int(record.get("sim", 0))
            key = (sim, record.get("category", "?"))
            if record.get("kind") == "final":
                health.residual_finals[key] = record
            else:
                health.residual_windows.setdefault(key, []).append(record)
        elif event == "cluster_window":
            sim = int(record.get("sim", 0))
            health.dynamics.setdefault(sim, []).append(record)
        elif event == "control_window":
            sim = int(record.get("sim", 0))
            health.control.setdefault(sim, []).append(record)
        elif event == "attribution":
            health.attribution[int(record.get("sim", 0))] = record
        elif event == "resource_sample":
            health.resources.append(record)
        elif event in ("fault_inject", "fault_clear"):
            sim = int(record.get("sim", 0))
            health.faults.setdefault(sim, []).append(record)
        elif event in ("cache_hit", "cache_miss", "cache_write"):
            health.cache[event] = health.cache.get(event, 0) + 1
    for timeline in health.audits.values():
        timeline.close()
    return health


@dataclass
class HealthReport:
    """A rendered-on-demand run-health report over one or more traces."""

    traces: list[TraceHealth]

    def problems(self) -> list[str]:
        """All problems across traces (empty when healthy)."""
        found: list[str] = []
        for trace in self.traces:
            found.extend(trace.problems())
        return found

    @property
    def healthy(self) -> bool:
        """Reconciliation holds, no audit violations, bounds respected."""
        return not self.problems()

    # ------------------------------------------------------------------
    def render(self) -> str:
        """The full Markdown document."""
        from ..sim.engine import ENGINE_SCHEMA_VERSION

        lines = [
            "# Run-health report",
            "",
            f"Engine schema version: {ENGINE_SCHEMA_VERSION}",
            "",
        ]
        problems = self.problems()
        if problems:
            lines.append("**Verdict: UNHEALTHY**")
            lines.append("")
            lines.extend(f"- {p}" for p in problems)
        else:
            lines.append("**Verdict: HEALTHY** — trace reconciles, "
                         "invariants hold, measured rates respect the "
                         "analytic bounds.")
        lines.append("")
        for trace in self.traces:
            lines.extend(self._render_trace(trace))
        return "\n".join(lines).rstrip() + "\n"

    # ------------------------------------------------------------------
    def _render_trace(self, trace: TraceHealth) -> list[str]:
        summary = trace.summary
        lines = [f"## Trace `{summary.path}`", ""]
        lines.append(
            f"- records: {summary.records}"
        )
        if summary.first_time is not None:
            lines.append(
                f"- simulated time span: {summary.first_time:.4g} .. "
                f"{summary.last_time:.4g}"
            )
        lines.append(
            "- events: "
            + ", ".join(
                f"{event} x{count}"
                for event, count in sorted(summary.event_counts.items())
            )
        )
        lines.append("")
        lines.extend(self._render_totals(summary))
        lines.extend(self._render_attribution(trace))
        lines.extend(self._render_dynamics(trace))
        lines.extend(self._render_control(trace))
        lines.extend(self._render_faults(trace))
        lines.extend(self._render_audits(trace))
        lines.extend(self._render_residuals(trace))
        lines.extend(self._render_resources(trace))
        lines.extend(self._render_cache(trace))
        return lines

    def _render_faults(self, trace: TraceHealth) -> list[str]:
        """The "Fault injection" section (omitted for unfaulted runs)."""
        if not trace.faults:
            return []
        lines = ["### Fault injection", ""]
        for sim, records in sorted(trace.faults.items()):
            counts: dict[tuple[str, str], int] = {}
            loss_rate = None
            for record in records:
                kind = str(record.get("kind", "?"))
                if kind == "loss":
                    loss_rate = float(record.get("rate", 0.0))
                    continue
                verb = (
                    "inject"
                    if record.get("event") == "fault_inject"
                    else "clear"
                )
                key = (kind, verb)
                counts[key] = counts.get(key, 0) + 1
            parts = []
            for (kind, verb), count in sorted(counts.items()):
                label = {
                    ("crash", "inject"): "crashes",
                    ("crash", "clear"): "recoveries",
                    ("outage", "inject"): "outage entries",
                    ("outage", "clear"): "outage exits",
                }.get((kind, verb), f"{kind} {verb}s")
                parts.append(f"{count} {label}")
            if loss_rate is not None:
                parts.append(f"Bernoulli loss rate {loss_rate:g}")
            lines.append(f"- sim {sim}: " + ", ".join(parts))
            rows = [
                [
                    record["t"],
                    "inject"
                    if record.get("event") == "fault_inject"
                    else "clear",
                    record.get("kind", "?"),
                    record.get("node", "-"),
                ]
                for record in records
                if record.get("kind") != "loss"
            ]
            if rows:
                lines.append("")
                lines.extend(_table(["t", "transition", "kind", "node"], rows))
        lines.append("")
        return lines

    def _render_totals(self, summary: TraceSummary) -> list[str]:
        lines = ["### Message totals and reconciliation", ""]
        bits = summary.bits
        rows = [
            [category, count, bits[category]]
            for category, count in sorted(summary.messages.items())
        ]
        if rows:
            lines.extend(_table(["category", "messages", "bits"], rows))
        else:
            lines.append("No `msg_tx` events in this trace.")
        lines.append("")
        mismatches = summary.mismatches()
        if mismatches:
            lines.append("**Reconciliation FAILED:**")
            lines.extend(f"- {m}" for m in mismatches)
        elif any(
            run.reported_totals is not None for run in summary.runs.values()
        ):
            lines.append(
                "Reconciliation: traced `msg_tx` events match the "
                "`run_end` reported totals exactly."
            )
        else:
            lines.append(
                "Reconciliation: no `run_end` totals present to check "
                "against."
            )
        lines.append("")
        per_run_rows = []
        for sim, run in sorted(summary.runs.items()):
            frequencies = run.frequencies()
            if frequencies is None:
                continue
            for category, rate in frequencies.items():
                per_run_rows.append([sim, run.n_nodes, category, rate])
        if per_run_rows:
            lines.append("Per-run measured rates (msgs/node/time):")
            lines.append("")
            lines.extend(
                _table(["sim", "N", "category", "rate"], per_run_rows)
            )
            lines.append("")
        return lines

    def _render_attribution(self, trace: TraceHealth) -> list[str]:
        lines = ["### Overhead attribution", ""]
        if not trace.attribution:
            lines.append(
                "No `attribution` events — run with `--trace` to collect "
                "the overhead ledger."
            )
            lines.append("")
            return lines
        # Cause breakdown: per (sim, category) rows whose per-category
        # totals are the ledger's own `totals` — the exact counters the
        # reconciliation check pins to the msg_tx stream, so this table
        # sums to the "Message totals" section by construction.
        rows = []
        for sim, record in sorted(trace.attribution.items()):
            causes = record.get("causes", {})
            for category in sorted(causes):
                breakdown = causes[category]
                category_total = sum(
                    tally["messages"] for tally in breakdown.values()
                )
                for cause in sorted(breakdown):
                    tally = breakdown[cause]
                    share = (
                        tally["messages"] / category_total
                        if category_total
                        else 0.0
                    )
                    rows.append(
                        [
                            sim,
                            category,
                            cause,
                            tally["messages"],
                            tally["bits"],
                            f"{share:.1%}",
                        ]
                    )
                totals = record.get("totals", {}).get(category, {})
                rows.append(
                    [
                        sim,
                        category,
                        "**total**",
                        totals.get("messages", category_total),
                        totals.get("bits"),
                        "100.0%",
                    ]
                )
        lines.extend(
            _table(
                ["sim", "category", "cause", "messages", "bits", "share"],
                rows,
            )
        )
        lines.append("")
        lines.extend(self._render_hotspots(trace))
        lines.extend(self._render_heatmap(trace))
        mismatches = trace.attribution_mismatches()
        if mismatches:
            lines.append("**Attribution reconciliation FAILED:**")
            lines.extend(f"- {m}" for m in mismatches)
        else:
            lines.append(
                "Reconciliation: the ledger's per-cause totals match the "
                "run's `MessageStats` counters (and the traced `msg_tx` "
                "stream) exactly."
            )
        lines.append("")
        return lines

    def _render_hotspots(self, trace: TraceHealth) -> list[str]:
        lines: list[str] = []
        for kind, key in (("nodes", "node"), ("clusters", "cluster")):
            rows = []
            for sim, record in sorted(trace.attribution.items()):
                tallies = record.get(kind, {})
                top = sorted(
                    tallies.items(),
                    key=lambda item: (-item[1]["messages"], int(item[0])),
                )[:5]
                for name, tally in top:
                    rows.append(
                        [sim, int(name), tally["messages"], tally["bits"]]
                    )
            if rows:
                lines.append(f"Top overhead {kind} (by attributed messages):")
                lines.append("")
                lines.extend(
                    _table(["sim", key, "messages", "bits"], rows)
                )
                lines.append("")
        return lines

    def _render_heatmap(self, trace: TraceHealth) -> list[str]:
        lines: list[str] = []
        shades = " .:-=+*#%@"
        for sim, record in sorted(trace.attribution.items()):
            heatmap = record.get("heatmap") or {}
            grid = heatmap.get("messages") or []
            peak = max((max(row) for row in grid if row), default=0)
            if not peak:
                continue
            lines.append(
                f"Spatial heatmap, sim {sim} "
                f"({heatmap.get('bins')}x{heatmap.get('bins')} cells over "
                f"side {_fmt(heatmap.get('side'))}; peak "
                f"{_fmt(float(peak))} messages/cell):"
            )
            lines.append("")
            lines.append("```")
            for row in grid:
                lines.append(
                    "".join(
                        shades[
                            min(
                                len(shades) - 1,
                                int(value / peak * (len(shades) - 1)),
                            )
                        ]
                        * 2
                        for value in row
                    )
                )
            lines.append("```")
            lines.append("")
        return lines

    def _render_dynamics(self, trace: TraceHealth) -> list[str]:
        lines = ["### Cluster dynamics", ""]
        if not trace.dynamics:
            lines.append(
                "No `cluster_window` events — run with `--trace` and an "
                "attached maintenance protocol to collect the series."
            )
            lines.append("")
            return lines
        import statistics

        rows = []
        for sim, windows in sorted(trace.dynamics.items()):
            clusters = [int(w.get("clusters", 0)) for w in windows]
            rows.append(
                [
                    sim,
                    len(windows),
                    sum(int(w.get("head_changes", 0)) for w in windows),
                    sum(int(w.get("reaffiliations", 0)) for w in windows),
                    sum(
                        int(w.get("gateway_adds", 0))
                        + int(w.get("gateway_drops", 0))
                        for w in windows
                    ),
                    statistics.mean(clusters) if clusters else None,
                    windows[-1].get("mean_head_tenure"),
                    windows[-1].get("mean_diameter"),
                ]
            )
        lines.extend(
            _table(
                [
                    "sim",
                    "windows",
                    "head changes",
                    "reaffiliations",
                    "gateway churn",
                    "mean clusters",
                    "head tenure",
                    "mean diameter",
                ],
                rows,
            )
        )
        lines.append("")
        mismatches = trace.dynamics_mismatches()
        if mismatches:
            lines.append("**Cluster-dynamics reconciliation FAILED:**")
            lines.extend(f"- {m}" for m in mismatches)
        else:
            lines.append(
                "Reconciliation: window sums match the trace's "
                "`head_change` / `cluster_reaffiliation` / "
                "`gateway_change` event counts exactly."
            )
        lines.append("")
        return lines

    def _render_control(self, trace: TraceHealth) -> list[str]:
        lines = ["### Adaptive beaconing", ""]
        if not trace.control:
            lines.append(
                "No `control_window` events — run without an adaptive "
                "beacon policy (or untraced)."
            )
            lines.append("")
            return lines
        rows = []
        for sim, windows in sorted(trace.control.items()):
            beacons = sum(int(w.get("beacons", 0)) for w in windows)
            interval_sum = sum(
                float(w.get("mean_interval", 0.0)) * int(w.get("beacons", 0))
                for w in windows
            )
            active = [w for w in windows if int(w.get("beacons", 0))]
            staleness = [float(w.get("staleness", 0.0)) for w in windows]
            rows.append(
                [
                    sim,
                    windows[0].get("policy", "?"),
                    len(windows),
                    beacons,
                    interval_sum / beacons if beacons else None,
                    min(
                        (float(w["min_interval"]) for w in active),
                        default=None,
                    ),
                    max(
                        (float(w["max_interval"]) for w in active),
                        default=None,
                    ),
                    sum(staleness) / len(staleness) if staleness else None,
                    sum(float(w.get("mean_rate", 0.0)) for w in windows)
                    / len(windows),
                ]
            )
        lines.extend(
            _table(
                [
                    "sim",
                    "policy",
                    "windows",
                    "beacons",
                    "mean interval",
                    "min interval",
                    "max interval",
                    "mean staleness",
                    "mean churn rate",
                ],
                rows,
            )
        )
        lines.append("")
        lines.append(
            "Staleness is the mean per-node neighbor-table error count "
            "sampled at each control-window close; churn rate is the "
            "windowed per-node link-change rate the policies acted on."
        )
        lines.append("")
        return lines

    def _render_audits(self, trace: TraceHealth) -> list[str]:
        lines = ["### Invariant audits (P1/P2)", ""]
        if not trace.audits:
            lines.append(
                "No `invariant_audit` events — run without `--audit`."
            )
            lines.append("")
            return lines
        rows = []
        for sim, timeline in sorted(trace.audits.items()):
            violation_time = sum(end - start for start, end in timeline.spans)
            rows.append(
                [
                    sim,
                    timeline.audits,
                    timeline.violations,
                    violation_time,
                    "OK" if timeline.violations == 0 else "VIOLATED",
                ]
            )
        lines.extend(
            _table(
                ["sim", "audits", "violations", "violation time", "status"],
                rows,
            )
        )
        lines.append("")
        for sim, timeline in sorted(trace.audits.items()):
            for start, end in timeline.spans:
                lines.append(
                    f"- sim {sim}: invariants violated from t={start:.4g} "
                    f"to t={end:.4g}"
                )
        if any(timeline.spans for timeline in trace.audits.values()):
            lines.append("")
        return lines

    def _render_residuals(self, trace: TraceHealth) -> list[str]:
        lines = ["### Analytic residuals (measured vs lower bound)", ""]
        keys = sorted(
            set(trace.residual_windows) | set(trace.residual_finals)
        )
        if not keys:
            lines.append("No `residual` events — run without `--audit`.")
            lines.append("")
            return lines
        rows = []
        for key in keys:
            sim, category = key
            windows = trace.residual_windows.get(key, [])
            final = trace.residual_finals.get(key)
            histogram = _window_histogram(windows, final)
            stats = histogram.summary()
            flagged = sum(1 for w in windows if not w.get("ok", True))
            rows.append(
                [
                    sim,
                    category,
                    len(windows),
                    flagged,
                    stats["min"],
                    stats["p50"],
                    final["measured"] if final else None,
                    final["bound"] if final else None,
                    final["residual"] if final else None,
                    ("OK" if final.get("ok") else "BELOW BOUND")
                    if final
                    else "-",
                ]
            )
        lines.extend(
            _table(
                [
                    "sim",
                    "category",
                    "windows",
                    "flagged",
                    "min rate",
                    "p50 rate",
                    "final rate",
                    "bound",
                    "residual",
                    "verdict",
                ],
                rows,
            )
        )
        lines.append("")
        lines.append(
            "A final rate below the bound flags a measurement-window bug "
            "or a model-regime mismatch; single flagged windows are "
            "ordinary burstiness."
        )
        lines.append("")
        return lines

    def _render_resources(self, trace: TraceHealth) -> list[str]:
        lines = ["### Resources", ""]
        samples = trace.resources
        if not samples:
            lines.append(
                "No `resource_sample` events — run without "
                "`--sample-resources`."
            )
            lines.append("")
            return lines
        # Samples from platforms without an RSS source carry rss_kb
        # null (see repro.obs.resources) — report what remains.
        rss_values = [
            float(s["rss_kb"])
            for s in samples
            if s.get("rss_kb") is not None
        ]
        utils = [float(s.get("cpu_util", 0.0)) for s in samples[1:]] or [
            float(s.get("cpu_util", 0.0)) for s in samples
        ]
        lines.append(
            f"- samples: {len(samples)} over "
            f"{samples[-1].get('wall_s', 0.0):.4g}s wall-clock"
        )
        if rss_values:
            rss = Histogram("rss", bounds=_rss_buckets(rss_values))
            for value in rss_values:
                rss.observe(value)
            stats = rss.summary()
            lines.append(
                f"- RSS (KiB): min {stats['min']:.4g}, "
                f"p50 {stats['p50']:.4g}, max {stats['max']:.4g}"
            )
        else:
            lines.append("- RSS: unavailable on this platform")
        lines.append(
            f"- CPU utilisation: mean {sum(utils) / len(utils):.2f} cores"
        )
        phase_totals: dict[str, float] = {}
        for sample in samples:
            for phase, seconds in (sample.get("phases") or {}).items():
                phase_totals[phase] = phase_totals.get(phase, 0.0) + seconds
        if phase_totals:
            total = sum(phase_totals.values())
            lines.append("")
            lines.extend(
                _table(
                    ["phase", "seconds", "share"],
                    [
                        [phase, seconds, f"{seconds / total:.1%}"]
                        for phase, seconds in sorted(
                            phase_totals.items(), key=lambda kv: -kv[1]
                        )
                    ],
                )
            )
        lines.append("")
        return lines

    def _render_cache(self, trace: TraceHealth) -> list[str]:
        if not trace.cache:
            # Degrade to an explicit note rather than silently omitting
            # the section (or printing a meaningless 0/0 rate).
            return [
                "### Result store",
                "",
                "No `cache_*` events — run without `--store`, or the "
                "store was never consulted.",
                "",
            ]
        hits = trace.cache.get("cache_hit", 0)
        misses = trace.cache.get("cache_miss", 0)
        writes = trace.cache.get("cache_write", 0)
        lines = ["### Result store", ""]
        rate = trace.cache_hit_rate()
        rate_text = f"{rate:.1%}" if rate is not None else "n/a"
        lines.append(
            f"- tasks: {hits} hit(s), {misses} miss(es) "
            f"({rate_text} hit rate), {writes} record(s) written"
        )
        lines.append("")
        return lines


def _window_histogram(windows: list[dict], final: dict | None) -> Histogram:
    """Histogram of per-window measured rates, bucketed around the bound."""
    bound = None
    if final is not None:
        bound = float(final.get("bound", 0.0))
    elif windows:
        bound = float(windows[-1].get("bound", 0.0))
    if not bound or bound <= 0.0:
        bound = 1.0
    buckets = tuple(
        bound * factor for factor in (0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 4.0)
    )
    histogram = Histogram("residual_rate", bounds=buckets)
    for window in windows:
        histogram.observe(float(window.get("measured", 0.0)))
    return histogram


def _rss_buckets(rss_values: list[float]) -> tuple[float, ...]:
    peak = max(rss_values) or 1.0
    return tuple(peak * f for f in (0.25, 0.5, 0.75, 0.9, 1.0))


def build_report(paths) -> HealthReport:
    """Analyze one or more trace files into a :class:`HealthReport`."""
    return HealthReport(traces=[analyze_trace(path) for path in paths])
