"""Label-aware metrics registry: counters, gauges and histograms.

A deliberately small, dependency-free take on the Prometheus data
model.  A :class:`MetricsRegistry` hands out metric instruments keyed
by ``(name, labels)``; asking twice for the same instrument returns the
same object, so independent components can share accumulation points.
:class:`~repro.sim.stats.MessageStats` is backed by one of these
registries (``messages_total`` / ``bits_total`` counters labelled by
category), and the CLI's ``--metrics-json`` flag serializes a shared
registry via :meth:`MetricsRegistry.to_dict`.

The instruments are plain attribute-bumping objects — no locks, no
background collection — because the simulator is single-threaded and
the hot path (one counter increment per recorded control message) must
stay cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Default histogram bucket upper bounds (seconds-flavoured, but any
#: unit works; +inf is implicit).
DEFAULT_BUCKETS = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
)


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted(labels.items()))


@dataclass
class Counter:
    """Monotonically increasing value."""

    name: str
    labels: dict[str, str] = field(default_factory=dict)
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self.value += amount


@dataclass
class Gauge:
    """Freely settable value (e.g. current cluster count)."""

    name: str
    labels: dict[str, str] = field(default_factory=dict)
    value: float = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge value."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Shift the gauge by ``amount`` (may be negative)."""
        self.value += amount


@dataclass
class Histogram:
    """Bucketed distribution with total count, sum and value range.

    Besides the Prometheus-style buckets, the extremes of the observed
    values are tracked so :meth:`quantile` can interpolate within the
    first and last occupied buckets instead of reporting a bucket bound
    that no observation ever reached.
    """

    name: str
    labels: dict[str, str] = field(default_factory=dict)
    bounds: tuple[float, ...] = DEFAULT_BUCKETS
    bucket_counts: list[int] = field(default_factory=list)
    count: int = 0
    sum: float = 0.0
    min_value: float = float("inf")
    max_value: float = float("-inf")

    def __post_init__(self) -> None:
        if tuple(self.bounds) != tuple(sorted(self.bounds)):
            raise ValueError("histogram bounds must be sorted ascending")
        if not self.bucket_counts:
            # One overflow bucket beyond the last bound.
            self.bucket_counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.sum += value
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value
        for position, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[position] += 1
                return
        self.bucket_counts[-1] += 1

    def mean(self) -> float:
        """Mean of all observations (NaN when empty)."""
        if self.count == 0:
            return float("nan")
        return self.sum / self.count

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile from the bucket counts.

        Linear interpolation inside the containing bucket, with the
        bucket edges clamped to the observed value range — so a
        single-sample histogram returns that sample for every ``q``,
        and the overflow bucket interpolates toward the observed
        maximum rather than infinity.  Returns NaN when empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must lie in [0, 1], got {q}")
        if self.count == 0:
            return float("nan")
        target = q * self.count
        cumulative = 0
        for position, bucket in enumerate(self.bucket_counts):
            if bucket == 0:
                continue
            if cumulative + bucket < target:
                cumulative += bucket
                continue
            lower = (
                self.min_value
                if position == 0
                else max(self.bounds[position - 1], self.min_value)
            )
            upper = (
                self.max_value
                if position == len(self.bounds)
                else min(self.bounds[position], self.max_value)
            )
            if upper < lower:
                upper = lower
            fraction = min(1.0, max(0.0, (target - cumulative) / bucket))
            return lower + fraction * (upper - lower)
        return self.max_value

    def summary(self) -> dict:
        """Count, sum, mean, range and standard quantiles as one dict.

        The report renderer's one-stop view; NaN-valued statistics mark
        an empty histogram.
        """
        empty = self.count == 0
        nan = float("nan")
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean(),
            "min": nan if empty else self.min_value,
            "max": nan if empty else self.max_value,
            "p50": self.quantile(0.5),
            "p90": self.quantile(0.9),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Home of every metric instrument one observation scope produces.

    Instruments are created on first request and shared afterwards; a
    name may only ever be used with a single instrument kind.
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple[tuple[str, str], ...], object] = {}
        self._kinds: dict[str, str] = {}

    # ------------------------------------------------------------------
    def _get(self, kind: str, name: str, labels: dict[str, str], factory):
        registered = self._kinds.setdefault(name, kind)
        if registered != kind:
            raise ValueError(
                f"metric {name!r} already registered as a {registered}, "
                f"cannot re-register as a {kind}"
            )
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = factory()
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        """The counter ``name`` with ``labels``, created on first use."""
        labels = {k: str(v) for k, v in labels.items()}
        return self._get(
            "counter", name, labels, lambda: Counter(name, labels)
        )

    def gauge(self, name: str, **labels: str) -> Gauge:
        """The gauge ``name`` with ``labels``, created on first use."""
        labels = {k: str(v) for k, v in labels.items()}
        return self._get("gauge", name, labels, lambda: Gauge(name, labels))

    def histogram(
        self, name: str, buckets: tuple[float, ...] | None = None, **labels: str
    ) -> Histogram:
        """The histogram ``name`` with ``labels``, created on first use."""
        labels = {k: str(v) for k, v in labels.items()}
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        return self._get(
            "histogram", name, labels, lambda: Histogram(name, labels, bounds)
        )

    # ------------------------------------------------------------------
    def collect(self):
        """All instruments, in registration order."""
        return list(self._metrics.values())

    def to_dict(self) -> dict:
        """JSON-serializable snapshot of every instrument."""
        counters, gauges, histograms = [], [], []
        for metric in self._metrics.values():
            if isinstance(metric, Counter):
                counters.append(
                    {
                        "name": metric.name,
                        "labels": metric.labels,
                        "value": metric.value,
                    }
                )
            elif isinstance(metric, Gauge):
                gauges.append(
                    {
                        "name": metric.name,
                        "labels": metric.labels,
                        "value": metric.value,
                    }
                )
            elif isinstance(metric, Histogram):
                empty = metric.count == 0
                histograms.append(
                    {
                        "name": metric.name,
                        "labels": metric.labels,
                        "bounds": list(metric.bounds),
                        "bucket_counts": list(metric.bucket_counts),
                        "count": metric.count,
                        "sum": metric.sum,
                        # inf is not JSON; an empty range serializes as null.
                        "min": None if empty else metric.min_value,
                        "max": None if empty else metric.max_value,
                    }
                )
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }
