"""Label-aware metrics registry: counters, gauges and histograms.

A deliberately small, dependency-free take on the Prometheus data
model.  A :class:`MetricsRegistry` hands out metric instruments keyed
by ``(name, labels)``; asking twice for the same instrument returns the
same object, so independent components can share accumulation points.
:class:`~repro.sim.stats.MessageStats` is backed by one of these
registries (``messages_total`` / ``bits_total`` counters labelled by
category), and the CLI's ``--metrics-json`` flag serializes a shared
registry via :meth:`MetricsRegistry.to_dict`.

The instruments are plain attribute-bumping objects — no locks, no
background collection — because the simulator is single-threaded and
the hot path (one counter increment per recorded control message) must
stay cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Default histogram bucket upper bounds (seconds-flavoured, but any
#: unit works; +inf is implicit).
DEFAULT_BUCKETS = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
)


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted(labels.items()))


@dataclass
class Counter:
    """Monotonically increasing value."""

    name: str
    labels: dict[str, str] = field(default_factory=dict)
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self.value += amount


@dataclass
class Gauge:
    """Freely settable value (e.g. current cluster count)."""

    name: str
    labels: dict[str, str] = field(default_factory=dict)
    value: float = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge value."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Shift the gauge by ``amount`` (may be negative)."""
        self.value += amount


@dataclass
class Histogram:
    """Bucketed distribution with total count and sum."""

    name: str
    labels: dict[str, str] = field(default_factory=dict)
    bounds: tuple[float, ...] = DEFAULT_BUCKETS
    bucket_counts: list[int] = field(default_factory=list)
    count: int = 0
    sum: float = 0.0

    def __post_init__(self) -> None:
        if tuple(self.bounds) != tuple(sorted(self.bounds)):
            raise ValueError("histogram bounds must be sorted ascending")
        if not self.bucket_counts:
            # One overflow bucket beyond the last bound.
            self.bucket_counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.sum += value
        for position, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[position] += 1
                return
        self.bucket_counts[-1] += 1

    def mean(self) -> float:
        """Mean of all observations (NaN when empty)."""
        if self.count == 0:
            return float("nan")
        return self.sum / self.count


class MetricsRegistry:
    """Home of every metric instrument one observation scope produces.

    Instruments are created on first request and shared afterwards; a
    name may only ever be used with a single instrument kind.
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple[tuple[str, str], ...], object] = {}
        self._kinds: dict[str, str] = {}

    # ------------------------------------------------------------------
    def _get(self, kind: str, name: str, labels: dict[str, str], factory):
        registered = self._kinds.setdefault(name, kind)
        if registered != kind:
            raise ValueError(
                f"metric {name!r} already registered as a {registered}, "
                f"cannot re-register as a {kind}"
            )
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = factory()
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        """The counter ``name`` with ``labels``, created on first use."""
        labels = {k: str(v) for k, v in labels.items()}
        return self._get(
            "counter", name, labels, lambda: Counter(name, labels)
        )

    def gauge(self, name: str, **labels: str) -> Gauge:
        """The gauge ``name`` with ``labels``, created on first use."""
        labels = {k: str(v) for k, v in labels.items()}
        return self._get("gauge", name, labels, lambda: Gauge(name, labels))

    def histogram(
        self, name: str, buckets: tuple[float, ...] | None = None, **labels: str
    ) -> Histogram:
        """The histogram ``name`` with ``labels``, created on first use."""
        labels = {k: str(v) for k, v in labels.items()}
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        return self._get(
            "histogram", name, labels, lambda: Histogram(name, labels, bounds)
        )

    # ------------------------------------------------------------------
    def collect(self):
        """All instruments, in registration order."""
        return list(self._metrics.values())

    def to_dict(self) -> dict:
        """JSON-serializable snapshot of every instrument."""
        counters, gauges, histograms = [], [], []
        for metric in self._metrics.values():
            if isinstance(metric, Counter):
                counters.append(
                    {
                        "name": metric.name,
                        "labels": metric.labels,
                        "value": metric.value,
                    }
                )
            elif isinstance(metric, Gauge):
                gauges.append(
                    {
                        "name": metric.name,
                        "labels": metric.labels,
                        "value": metric.value,
                    }
                )
            elif isinstance(metric, Histogram):
                histograms.append(
                    {
                        "name": metric.name,
                        "labels": metric.labels,
                        "bounds": list(metric.bounds),
                        "bucket_counts": list(metric.bucket_counts),
                        "count": metric.count,
                        "sum": metric.sum,
                    }
                )
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }
