"""Run-health wiring: attach auditor + residual monitor from ambient config.

The CLI's ``--audit`` flag places a
:class:`~repro.obs.context.RunHealthConfig` into the ambient
observability context; any code that assembles a simulation stack then
calls :func:`attach_run_health` after attaching its protocols, and the
run-health layer (invariant auditor + analytic-residual monitor)
appears — or does not, when no config is active — without the
experiment signatures knowing about it.  Worker processes receive the
same config through :mod:`repro.analysis.parallel`, so ``--jobs > 1``
traced runs carry identical ``invariant_audit`` / ``residual`` events.
"""

from __future__ import annotations

from .audit import InvariantAuditor
from .context import RunHealthConfig, current
from .residuals import MONITORED_CATEGORIES, ResidualMonitor

__all__ = ["RunHealthConfig", "attach_run_health"]


def attach_run_health(
    sim,
    maintenance=None,
    categories=None,
    config: RunHealthConfig | None = None,
):
    """Attach the run-health protocols to ``sim`` when configured.

    Parameters
    ----------
    sim:
        The simulation; must already have its protocol stack attached
        (the auditor must run *after* maintenance repairs).
    maintenance:
        The cluster maintenance protocol, or ``None`` when the stack
        has no one-hop clustering (then only the HELLO bound is
        monitored and no invariant auditor is attached).
    categories:
        Residual categories to monitor; defaults to everything the
        stack supports (``hello`` always, plus ``cluster``/``route``
        when ``maintenance`` is present).
    config:
        Explicit configuration; defaults to the ambient context's
        ``health`` field.  Returns ``(None, None)`` when neither is
        set — the zero-cost default.

    Returns
    -------
    (auditor, monitor):
        The attached :class:`~repro.obs.audit.InvariantAuditor` and
        :class:`~repro.obs.residuals.ResidualMonitor` (either may be
        ``None``).
    """
    if config is None:
        config = current().health
    if config is None:
        return None, None
    auditor = None
    if maintenance is not None:
        auditor = sim.attach(
            InvariantAuditor(
                maintenance, every=config.audit_every, strict=config.strict
            )
        )
    if categories is None:
        categories = (
            MONITORED_CATEGORIES if maintenance is not None else ("hello",)
        )
    monitor = None
    if categories:
        monitor = sim.attach(
            ResidualMonitor(
                sim.params,
                maintenance,
                categories=categories,
                window=config.residual_window,
                rtol=config.residual_rtol,
            )
        )
    return auditor, monitor
