"""Background resource sampling: RSS, CPU and engine phase deltas.

A :class:`ResourceSampler` runs a daemon thread that wakes every
``interval`` wall-clock seconds and records one sample: the process's
current resident set size (``/proc/self/statm`` where available, with
the ``getrusage`` peak as fallback), CPU utilisation since the previous
sample (user+system time delta over wall delta), and — when a shared
:class:`~repro.obs.timing.PhaseTimer` is supplied — the per-phase
wall-clock charged since the previous sample, which shows *what the
engine was doing* while the resources were consumed.

Samples are kept in memory (``samples``) and, when a tracer is given,
mirrored as ``resource_sample`` trace events whose envelope ``t`` is
wall-clock seconds since :meth:`start` (resource usage has no simulated
time).  ``repro-manet bench`` and the CLI's ``--sample-resources`` flag
are the two consumers.
"""

from __future__ import annotations

import os
import threading
from time import perf_counter

__all__ = ["ResourceSampler", "current_rss_kb"]

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def current_rss_kb() -> int | None:
    """Current resident set size in kilobytes, or ``None`` if unknown.

    Reads ``/proc/self/statm`` (Linux); falls back to the ``getrusage``
    *peak* RSS elsewhere — still an upper bound, and monotone, so the
    report labels it accordingly via :data:`ResourceSampler.rss_source`.
    On platforms with neither source (no procfs and no ``resource``
    module, e.g. some sandboxes), returns ``None`` so sampling degrades
    to CPU/phase data instead of failing.
    """
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as fh:
            resident_pages = int(fh.read().split()[1])
        return resident_pages * _PAGE_SIZE // 1024
    except (OSError, IndexError, ValueError):
        pass
    try:
        import resource

        return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    except (ImportError, OSError, ValueError):
        return None


class ResourceSampler:
    """Samples process resources on a wall-clock cadence.

    Parameters
    ----------
    interval:
        Wall-clock seconds between samples.
    tracer:
        Optional tracer to mirror samples into as ``resource_sample``
        events; samples are always collected in :attr:`samples`.
    timer:
        Optional shared :class:`~repro.obs.timing.PhaseTimer`; each
        sample then carries the per-phase seconds charged since the
        previous sample.
    """

    def __init__(self, interval: float = 0.5, tracer=None, timer=None):
        if interval <= 0.0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.interval = interval
        self.tracer = tracer
        self.timer = timer
        self.samples: list[dict] = []
        if os.path.exists("/proc/self/statm"):
            self.rss_source = "statm"
        elif current_rss_kb() is not None:
            self.rss_source = "getrusage-peak"
        else:
            # Non-Linux platform with no usable RSS source: samples
            # still flow, carrying rss_kb=None (satellite: macOS dev
            # machines must not lose --sample-resources entirely).
            self.rss_source = "unavailable"
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._started_at: float | None = None
        self._last_wall: float | None = None
        self._last_cpu: float | None = None
        self._last_phases: dict[str, float] = {}

    # ------------------------------------------------------------------
    def start(self) -> "ResourceSampler":
        """Take a baseline and begin sampling in a daemon thread."""
        if self._thread is not None:
            raise RuntimeError("sampler already started")
        self._started_at = self._last_wall = perf_counter()
        self._last_cpu = self._cpu_seconds()
        self._last_phases = self._phase_snapshot()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-resource-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the thread and take one final closing sample."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join()
        self._thread = None
        self.sample()

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample()

    @staticmethod
    def _cpu_seconds() -> float:
        times = os.times()
        return times.user + times.system

    def _phase_snapshot(self) -> dict[str, float]:
        if self.timer is None:
            return {}
        try:
            return {
                p.phase: p.seconds for p in self.timer.report().phases
            }
        except RuntimeError:
            # The engine thread registered a new phase mid-iteration;
            # skip this snapshot rather than crash the sampler.
            return dict(self._last_phases)

    def sample(self) -> dict:
        """Take one sample now (also usable without the thread)."""
        wall = perf_counter()
        cpu = self._cpu_seconds()
        phases = self._phase_snapshot()
        elapsed = wall - (self._started_at if self._started_at else wall)
        wall_delta = wall - self._last_wall if self._last_wall else 0.0
        cpu_delta = cpu - self._last_cpu if self._last_cpu is not None else 0.0
        phase_deltas = {
            name: round(seconds - self._last_phases.get(name, 0.0), 9)
            for name, seconds in phases.items()
            if seconds - self._last_phases.get(name, 0.0) > 0.0
        }
        record = {
            "wall_s": elapsed,
            "rss_kb": current_rss_kb(),
            "cpu_s": cpu,
            "cpu_util": cpu_delta / wall_delta if wall_delta > 0 else 0.0,
            "phases": phase_deltas,
        }
        self._last_wall = wall
        self._last_cpu = cpu
        self._last_phases = phases
        self.samples.append(record)
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.emit("resource_sample", elapsed, **record)
        return record

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Aggregate view of all samples taken (for bench reports)."""
        if not self.samples:
            return {
                "samples": 0,
                "interval_s": self.interval,
                "rss_source": self.rss_source,
            }
        rss = [
            s["rss_kb"] for s in self.samples if s["rss_kb"] is not None
        ]
        utils = [s["cpu_util"] for s in self.samples[1:] or self.samples]
        return {
            "samples": len(self.samples),
            "interval_s": self.interval,
            "rss_source": self.rss_source,
            "rss_kb_max": max(rss) if rss else None,
            "rss_kb_mean": sum(rss) / len(rss) if rss else None,
            "cpu_util_mean": sum(utils) / len(utils) if utils else 0.0,
            "wall_s": self.samples[-1]["wall_s"],
        }
