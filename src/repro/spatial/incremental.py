"""Incremental temporal-coherence connectivity engine.

With ``recommended_step`` bounding per-step displacement to a few
percent of the transmission range, almost no links change between
consecutive steps — yet the batch edge engine re-tests every candidate
cell pair each step.  This module exploits that temporal coherence
while staying *exact*: every step returns the bit-identical sorted
edge set (and :class:`~repro.spatial.neighbors.LinkEvents`) that a full
rebuild would produce.  Tests enforce the equivalence property.

The scheme is an expanded-radius candidate cache validated by the
triangle inequality:

* At a **full validation** the internal grid (sized for
  ``tx_range + margin``) produces all candidate pairs within the
  expanded radius, their distances ``d0``, their edge status
  ``d0 <= r``, and a snapshot of the positions.
* Each **incremental step** computes every node's displacement since
  the snapshot under the region metric.  For a candidate pair with
  displacement sum ``s``, the metric's triangle inequality gives
  ``|d_now - d0| <= s``, so the pair is *safe* (status cannot have
  flipped) whenever ``s < |d0 - r|``; only the *at-risk* pairs get
  their distance recomputed.  Pairs outside the candidate set are
  covered globally: no pair separation can shrink by more than the two
  largest displacements, so while their sum stays below ``margin`` no
  non-candidate can have entered range — once it no longer does, the
  engine falls back to a full validation.
* A float-safety slack ``eps`` shrinks the safe band so borderline
  classifications always take the recompute path, where the distance
  is evaluated bit-identically to the batch engine (see below), so the
  resulting edge status can never disagree with a full rebuild.

Distances are computed by :meth:`_pair_distances`, which replaces the
round-based torus wrap of :meth:`SquareRegion.displacement` with
``min(|d|, side - |d|)``: IEEE-754 subtraction rounds symmetrically
(``fl(a - b) == -fl(b - a)``), so both forms produce the same wrapped
magnitude bit for bit and the final ``sqrt(dx*dx + dy*dy)`` matches
``region.distance`` exactly — while skipping ``np.round``, the single
most expensive op of the batch sweep.  Tests assert the bitwise
equality directly.

Teleports, mobility resets, and any other large jump are caught by the
same displacement test (the region metric bounds the torus shortcut
correctly), and :meth:`IncrementalConnectivityEngine.invalidate` lets
the simulation force a validation on external events such as
``fail_node``/``recover_node``.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import numpy as np

from .grid_index import UniformGridIndex
from .neighbors import INCREMENTAL_MARGIN_FRACTION, LinkEvents
from .region import Boundary, SquareRegion

__all__ = [
    "IncrementalConnectivityEngine",
    "IncrementalStepResult",
]


@dataclass(frozen=True)
class IncrementalStepResult:
    """Outcome of one engine step.

    ``edges`` is the canonical sorted ``(E, 2)`` edge set.  ``events``
    carries the link changes since the previous step when the fast
    mask-diff path produced them, and is ``None`` on validation steps
    (the caller diffs edge sets itself there).  ``revalidate_seconds``
    is the time spent classifying and recomputing at-risk pairs, kept
    separate so the simulation can charge it to a dedicated sub-phase.
    """

    edges: np.ndarray
    events: LinkEvents | None
    rebuilt: bool
    at_risk: int
    revalidate_seconds: float


class IncrementalConnectivityEngine:
    """Exact connectivity tracking that carries state across steps.

    Parameters
    ----------
    region:
        Square region whose metric (torus or Euclidean) governs
        distances.
    tx_range:
        Unit-disk transmission range.
    margin_fraction:
        Candidate radius is ``(1 + margin_fraction) * tx_range``.  A
        larger margin buys more steps between full validations at the
        cost of a bigger candidate set per step.
    """

    def __init__(
        self,
        region: SquareRegion,
        tx_range: float,
        margin_fraction: float = INCREMENTAL_MARGIN_FRACTION,
    ) -> None:
        if tx_range <= 0.0:
            raise ValueError(f"tx_range must be positive, got {tx_range}")
        if margin_fraction <= 0.0:
            raise ValueError(
                f"margin_fraction must be positive, got {margin_fraction}"
            )
        self.region = region
        self.tx_range = float(tx_range)
        self.margin = margin_fraction * self.tx_range
        # Slack subtracted from every safe-band test: borderline pairs
        # fall through to the recompute path, whose result is bit-exact
        # against the batch engine, so float rounding can never flip a
        # "safe" classification.  Way above the ~ulp-scale error the
        # displacement sums can accumulate, way below any physical
        # displacement.
        self._eps = 1e-9 * self.tx_range
        self._wrap = region.boundary is Boundary.TORUS
        self.grid = UniformGridIndex(region, self.tx_range + self.margin)
        self._ref: np.ndarray | None = None
        self._cand: np.ndarray | None = None
        self._ci: np.ndarray | None = None
        self._cj: np.ndarray | None = None
        self._risk_margin: np.ndarray | None = None
        self._base_edge: np.ndarray | None = None
        self._mask: np.ndarray | None = None
        self._prev_mask: np.ndarray | None = None
        self._pending = True
        # Grown-on-demand scratch (keyed by role) so steady-state steps
        # allocate almost nothing.
        self._buffers: dict[str, np.ndarray] = {}
        self.full_rebuilds = 0
        self.incremental_steps = 0
        self.last_at_risk = 0
        self.at_risk_total = 0

    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Force a full validation on the next :meth:`step`.

        Called by the simulation on external events (``fail_node``,
        ``recover_node``) so the engine never reasons across a state
        change it cannot see in the positions.
        """
        self._pending = True

    def _scratch(self, name: str, size: int, dtype) -> np.ndarray:
        buf = self._buffers.get(name)
        if buf is None or buf.shape[0] < size or buf.dtype != np.dtype(dtype):
            buf = np.empty(size + (size >> 2) + 16, dtype=dtype)
            self._buffers[name] = buf
        return buf[:size]

    def _pair_distances(
        self, pos: np.ndarray, i: np.ndarray, j: np.ndarray
    ) -> np.ndarray:
        """Distances of the node pairs, bit-equal to ``region.distance``.

        The torus wrap uses ``min(|d|, side - |d|)`` instead of the
        round-based form — identical magnitudes under IEEE-754 (module
        docstring), at a fraction of the cost of ``np.round``.
        """
        x = pos[:, 0]
        y = pos[:, 1]
        dx = x[i] - x[j]
        dy = y[i] - y[j]
        np.abs(dx, out=dx)
        np.abs(dy, out=dy)
        if self._wrap:
            side = self.region.side
            np.minimum(dx, side - dx, out=dx)
            np.minimum(dy, side - dy, out=dy)
        dx *= dx
        dy *= dy
        dx += dy
        return np.sqrt(dx, out=dx)

    def _validate(self, pos: np.ndarray) -> np.ndarray:
        """Full candidate sweep at the expanded radius; reseeds all state."""
        i, j = self.grid.candidate_pairs_raw()
        n = len(pos)
        r_cand = self.grid.tx_range
        dist = self._pair_distances(pos, i, j)
        keep = dist <= r_cand
        aliased = self._wrap and self.grid.cells_per_side <= 2
        if aliased:
            # Aliased wrapped stencil offsets emit self pairs and
            # duplicates (see candidate_pairs_raw); drop / dedup them.
            keep &= i != j
        i, j, dist = i[keep], j[keep], dist[keep]
        keys = np.minimum(i, j) * n + np.maximum(i, j)
        if aliased:
            keys, first = np.unique(keys, return_index=True)
            dist = dist[first]
        else:
            # Keys are unique here, so a plain (unstable) sort is
            # deterministic and canonical.
            rank = np.argsort(keys)
            keys = keys[rank]
            dist = dist[rank]
        ci = keys // n
        cj = keys - ci * n
        self._ci = ci
        self._cj = cj
        self._cand = np.column_stack((ci, cj))
        self._base_edge = dist <= self.tx_range
        # Precomputed per-pair safe band |d0 - r| - eps: an incremental
        # step only compares displacement sums against it.
        self._risk_margin = np.abs(dist - self.tx_range)
        self._risk_margin -= self._eps
        k = len(keys)
        self._mask = self._scratch("mask", k, bool)
        self._prev_mask = self._scratch("prev_mask", k, bool)
        np.copyto(self._mask, self._base_edge)
        # The mobility model mutates its position buffer in place, so
        # the reference snapshot must be an owned copy.
        self._ref = pos.copy()
        self._pending = False
        self.full_rebuilds += 1
        self.last_at_risk = 0
        return self._cand[self._base_edge]

    def _needs_validation(self, disp: np.ndarray) -> bool:
        if disp.shape[0] < 2:
            return False
        # No pair separation can change by more than the sum of the two
        # largest displacements; once that reaches the margin a
        # non-candidate pair could have entered range.
        top2 = np.partition(disp, disp.shape[0] - 2)[-2:]
        return float(top2[0] + top2[1]) + self._eps >= self.margin

    def step(self, positions: np.ndarray) -> IncrementalStepResult:
        """Advance to ``positions`` and return the exact edge set."""
        pos = np.asarray(positions, dtype=float)
        self.grid.update(pos)
        rebuild = (
            self._pending
            or self._ref is None
            or len(pos) != len(self._ref)
        )
        disp = None
        if not rebuild:
            disp = self.region.distance(self._ref, pos)
            rebuild = self._needs_validation(disp)
        if rebuild:
            edges = self._validate(pos)
            return IncrementalStepResult(
                edges=edges,
                events=None,
                rebuilt=True,
                at_risk=0,
                revalidate_seconds=0.0,
            )
        started = perf_counter()
        k = len(self._ci)
        s = self._scratch("disp_sum", k, float)
        sj = self._scratch("disp_j", k, float)
        np.take(disp, self._ci, out=s)
        np.take(disp, self._cj, out=sj)
        s += sj
        at_risk = self._scratch("at_risk", k, bool)
        np.greater_equal(s, self._risk_margin, out=at_risk)
        # Double-buffered masks: the previous step's status becomes the
        # diff baseline for this step's link events.
        self._mask, self._prev_mask = self._prev_mask, self._mask
        np.copyto(self._mask, self._base_edge)
        risk_idx = np.flatnonzero(at_risk)
        if risk_idx.size:
            d_now = self._pair_distances(
                pos, self._ci[risk_idx], self._cj[risk_idx]
            )
            self._mask[risk_idx] = d_now <= self.tx_range
        flipped = self._scratch("flipped", k, bool)
        np.not_equal(self._prev_mask, self._mask, out=flipped)
        # Candidates are stored in canonical sorted order, so masked
        # selections are already sorted edge arrays — the events here
        # are bit-identical to diff_edge_sets on the two snapshots.
        flip_idx = np.flatnonzero(flipped)
        up = self._mask[flip_idx]
        generated = self._cand[flip_idx[up]]
        broken = self._cand[flip_idx[~up]]
        edges = self._cand.compress(self._mask, axis=0)
        self.incremental_steps += 1
        self.last_at_risk = int(risk_idx.size)
        self.at_risk_total += self.last_at_risk
        return IncrementalStepResult(
            edges=edges,
            events=LinkEvents(generated=generated, broken=broken),
            rebuilt=False,
            at_risk=self.last_at_risk,
            revalidate_seconds=perf_counter() - started,
        )
