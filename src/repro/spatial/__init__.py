"""Spatial substrate: square regions, metrics and neighbor indexing."""

from .region import Boundary, SquareRegion
from .grid_index import UniformGridIndex
from .incremental import IncrementalConnectivityEngine, IncrementalStepResult
from .neighbors import (
    GRID_CROSSOVER_NODES,
    INCREMENTAL_MARGIN_FRACTION,
    INCREMENTAL_MIN_AMORTIZED_STEPS,
    LinkEvents,
    adjacency_to_edges,
    compute_adjacency,
    compute_edges,
    degree_counts,
    degree_counts_from_edges,
    diff_adjacency,
    diff_edge_sets,
    edges_to_adjacency,
    select_connectivity_method,
)

__all__ = [
    "Boundary",
    "SquareRegion",
    "UniformGridIndex",
    "IncrementalConnectivityEngine",
    "IncrementalStepResult",
    "GRID_CROSSOVER_NODES",
    "INCREMENTAL_MARGIN_FRACTION",
    "INCREMENTAL_MIN_AMORTIZED_STEPS",
    "LinkEvents",
    "adjacency_to_edges",
    "compute_adjacency",
    "compute_edges",
    "degree_counts",
    "degree_counts_from_edges",
    "diff_adjacency",
    "diff_edge_sets",
    "edges_to_adjacency",
    "select_connectivity_method",
]
