"""Spatial substrate: square regions, metrics and neighbor indexing."""

from .region import Boundary, SquareRegion
from .grid_index import UniformGridIndex
from .neighbors import LinkEvents, compute_adjacency, degree_counts, diff_adjacency

__all__ = [
    "Boundary",
    "SquareRegion",
    "UniformGridIndex",
    "LinkEvents",
    "compute_adjacency",
    "degree_counts",
    "diff_adjacency",
]
