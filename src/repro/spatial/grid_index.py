"""Uniform grid spatial index for neighbor queries.

For ``N`` nodes with transmission range ``r`` in a square of side ``a``,
the dense ``O(N^2)`` distance matrix is exact but wasteful once
``r << a``.  The :class:`UniformGridIndex` bins nodes into cells of side
``>= r`` so that all neighbors of a node lie in its 3x3 cell
neighborhood (torus-aware when the region wraps), bringing expected
query cost down to ``O(density * r^2)`` per node.

:meth:`UniformGridIndex.neighbor_pairs` is the canonical bulk output:
a sorted ``(E, 2)`` edge array computed by a *batched cell-pair sweep*
— every occupied cell is paired with its half stencil in one CSR-style
vectorized expansion, with no per-node Python loop and no dense matrix
reconstruction.  The dense :meth:`adjacency` view is derived from the
edge set for consumers that still index into a matrix.

The index returns exactly the same neighbor sets as the dense metric;
tests assert this equivalence property.
"""

from __future__ import annotations

import math

import numpy as np

from .region import Boundary, SquareRegion

__all__ = ["UniformGridIndex"]

#: Half of the 3x3 stencil: pairing each cell with these directed
#: offsets (plus the within-cell pairs) visits every unordered cell
#: pair of the full stencil exactly once.
_HALF_STENCIL = ((0, 1), (1, -1), (1, 0), (1, 1))


def _csr_expand(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(s, s + c)`` for each start/count pair.

    The standard vectorized CSR expansion: one output slot per
    candidate, no Python loop over the (potentially many) groups.
    """
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    return (
        np.arange(total, dtype=np.int64)
        - np.repeat(offsets, counts)
        + np.repeat(starts, counts)
    )


class UniformGridIndex:
    """Rebuildable uniform grid over a :class:`SquareRegion`.

    Parameters
    ----------
    region:
        The square region whose metric (torus or Euclidean) governs
        distances.
    tx_range:
        Query radius the index is optimized for.  Queries with a radius
        larger than ``tx_range`` raise, since the 3x3 stencil would miss
        neighbors.
    """

    def __init__(self, region: SquareRegion, tx_range: float) -> None:
        if tx_range <= 0.0:
            raise ValueError(f"tx_range must be positive, got {tx_range}")
        self.region = region
        self.tx_range = tx_range
        # At least one cell; cells no smaller than the query radius.
        self.cells_per_side = max(1, int(math.floor(region.side / tx_range)))
        self.cell_size = region.side / self.cells_per_side
        self._positions: np.ndarray | None = None
        self._cell_of: np.ndarray | None = None
        self._flat: np.ndarray | None = None
        self._order: np.ndarray | None = None
        self._start: np.ndarray | None = None
        self._counts: np.ndarray | None = None
        self._sortkey: np.ndarray | None = None
        self._buckets: dict[tuple[int, int], np.ndarray] | None = None

    # ------------------------------------------------------------------
    def _bin(self, pos: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Cell coordinates and flat cell ids for ``pos`` (shared by
        rebuild and update so both paths bin identically)."""
        cells = np.floor(pos / self.cell_size).astype(np.int64)
        np.clip(cells, 0, self.cells_per_side - 1, out=cells)
        return cells, cells[:, 0] * self.cells_per_side + cells[:, 1]

    def rebuild(self, positions: np.ndarray) -> None:
        """(Re)index the given positions."""
        pos = np.asarray(positions, dtype=float)
        if pos.ndim != 2 or pos.shape[1] != 2:
            raise ValueError(f"positions must be (N, 2), got shape {pos.shape}")
        self._positions = pos
        cells, flat = self._bin(pos)
        self._cell_of = cells
        self._flat = flat
        self._order = np.argsort(flat, kind="stable")
        self._counts = np.bincount(flat, minlength=self.cells_per_side**2)
        self._start = np.concatenate(([0], np.cumsum(self._counts)))
        # Stable argsort of flat == sort by (cell, node id); keeping the
        # composite key lets update() repair the order by sorted merge.
        self._sortkey = flat[self._order] * np.int64(len(pos)) + self._order
        # Per-cell buckets are only needed by single-node queries; they
        # are materialized lazily so bulk rebuild+pair sweeps skip the
        # per-cell Python loop entirely.
        self._buckets = None

    def update(self, positions: np.ndarray) -> int:
        """Incrementally re-index, re-binning only nodes that changed cell.

        With displacement-bounded mobility almost every node stays in
        its cell between steps, so instead of a fresh counting sort the
        moved nodes are dropped from the sorted order and merged back at
        their new ``(cell, id)`` rank — ``O(N + moved log moved)`` with
        the ``O(N log N)`` argsort skipped entirely.  Falls back to
        :meth:`rebuild` on first use, when the node count changes, or
        when more than a quarter of the nodes moved cell (at that churn
        the merge repair costs more than the counting sort it avoids).

        Returns the number of nodes whose cell changed.  The resulting
        index state is bit-identical to a :meth:`rebuild` at the same
        positions; tests enforce this.
        """
        pos = np.asarray(positions, dtype=float)
        if pos.ndim != 2 or pos.shape[1] != 2:
            raise ValueError(f"positions must be (N, 2), got shape {pos.shape}")
        if self._flat is None or len(pos) != len(self._flat):
            self.rebuild(pos)
            return len(pos)
        n = len(pos)
        cells, flat = self._bin(pos)
        changed = np.flatnonzero(flat != self._flat)
        self._positions = pos
        if changed.size == 0:
            self._cell_of = cells
            return 0
        if changed.size * 4 > n:
            self.rebuild(pos)
            return int(changed.size)
        ncells = self.cells_per_side**2
        self._counts -= np.bincount(self._flat[changed], minlength=ncells)
        self._counts += np.bincount(flat[changed], minlength=ncells)
        self._start = np.concatenate(([0], np.cumsum(self._counts)))
        # Merge repair: strip the moved nodes out of the sorted order,
        # then insert them back at their new composite-key rank.
        moved = np.zeros(n, dtype=bool)
        moved[changed] = True
        keep = ~moved[self._order]
        base_order = self._order[keep]
        base_keys = self._sortkey[keep]
        ins_keys = flat[changed] * np.int64(n) + changed
        ins_sort = np.argsort(ins_keys)
        ins_keys = ins_keys[ins_sort]
        slots = np.searchsorted(base_keys, ins_keys)
        self._order = np.insert(base_order, slots, changed[ins_sort])
        self._sortkey = np.insert(base_keys, slots, ins_keys)
        self._cell_of = cells
        self._flat = flat
        self._buckets = None
        return int(changed.size)

    def _bucket_map(self) -> dict[tuple[int, int], np.ndarray]:
        if self._buckets is None:
            buckets: dict[tuple[int, int], np.ndarray] = {}
            start = self._start
            for flat in np.flatnonzero(np.diff(start)):
                cx, cy = divmod(int(flat), self.cells_per_side)
                buckets[(cx, cy)] = self._order[start[flat] : start[flat + 1]]
            self._buckets = buckets
        return self._buckets

    # ------------------------------------------------------------------
    def _candidate_indices(self, cell: tuple[int, int]) -> np.ndarray:
        """Node indices in the 3x3 cell stencil around ``cell``."""
        cx, cy = cell
        wrap = self.region.boundary is Boundary.TORUS
        buckets = self._bucket_map()
        chunks = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                nx, ny = cx + dx, cy + dy
                if wrap:
                    nx %= self.cells_per_side
                    ny %= self.cells_per_side
                elif not (
                    0 <= nx < self.cells_per_side and 0 <= ny < self.cells_per_side
                ):
                    continue
                bucket = buckets.get((nx, ny))
                if bucket is not None:
                    chunks.append(bucket)
        if not chunks:
            return np.empty(0, dtype=int)
        candidates = np.concatenate(chunks)
        if wrap and self.cells_per_side <= 2:
            # With one or two cells per side the wrapped offsets -1 and
            # +1 alias the same cell, so the stencil revisits cells;
            # deduplicate.  Three or more cells per side make all nine
            # wrapped stencil cells distinct.
            candidates = np.unique(candidates)
        return candidates

    def neighbors_of(self, index: int, radius: float | None = None) -> np.ndarray:
        """Indices of nodes within ``radius`` of node ``index`` (excl. self)."""
        if self._positions is None:
            raise RuntimeError("index not built; call rebuild() first")
        radius = self.tx_range if radius is None else radius
        if radius > self.tx_range:
            raise ValueError(
                f"query radius {radius} exceeds index radius {self.tx_range}"
            )
        candidates = self._candidate_indices(tuple(self._cell_of[index]))
        dist = self.region.distance(
            self._positions[index], self._positions[candidates]
        )
        mask = (dist <= radius) & (candidates != index)
        return candidates[mask]

    def candidate_pairs_raw(self) -> tuple[np.ndarray, np.ndarray]:
        """Raw stencil candidate pairs ``(i, j)``, unfiltered.

        The batched cell-pair sweep shared by :meth:`neighbor_pairs`
        and the incremental engine's validation: within-cell pairs plus
        the four half-stencil neighbor cells of every node's cell,
        expanded CSR-style.  No distance filtering or canonicalization
        happens here; when a wrapped grid has at most two cells per
        side the aliased stencil may emit duplicate and self pairs,
        which downstream filtering must drop.
        """
        if self._positions is None:
            raise RuntimeError("index not built; call rebuild() first")
        n = len(self._positions)
        empty = np.empty(0, dtype=np.int64)
        if n < 2:
            return empty, empty
        m = self.cells_per_side
        wrap = self.region.boundary is Boundary.TORUS
        order = self._order
        start = self._start
        flat_sorted = self._flat[order]
        seq = np.arange(n, dtype=np.int64)

        left_chunks: list[np.ndarray] = []
        right_chunks: list[np.ndarray] = []

        # Within-cell pairs: node at sorted slot p pairs with every
        # later slot of its own cell's contiguous bucket.
        counts = start[flat_sorted + 1] - seq - 1
        if counts.sum():
            left_chunks.append(np.repeat(seq, counts))
            right_chunks.append(_csr_expand(seq + 1, counts))

        # Cross-cell pairs: each node's cell against its half stencil.
        cell_x = flat_sorted // m
        cell_y = flat_sorted - cell_x * m
        for dx, dy in _HALF_STENCIL:
            tx, ty = cell_x + dx, cell_y + dy
            if wrap:
                sources = seq
                tx, ty = tx % m, ty % m
            else:
                inside = (tx >= 0) & (tx < m) & (ty >= 0) & (ty < m)
                if not inside.any():
                    continue
                sources = seq[inside]
                tx, ty = tx[inside], ty[inside]
            target = tx * m + ty
            counts = start[target + 1] - start[target]
            if counts.sum():
                left_chunks.append(np.repeat(sources, counts))
                right_chunks.append(_csr_expand(start[target], counts))

        if not left_chunks:
            return empty, empty
        return (
            order[np.concatenate(left_chunks)],
            order[np.concatenate(right_chunks)],
        )

    def neighbor_pairs(
        self, radius: float | None = None, return_distances: bool = False
    ) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
        """All unordered neighbor pairs as a sorted ``(E, 2)`` edge array.

        Pairs are returned with ``i < j`` and in lexicographic order so
        results are deterministic, directly diffable as edge sets, and
        comparable to the dense adjacency.  With ``return_distances``
        the matching ``(E,)`` distance array rides along (used by the
        incremental engine to seed its candidate cache without a second
        distance pass).

        The computation is batched over *cell pairs*: within-cell pairs
        plus the four half-stencil neighbor cells of every node's cell,
        expanded CSR-style into one candidate array, distance-filtered
        in a single vectorized pass.
        """
        if self._positions is None:
            raise RuntimeError("index not built; call rebuild() first")
        radius = self.tx_range if radius is None else radius
        if radius > self.tx_range:
            raise ValueError(
                f"query radius {radius} exceeds index radius {self.tx_range}"
            )
        n = len(self._positions)
        m = self.cells_per_side
        wrap = self.region.boundary is Boundary.TORUS
        i, j = self.candidate_pairs_raw()
        if not len(i):
            empty = np.empty((0, 2), dtype=np.int64)
            if return_distances:
                return empty, np.empty(0, dtype=float)
            return empty
        dist = self.region.distance(self._positions[i], self._positions[j])
        keep = dist <= radius
        if wrap and m <= 2:
            # Aliased wrapped offsets can pair a cell with itself,
            # producing self-pairs; drop them before canonicalizing.
            keep &= i != j
        i, j = i[keep], j[keep]
        keys = np.minimum(i, j) * n + np.maximum(i, j)
        if not return_distances:
            if wrap and m <= 2:
                # Aliased offsets also revisit the same cell pair, so the
                # same edge can be emitted more than once.
                keys = np.unique(keys)
            else:
                keys.sort()
            return np.column_stack((keys // n, keys % n))
        dist = dist[keep]
        if wrap and m <= 2:
            keys, first = np.unique(keys, return_index=True)
            dist = dist[first]
        else:
            rank = np.argsort(keys, kind="stable")
            keys = keys[rank]
            dist = dist[rank]
        return np.column_stack((keys // n, keys % n)), dist

    def adjacency(self, radius: float | None = None) -> np.ndarray:
        """Dense boolean adjacency reconstructed from the edge set."""
        if self._positions is None:
            raise RuntimeError("index not built; call rebuild() first")
        n = len(self._positions)
        adj = np.zeros((n, n), dtype=bool)
        pairs = self.neighbor_pairs(radius)
        if len(pairs):
            adj[pairs[:, 0], pairs[:, 1]] = True
            adj[pairs[:, 1], pairs[:, 0]] = True
        return adj
