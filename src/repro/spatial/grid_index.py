"""Uniform grid spatial index for neighbor queries.

For ``N`` nodes with transmission range ``r`` in a square of side ``a``,
the dense ``O(N^2)`` distance matrix is exact but wasteful once
``r << a``.  The :class:`UniformGridIndex` bins nodes into cells of side
``>= r`` so that all neighbors of a node lie in its 3x3 cell
neighborhood (torus-aware when the region wraps), bringing expected
query cost down to ``O(density * r^2)`` per node.

The index returns exactly the same neighbor sets as the dense matrix;
tests assert this equivalence property.
"""

from __future__ import annotations

import math

import numpy as np

from .region import Boundary, SquareRegion

__all__ = ["UniformGridIndex"]


class UniformGridIndex:
    """Rebuildable uniform grid over a :class:`SquareRegion`.

    Parameters
    ----------
    region:
        The square region whose metric (torus or Euclidean) governs
        distances.
    tx_range:
        Query radius the index is optimized for.  Queries with a radius
        larger than ``tx_range`` raise, since the 3x3 stencil would miss
        neighbors.
    """

    def __init__(self, region: SquareRegion, tx_range: float) -> None:
        if tx_range <= 0.0:
            raise ValueError(f"tx_range must be positive, got {tx_range}")
        self.region = region
        self.tx_range = tx_range
        # At least one cell; cells no smaller than the query radius.
        self.cells_per_side = max(1, int(math.floor(region.side / tx_range)))
        self.cell_size = region.side / self.cells_per_side
        self._positions: np.ndarray | None = None
        self._cell_of: np.ndarray | None = None
        self._buckets: dict[tuple[int, int], np.ndarray] = {}

    # ------------------------------------------------------------------
    def rebuild(self, positions: np.ndarray) -> None:
        """(Re)index the given positions."""
        pos = np.asarray(positions, dtype=float)
        if pos.ndim != 2 or pos.shape[1] != 2:
            raise ValueError(f"positions must be (N, 2), got shape {pos.shape}")
        self._positions = pos
        cells = np.floor(pos / self.cell_size).astype(int)
        np.clip(cells, 0, self.cells_per_side - 1, out=cells)
        self._cell_of = cells
        self._buckets = {}
        flat = cells[:, 0] * self.cells_per_side + cells[:, 1]
        order = np.argsort(flat, kind="stable")
        sorted_flat = flat[order]
        boundaries = np.flatnonzero(np.diff(sorted_flat)) + 1
        for chunk in np.split(order, boundaries):
            cx, cy = divmod(int(flat[chunk[0]]), self.cells_per_side)
            self._buckets[(cx, cy)] = chunk

    # ------------------------------------------------------------------
    def _candidate_indices(self, cell: tuple[int, int]) -> np.ndarray:
        """Node indices in the 3x3 cell stencil around ``cell``."""
        cx, cy = cell
        wrap = self.region.boundary is Boundary.TORUS
        chunks = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                nx, ny = cx + dx, cy + dy
                if wrap:
                    nx %= self.cells_per_side
                    ny %= self.cells_per_side
                elif not (
                    0 <= nx < self.cells_per_side and 0 <= ny < self.cells_per_side
                ):
                    continue
                bucket = self._buckets.get((nx, ny))
                if bucket is not None:
                    chunks.append(bucket)
        if not chunks:
            return np.empty(0, dtype=int)
        candidates = np.concatenate(chunks)
        if wrap and self.cells_per_side <= 3:
            # Wrapped stencils can revisit the same cell; deduplicate.
            candidates = np.unique(candidates)
        return candidates

    def neighbors_of(self, index: int, radius: float | None = None) -> np.ndarray:
        """Indices of nodes within ``radius`` of node ``index`` (excl. self)."""
        if self._positions is None:
            raise RuntimeError("index not built; call rebuild() first")
        radius = self.tx_range if radius is None else radius
        if radius > self.tx_range:
            raise ValueError(
                f"query radius {radius} exceeds index radius {self.tx_range}"
            )
        candidates = self._candidate_indices(tuple(self._cell_of[index]))
        dist = self.region.distance(
            self._positions[index], self._positions[candidates]
        )
        mask = (dist <= radius) & (candidates != index)
        return candidates[mask]

    def neighbor_pairs(self, radius: float | None = None) -> np.ndarray:
        """All unordered neighbor pairs as an ``(E, 2)`` index array.

        Pairs are returned with ``i < j`` and in lexicographic order so
        results are deterministic and directly comparable to the dense
        adjacency.
        """
        if self._positions is None:
            raise RuntimeError("index not built; call rebuild() first")
        radius = self.tx_range if radius is None else radius
        if radius > self.tx_range:
            raise ValueError(
                f"query radius {radius} exceeds index radius {self.tx_range}"
            )
        pairs = []
        n = len(self._positions)
        for i in range(n):
            neighbors = self.neighbors_of(i, radius)
            higher = neighbors[neighbors > i]
            if len(higher):
                pairs.append(
                    np.column_stack([np.full(len(higher), i), np.sort(higher)])
                )
        if not pairs:
            return np.empty((0, 2), dtype=int)
        return np.concatenate(pairs)

    def adjacency(self, radius: float | None = None) -> np.ndarray:
        """Dense boolean adjacency reconstructed from the index."""
        if self._positions is None:
            raise RuntimeError("index not built; call rebuild() first")
        n = len(self._positions)
        adj = np.zeros((n, n), dtype=bool)
        pairs = self.neighbor_pairs(radius)
        if len(pairs):
            adj[pairs[:, 0], pairs[:, 1]] = True
            adj[pairs[:, 1], pairs[:, 0]] = True
        return adj
