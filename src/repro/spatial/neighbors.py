"""Neighbor-set computation and link-event extraction.

The simulator's core loop needs two operations: compute the unit-disk
adjacency of the current node positions, and diff two consecutive
adjacencies into link *generation* and *break* events (the event stream
that drives HELLO, CLUSTER and ROUTE accounting).  Both are provided
here over either the dense metric or the grid index, chosen by a simple
cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .grid_index import UniformGridIndex
from .region import SquareRegion

__all__ = ["LinkEvents", "compute_adjacency", "diff_adjacency", "degree_counts"]

#: Above this node count the grid index beats the dense matrix when the
#: range is small relative to the side; below it the dense path wins.
_DENSE_NODE_LIMIT = 700


@dataclass(frozen=True)
class LinkEvents:
    """Link changes between two consecutive adjacency snapshots.

    ``generated`` and ``broken`` are ``(E, 2)`` arrays of node index
    pairs with ``i < j``, lexicographically sorted.
    """

    generated: np.ndarray
    broken: np.ndarray

    @property
    def generation_count(self) -> int:
        """Number of links that appeared."""
        return len(self.generated)

    @property
    def break_count(self) -> int:
        """Number of links that disappeared."""
        return len(self.broken)

    @property
    def change_count(self) -> int:
        """Total number of link changes."""
        return self.generation_count + self.break_count


def compute_adjacency(
    region: SquareRegion,
    positions: np.ndarray,
    tx_range: float,
    index: UniformGridIndex | None = None,
) -> np.ndarray:
    """Unit-disk adjacency of ``positions`` under the region metric.

    If ``index`` is given it is rebuilt and used; otherwise the dense
    path is used for small networks and a throwaway grid index for large
    sparse ones.  Either path returns the identical boolean matrix.
    """
    pos = np.asarray(positions, dtype=float)
    if index is not None:
        index.rebuild(pos)
        return index.adjacency(tx_range)
    sparse_enough = tx_range * 4.0 < region.side
    if len(pos) > _DENSE_NODE_LIMIT and sparse_enough:
        scratch = UniformGridIndex(region, tx_range)
        scratch.rebuild(pos)
        return scratch.adjacency(tx_range)
    return region.adjacency(pos, tx_range)


def _pairs_from_mask(mask: np.ndarray) -> np.ndarray:
    """Upper-triangle True entries of a symmetric mask as sorted pairs."""
    upper = np.triu(mask, k=1)
    rows, cols = np.nonzero(upper)
    return np.column_stack([rows, cols])


def diff_adjacency(previous: np.ndarray, current: np.ndarray) -> LinkEvents:
    """Extract link generation/break events between two adjacencies."""
    prev = np.asarray(previous, dtype=bool)
    curr = np.asarray(current, dtype=bool)
    if prev.shape != curr.shape:
        raise ValueError(
            f"adjacency shapes differ: {prev.shape} vs {curr.shape}"
        )
    generated = _pairs_from_mask(curr & ~prev)
    broken = _pairs_from_mask(prev & ~curr)
    return LinkEvents(generated=generated, broken=broken)


def degree_counts(adjacency: np.ndarray) -> np.ndarray:
    """Per-node degree vector of a boolean adjacency matrix."""
    return np.asarray(adjacency, dtype=bool).sum(axis=1)
