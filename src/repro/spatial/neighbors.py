"""Neighbor-set computation and link-event extraction.

The simulator's core loop needs two operations: compute the unit-disk
connectivity of the current node positions, and diff two consecutive
snapshots into link *generation* and *break* events (the event stream
that drives HELLO, CLUSTER and ROUTE accounting).

The canonical connectivity representation is the sorted **edge set** —
an ``(E, 2)`` integer array of pairs with ``i < j`` in lexicographic
order, as produced by :func:`compute_edges` /
:meth:`~repro.spatial.grid_index.UniformGridIndex.neighbor_pairs`.
Edge sets cost ``O(E)`` memory instead of ``O(N^2)`` and diff in
``O(E log E)`` (:func:`diff_edge_sets`).  Dense boolean adjacency
matrices remain available as a derived view (:func:`edges_to_adjacency`,
:func:`compute_adjacency`) for clustering/routing consumers that index
into a matrix.

Whether an edge set is computed through the dense metric or the uniform
grid index is decided by a measured cost model (see
:data:`GRID_CROSSOVER_NODES`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .grid_index import UniformGridIndex
from .region import SquareRegion

__all__ = [
    "GRID_CROSSOVER_NODES",
    "INCREMENTAL_MARGIN_FRACTION",
    "INCREMENTAL_MIN_AMORTIZED_STEPS",
    "MIN_GRID_CELLS_PER_SIDE",
    "LinkEvents",
    "adjacency_to_edges",
    "compute_adjacency",
    "compute_edges",
    "degree_counts",
    "degree_counts_from_edges",
    "diff_adjacency",
    "diff_edge_sets",
    "edges_to_adjacency",
    "select_connectivity_method",
]

#: Node count above which the grid index beats the dense metric for a
#: full edge-set recompute.  Measured with the engine bench harness
#: (``repro-manet bench --crossover``, recorded in ``BENCH_engine.json``;
#: see the README's Performance section): on the reference container
#: (1-core x86-64, NumPy 2.4) the grid's batched cell-pair sweep breaks
#: even with the dense ``O(N^2)`` distance matrix near N=64 at
#: r/a = 0.1, is ~2.5x faster by N=128 and >10x by N=512.  The constant
#: sits at the top of the break-even band so small networks keep the
#: allocation-free dense path.
GRID_CROSSOVER_NODES = 100

#: Below this many grid cells per side the 3x3 stencil spans most of
#: the region, so the grid degenerates into a slower dense scan.
MIN_GRID_CELLS_PER_SIDE = 4

#: Default candidate-cache margin of the incremental engine, as a
#: fraction of ``tx_range``: candidates are cached out to
#: ``(1 + fraction) * tx_range``.  A wider margin amortizes full
#: validations over more steps but inflates the per-step candidate set;
#: 0.5 balances the two at the paper's default velocities (see the
#: README Performance section).
INCREMENTAL_MARGIN_FRACTION = 0.5

#: The incremental engine only pays off if the margin buys at least
#: this many steps between full validations (worst case every pair
#: closes at ``2 * velocity`` per unit time).
INCREMENTAL_MIN_AMORTIZED_STEPS = 4


@dataclass(frozen=True)
class LinkEvents:
    """Link changes between two consecutive connectivity snapshots.

    ``generated`` and ``broken`` are ``(E, 2)`` arrays of node index
    pairs with ``i < j``, lexicographically sorted.
    """

    generated: np.ndarray
    broken: np.ndarray

    @property
    def generation_count(self) -> int:
        """Number of links that appeared."""
        return len(self.generated)

    @property
    def break_count(self) -> int:
        """Number of links that disappeared."""
        return len(self.broken)

    @property
    def change_count(self) -> int:
        """Total number of link changes."""
        return self.generation_count + self.break_count


def select_connectivity_method(
    n_nodes: int,
    tx_range: float,
    side: float,
    velocity: float | None = None,
    dt: float | None = None,
) -> str:
    """Pick ``"dense"``, ``"grid"`` or ``"incremental"`` connectivity.

    The grid wins over the dense metric once the network is large
    (``n_nodes`` above the measured :data:`GRID_CROSSOVER_NODES`) *and*
    sparse enough that the 3x3 stencil prunes most pairs (at least
    :data:`MIN_GRID_CELLS_PER_SIDE` cells per side, i.e.
    ``tx_range * 4 <= side``).

    When the caller also supplies ``velocity`` and ``dt`` (the
    simulation does; one-shot recomputes do not), the incremental
    engine is preferred over the grid whenever temporal coherence pays:
    the *expanded* candidate radius must still be sparse, and the
    per-step displacement bound ``2 * velocity * dt`` must be small
    enough that the candidate margin amortizes a full validation over
    at least :data:`INCREMENTAL_MIN_AMORTIZED_STEPS` steps.  Static
    networks (``velocity == 0``) always qualify.  Without the mobility
    kwargs the historical dense/grid behavior is unchanged.
    """
    sparse_enough = tx_range * MIN_GRID_CELLS_PER_SIDE <= side
    if n_nodes <= GRID_CROSSOVER_NODES or not sparse_enough:
        return "dense"
    if velocity is not None and dt is not None:
        margin = INCREMENTAL_MARGIN_FRACTION * tx_range
        expanded_sparse = (
            (tx_range + margin) * MIN_GRID_CELLS_PER_SIDE <= side
        )
        step_churn = 2.0 * velocity * dt
        if (
            expanded_sparse
            and step_churn * INCREMENTAL_MIN_AMORTIZED_STEPS <= margin
        ):
            return "incremental"
    return "grid"


def adjacency_to_edges(adjacency: np.ndarray) -> np.ndarray:
    """Sorted ``(E, 2)`` edge array of a symmetric boolean adjacency."""
    upper = np.triu(np.asarray(adjacency, dtype=bool), k=1)
    rows, cols = np.nonzero(upper)
    return np.column_stack((rows, cols)).astype(np.int64, copy=False)


def edges_to_adjacency(edges: np.ndarray, n_nodes: int) -> np.ndarray:
    """Dense boolean adjacency matrix of an ``(E, 2)`` edge array."""
    if n_nodes < 0:
        raise ValueError(f"n_nodes must be non-negative, got {n_nodes}")
    adj = np.zeros((n_nodes, n_nodes), dtype=bool)
    edges = _as_edge_array(edges)
    if len(edges):
        adj[edges[:, 0], edges[:, 1]] = True
        adj[edges[:, 1], edges[:, 0]] = True
    return adj


def compute_edges(
    region: SquareRegion,
    positions: np.ndarray,
    tx_range: float,
    index: UniformGridIndex | None = None,
    method: str = "auto",
) -> np.ndarray:
    """Sorted unit-disk edge set of ``positions`` under the region metric.

    If ``index`` is given it is rebuilt and used regardless of
    ``method``; otherwise ``method`` selects the dense metric
    (``"dense"``), a throwaway grid index (``"grid"``), or the measured
    cost model (``"auto"``, the default).  Every path returns the
    identical edge array.
    """
    pos = np.asarray(positions, dtype=float)
    if index is not None:
        index.rebuild(pos)
        return index.neighbor_pairs(tx_range)
    if method == "auto":
        method = select_connectivity_method(len(pos), tx_range, region.side)
    if method == "grid":
        scratch = UniformGridIndex(region, tx_range)
        scratch.rebuild(pos)
        return scratch.neighbor_pairs(tx_range)
    if method != "dense":
        raise ValueError(
            f"method must be 'auto', 'dense' or 'grid', got {method!r}"
        )
    return adjacency_to_edges(region.adjacency(pos, tx_range))


def compute_adjacency(
    region: SquareRegion,
    positions: np.ndarray,
    tx_range: float,
    index: UniformGridIndex | None = None,
) -> np.ndarray:
    """Unit-disk adjacency of ``positions`` under the region metric.

    Compatibility view over :func:`compute_edges`: the same cost model
    picks the dense or grid path, and either path returns the identical
    boolean matrix.
    """
    pos = np.asarray(positions, dtype=float)
    if index is not None:
        index.rebuild(pos)
        return index.adjacency(tx_range)
    method = select_connectivity_method(len(pos), tx_range, region.side)
    if method == "grid":
        return edges_to_adjacency(
            compute_edges(region, pos, tx_range, method="grid"), len(pos)
        )
    return region.adjacency(pos, tx_range)


def _as_edge_array(edges: np.ndarray) -> np.ndarray:
    arr = np.asarray(edges, dtype=np.int64)
    if arr.size == 0:
        return arr.reshape(0, 2)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"edge sets must be (E, 2) arrays, got {arr.shape}")
    return arr


def _edge_keys(edges: np.ndarray) -> np.ndarray:
    """Unique int64 key per edge, monotone in lexicographic pair order."""
    return (edges[:, 0] << np.int64(32)) | edges[:, 1]


def diff_edge_sets(previous: np.ndarray, current: np.ndarray) -> LinkEvents:
    """Extract link events between two sorted ``(E, 2)`` edge sets.

    Both inputs must be unique pairs with ``i < j`` in lexicographic
    order (the canonical form produced by :func:`compute_edges`).  Runs
    in ``O(E log E)`` and returns events identical to
    :func:`diff_adjacency` on the equivalent dense snapshots.
    """
    prev = _as_edge_array(previous)
    curr = _as_edge_array(current)
    prev_keys = _edge_keys(prev)
    curr_keys = _edge_keys(curr)
    generated = curr[~np.isin(curr_keys, prev_keys, assume_unique=True)]
    broken = prev[~np.isin(prev_keys, curr_keys, assume_unique=True)]
    return LinkEvents(generated=generated, broken=broken)


def _pairs_from_mask(mask: np.ndarray) -> np.ndarray:
    """Upper-triangle True entries of a symmetric mask as sorted pairs."""
    upper = np.triu(mask, k=1)
    rows, cols = np.nonzero(upper)
    return np.column_stack([rows, cols])


def diff_adjacency(previous: np.ndarray, current: np.ndarray) -> LinkEvents:
    """Extract link generation/break events between two adjacencies."""
    prev = np.asarray(previous, dtype=bool)
    curr = np.asarray(current, dtype=bool)
    if prev.shape != curr.shape:
        raise ValueError(
            f"adjacency shapes differ: {prev.shape} vs {curr.shape}"
        )
    generated = _pairs_from_mask(curr & ~prev)
    broken = _pairs_from_mask(prev & ~curr)
    return LinkEvents(generated=generated, broken=broken)


def degree_counts(adjacency: np.ndarray) -> np.ndarray:
    """Per-node degree vector of a boolean adjacency matrix."""
    return np.asarray(adjacency, dtype=bool).sum(axis=1)


def degree_counts_from_edges(edges: np.ndarray, n_nodes: int) -> np.ndarray:
    """Per-node degree vector of an ``(E, 2)`` edge array."""
    edges = _as_edge_array(edges)
    return np.bincount(edges.ravel(), minlength=n_nodes)
