"""Bounded simulation regions with torus / reflecting / open boundaries.

The paper's simulations place ``N`` nodes in an ``a x a`` square and use
wrap-around ("if a node hits the border of the square region, it
reappears at the same position in the opposite border and continues
moving without changing its direction" — i.e. a torus).  Reflecting and
open boundaries are provided for the boundary-condition ablation called
out in DESIGN.md.

Positions are ``(N, 2)`` float arrays.  All operations are vectorized.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

__all__ = ["Boundary", "SquareRegion"]


class Boundary(enum.Enum):
    """Boundary handling of a :class:`SquareRegion`."""

    #: Wrap around to the opposite border (the paper's RWP variant).
    TORUS = "torus"
    #: Mirror the offending coordinate and reverse that velocity component.
    REFLECT = "reflect"
    #: Leave positions untouched; nodes may drift outside the square.
    OPEN = "open"


@dataclass(frozen=True)
class SquareRegion:
    """An axis-aligned square ``[0, side] x [0, side]``.

    Parameters
    ----------
    side:
        Border length ``a`` of the square.
    boundary:
        How positions that leave the square are treated, and which
        metric :meth:`distance_matrix` uses (torus regions use the
        wrap-around metric so connectivity is translation invariant).
    """

    side: float
    boundary: Boundary = Boundary.TORUS

    def __post_init__(self) -> None:
        if self.side <= 0.0:
            raise ValueError(f"side must be positive, got {self.side}")
        if not isinstance(self.boundary, Boundary):
            object.__setattr__(self, "boundary", Boundary(self.boundary))

    @property
    def area(self) -> float:
        """Area of the square."""
        return self.side * self.side

    @property
    def diameter(self) -> float:
        """Largest possible separation under this region's metric."""
        if self.boundary is Boundary.TORUS:
            return self.side * math.sqrt(0.5)
        return self.side * math.sqrt(2.0)

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def uniform_positions(self, n: int, rng=None) -> np.ndarray:
        """Draw ``n`` positions uniformly at random inside the square."""
        if n < 0:
            raise ValueError(f"node count must be non-negative, got {n}")
        rng = np.random.default_rng(rng)
        return rng.uniform(0.0, self.side, size=(n, 2))

    def contains(self, positions: np.ndarray) -> np.ndarray:
        """Boolean mask of positions lying inside the square."""
        pos = np.asarray(positions, dtype=float)
        return np.all((pos >= 0.0) & (pos <= self.side), axis=-1)

    # ------------------------------------------------------------------
    # Boundary application
    # ------------------------------------------------------------------
    def apply_boundary(
        self, positions: np.ndarray, velocities: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """Map raw positions back into the square per the boundary rule.

        Returns the corrected positions and (possibly sign-flipped)
        velocities.  Inputs are not modified.
        """
        pos = np.array(positions, dtype=float, copy=True)
        vel = None if velocities is None else np.array(velocities, dtype=float, copy=True)

        if self.boundary is Boundary.TORUS:
            pos = np.mod(pos, self.side)
            # np.mod can round a tiny negative up to exactly `side`,
            # which is outside the canonical [0, side) cell.
            pos[pos >= self.side] = 0.0
        elif self.boundary is Boundary.REFLECT:
            # Reflect possibly multiple times (period 2*side triangle wave).
            period = 2.0 * self.side
            folded = np.mod(pos, period)
            over = folded > self.side
            folded[over] = period - folded[over]
            if vel is not None:
                # A velocity component flips once per boundary crossing;
                # the net sign is that of the triangle wave's slope.
                slope_negative = np.mod(pos, period) > self.side
                vel[slope_negative] *= -1.0
            pos = folded
        # Boundary.OPEN: nothing to do.
        return pos, vel

    # ------------------------------------------------------------------
    # Metric
    # ------------------------------------------------------------------
    def displacement(self, origin: np.ndarray, target: np.ndarray) -> np.ndarray:
        """Shortest displacement vectors ``target - origin`` under the metric."""
        diff = np.asarray(target, dtype=float) - np.asarray(origin, dtype=float)
        if self.boundary is Boundary.TORUS:
            diff = diff - self.side * np.round(diff / self.side)
        return diff

    def distance(self, origin: np.ndarray, target: np.ndarray) -> np.ndarray:
        """Pairwise (elementwise) distances under the region metric."""
        diff = self.displacement(origin, target)
        return np.sqrt(np.sum(diff * diff, axis=-1))

    def distance_matrix(self, positions: np.ndarray) -> np.ndarray:
        """Full ``(N, N)`` distance matrix under the region metric."""
        pos = np.asarray(positions, dtype=float)
        diff = pos[:, None, :] - pos[None, :, :]
        if self.boundary is Boundary.TORUS:
            diff = diff - self.side * np.round(diff / self.side)
        return np.sqrt(np.sum(diff * diff, axis=-1))

    def adjacency(self, positions: np.ndarray, tx_range: float) -> np.ndarray:
        """Boolean symmetric adjacency for a unit-disk graph of ``tx_range``.

        Self-loops are excluded.
        """
        if tx_range < 0.0:
            raise ValueError(f"tx_range must be non-negative, got {tx_range}")
        dist = self.distance_matrix(positions)
        adj = dist <= tx_range
        np.fill_diagonal(adj, False)
        return adj
