"""repro — clustering/routing overhead analysis for clustered MANETs.

A production-grade reproduction of *Analysis of Clustering and Routing
Overhead for Clustered Mobile Ad Hoc Networks* (Xue, Er & Seah,
ICDCS 2006): the paper's closed-form overhead model plus every substrate
it is validated against — mobility models, a time-stepped MANET
simulator, one-hop clustering algorithms with reactive maintenance, and
clustered hybrid / flat baseline routing protocols.

Quick start::

    from repro import NetworkParameters, lid_head_probability, overhead_breakdown

    params = NetworkParameters.from_fractions(
        n_nodes=400, range_fraction=0.15, velocity_fraction=0.05)
    p_head = lid_head_probability(
        params.n_nodes, params.density, params.tx_range)
    print(overhead_breakdown(params, p_head).frequencies)
"""

from .core import (
    MessageSizes,
    NetworkParameters,
    OverheadBreakdown,
    cluster_frequency,
    cluster_overhead,
    expected_cluster_count,
    expected_cluster_size,
    expected_degree,
    expected_head_degree,
    hello_frequency,
    hello_overhead,
    lid_head_probability,
    overhead_breakdown,
    route_frequency,
    route_overhead,
    total_overhead,
)

__version__ = "1.0.0"

__all__ = [
    "MessageSizes",
    "NetworkParameters",
    "OverheadBreakdown",
    "cluster_frequency",
    "cluster_overhead",
    "expected_cluster_count",
    "expected_cluster_size",
    "expected_degree",
    "expected_head_degree",
    "hello_frequency",
    "hello_overhead",
    "lid_head_probability",
    "overhead_breakdown",
    "route_frequency",
    "route_overhead",
    "total_overhead",
    "__version__",
]
