"""MobDHop — mobility-based d-hop clustering (Er & Seah, WCNC 2004).

The authors' own algorithm from the paper's related-work set.  MobDHop
groups nodes whose *relative mobility* is low, growing clusters up to
``d`` hops around locally stable nodes.  The full protocol estimates
relative mobility from successive received-signal-strength samples; on
our simulator the equivalent observable is the change in pairwise
distance between consecutive position snapshots (same information,
minus radio noise — see DESIGN.md substitutions).

Implementation (documented simplification of the original's three
phases, preserving its head-selection criterion and the d-hop growth):

1. **Relative mobility estimation** — for each adjacent pair, the
   variation of their distance across the supplied position snapshots;
   a node's *stability* is the negated mean variation over its
   neighbors (stabler = higher).
2. **Head selection & growth** — nodes are processed from most to
   least stable; an undecided node becomes a head and absorbs all
   undecided nodes within ``d`` hops whose path-wise relative mobility
   stays below ``merge_threshold``.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from .base import ClusteringAlgorithm, ClusterState, Role

__all__ = ["MobDHopClustering", "relative_mobility"]


def relative_mobility(
    snapshots: list[np.ndarray], adjacency: np.ndarray
) -> np.ndarray:
    """Pairwise relative-mobility matrix from position snapshots.

    Entry ``(i, j)`` is the mean absolute change of the ``i``–``j``
    distance across consecutive snapshots (0 for non-adjacent pairs).
    At least two snapshots are required.
    """
    if len(snapshots) < 2:
        raise ValueError("need at least two position snapshots")
    adjacency = np.asarray(adjacency, dtype=bool)
    n = len(adjacency)
    total = np.zeros((n, n))
    previous = None
    for snapshot in snapshots:
        snapshot = np.asarray(snapshot, dtype=float)
        diff = snapshot[:, None, :] - snapshot[None, :, :]
        dist = np.sqrt(np.sum(diff * diff, axis=-1))
        if previous is not None:
            total += np.abs(dist - previous)
        previous = dist
    total /= len(snapshots) - 1
    return np.where(adjacency, total, 0.0)


class MobDHopClustering(ClusteringAlgorithm):
    """Mobility-based variable-diameter (d-hop) clustering.

    Parameters
    ----------
    d:
        Maximum hop radius of a cluster.
    snapshots:
        Recent position snapshots (most recent last) used to estimate
        relative mobility.  When omitted, all pairs are considered
        equally stable and MobDHop degenerates to a d-hop id-based
        scheme (useful for static topologies).
    merge_threshold:
        Maximum acceptable relative mobility along an absorption path;
        ``None`` disables the stability gate.
    """

    name = "mobdhop"

    def __init__(
        self,
        d: int = 2,
        snapshots: list[np.ndarray] | None = None,
        merge_threshold: float | None = None,
    ) -> None:
        if d < 1:
            raise ValueError(f"d must be at least 1, got {d}")
        self.d = d
        self.snapshots = snapshots
        self.merge_threshold = merge_threshold

    def form(self, adjacency: np.ndarray, rng=None) -> ClusterState:
        adjacency = np.asarray(adjacency, dtype=bool)
        n = len(adjacency)
        if self.snapshots is not None:
            mobility = relative_mobility(self.snapshots, adjacency)
            stability = np.where(
                adjacency.any(axis=1),
                -np.array(
                    [
                        mobility[i, adjacency[i]].mean() if adjacency[i].any() else 0.0
                        for i in range(n)
                    ]
                ),
                0.0,
            )
        else:
            mobility = np.zeros((n, n))
            stability = np.zeros(n)
        # Unique processing order: stability major, low id minor.
        order = np.lexsort((np.arange(n), -stability))

        state = ClusterState.unassigned(n)
        for node in order:
            node = int(node)
            if state.roles[node] != Role.UNASSIGNED:
                continue
            state.make_head(node)
            # Absorb undecided nodes within d hops over acceptable links.
            depth = {node: 0}
            queue: deque[int] = deque([node])
            while queue:
                current = queue.popleft()
                if depth[current] >= self.d:
                    continue
                for neighbor in np.flatnonzero(adjacency[current]):
                    neighbor = int(neighbor)
                    if neighbor in depth:
                        continue
                    if state.roles[neighbor] != Role.UNASSIGNED:
                        continue
                    if (
                        self.merge_threshold is not None
                        and mobility[current, neighbor] > self.merge_threshold
                    ):
                        continue
                    depth[neighbor] = depth[current] + 1
                    state.make_member(neighbor, node)
                    queue.append(neighbor)
        return state
