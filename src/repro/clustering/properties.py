"""Validators for the paper's one-hop clustering properties P1 and P2.

Any violation of these properties is exactly what triggers CLUSTER
messages in the maintenance stage, so the validators double as the
simulator's invariant checks: after every delivered link event the
maintained structure must satisfy both properties again.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .base import ClusterState, Role

__all__ = ["PropertyViolations", "check_properties", "assert_valid"]


@dataclass
class PropertyViolations:
    """Violations of P1/P2 found in a cluster state.

    ``adjacent_heads`` lists head pairs violating P1;
    ``unaffiliated`` lists nodes with no cluster (P2);
    ``detached_members`` lists members whose head is not a neighbor (P2);
    ``dangling_members`` lists members affiliated to a non-head (P2).
    """

    adjacent_heads: list[tuple[int, int]] = field(default_factory=list)
    unaffiliated: list[int] = field(default_factory=list)
    detached_members: list[int] = field(default_factory=list)
    dangling_members: list[int] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no violations were found."""
        return not (
            self.adjacent_heads
            or self.unaffiliated
            or self.detached_members
            or self.dangling_members
        )

    def describe(self) -> str:
        """Human-readable summary (used in assertion messages)."""
        if self.ok:
            return "cluster structure satisfies P1 and P2"
        parts = []
        if self.adjacent_heads:
            parts.append(f"P1: adjacent head pairs {self.adjacent_heads[:5]}")
        if self.unaffiliated:
            parts.append(f"P2: unaffiliated nodes {self.unaffiliated[:5]}")
        if self.detached_members:
            parts.append(f"P2: detached members {self.detached_members[:5]}")
        if self.dangling_members:
            parts.append(f"P2: members of non-heads {self.dangling_members[:5]}")
        return "; ".join(parts)


def check_properties(
    state: ClusterState, adjacency: np.ndarray
) -> PropertyViolations:
    """Check P1 and P2 of ``state`` against ``adjacency``."""
    adjacency = np.asarray(adjacency, dtype=bool)
    n = state.n_nodes
    if adjacency.shape != (n, n):
        raise ValueError(
            f"adjacency shape {adjacency.shape} does not match {n} nodes"
        )
    violations = PropertyViolations()

    heads = state.heads()
    head_adjacency = adjacency[np.ix_(heads, heads)]
    for i, j in zip(*np.nonzero(np.triu(head_adjacency, k=1))):
        violations.adjacent_heads.append((int(heads[i]), int(heads[j])))

    for node in range(n):
        role = state.roles[node]
        head = state.head_of[node]
        if role == Role.UNASSIGNED or head < 0:
            violations.unaffiliated.append(node)
            continue
        if role == Role.MEMBER:
            if state.roles[head] != Role.HEAD:
                violations.dangling_members.append(node)
            elif not adjacency[node, head]:
                violations.detached_members.append(node)
        elif role == Role.HEAD and head != node:
            violations.dangling_members.append(node)
    return violations


def assert_valid(state: ClusterState, adjacency: np.ndarray) -> None:
    """Raise ``AssertionError`` when the structure violates P1 or P2."""
    violations = check_properties(state, adjacency)
    if not violations.ok:
        raise AssertionError(violations.describe())
