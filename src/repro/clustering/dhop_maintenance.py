"""Reactive maintenance for d-hop clusters (MobDHop / Max-Min style).

The paper's analysis is strictly one-hop, but its related-work set
(MobDHop [18], Max-Min [19]) and the authors' companion overhead study
[16] concern *d-hop* clusters, where a member may sit up to ``d`` hops
from its head along intra-cluster paths.  This protocol maintains that
generalized property reactively:

* **P2(d)** — every member has a path of length ≤ ``d`` to its head
  using only nodes of its own cluster;
* heads are only demoted when their cluster empties into another
  (d-hop structures tolerate nearby heads, so P1 is *not* enforced —
  matching MobDHop's merge-threshold semantics rather than LID/LCC).

Repair rule on a link break: the orphaned member (and transitively its
dependants, whose paths ran through it) re-affiliate — each joins the
adjacent cluster that can host it within ``d`` hops, or becomes a new
head.  Each re-affiliation costs one CLUSTER message, the same
accounting as the one-hop protocol, so the d=1 vs d>1 maintenance
traffic is directly comparable.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..obs.attribution import CAUSE_REAFFILIATION, attributed
from ..sim.engine import Protocol, Simulation
from .base import ClusteringAlgorithm, ClusterState, Role

__all__ = ["DHopClusterMaintenanceProtocol"]


class DHopClusterMaintenanceProtocol(Protocol):
    """Maintains P2(d) for a d-hop clustering algorithm.

    Parameters
    ----------
    algorithm:
        The d-hop formation algorithm (e.g.
        :class:`~repro.clustering.mobdhop.MobDHopClustering` or
        :class:`~repro.clustering.maxmin.MaxMinDCluster`).
    d:
        The hop bound members must keep to their head.
    """

    name = "dhop-cluster-maintenance"

    def __init__(self, algorithm: ClusteringAlgorithm, d: int) -> None:
        if d < 1:
            raise ValueError(f"d must be at least 1, got {d}")
        self.algorithm = algorithm
        self.d = d
        self.state: ClusterState | None = None

    # ------------------------------------------------------------------
    def on_attach(self, sim: Simulation) -> None:
        self.state = self.algorithm.form(sim.adjacency)

    # ------------------------------------------------------------------
    # Distance bookkeeping
    # ------------------------------------------------------------------
    def _cluster_depths(self, sim: Simulation, head: int) -> dict[int, int]:
        """BFS depths from ``head`` over its own cluster's subgraph."""
        state = self.state
        members = set(int(x) for x in state.cluster_nodes(head))
        depths = {head: 0}
        queue: deque[int] = deque([head])
        while queue:
            current = queue.popleft()
            if depths[current] >= self.d:
                continue
            for neighbor in np.flatnonzero(sim.adjacency[current]):
                neighbor = int(neighbor)
                if neighbor in members and neighbor not in depths:
                    depths[neighbor] = depths[current] + 1
                    queue.append(neighbor)
        return depths

    def _find_orphans(self, sim: Simulation, head: int) -> list[int]:
        """Members of ``head``'s cluster whose P2(d) no longer holds."""
        depths = self._cluster_depths(sim, head)
        return [
            int(node)
            for node in self.state.cluster_nodes(head)
            if int(node) not in depths
        ]

    # ------------------------------------------------------------------
    # Repair
    # ------------------------------------------------------------------
    def _send_cluster_message(self, sim: Simulation) -> None:
        sim.stats.record("cluster", 1, sim.params.messages.p_cluster)

    def _admitting_cluster(self, sim: Simulation, node: int) -> int | None:
        """A head whose cluster can host ``node`` within ``d`` hops.

        ``node`` qualifies for a cluster when it neighbors one of its
        nodes at depth ≤ d-1.  Ties resolve to the largest such depth
        margin, then the lowest head id (deterministic).
        """
        state = self.state
        best: tuple[int, int] | None = None  # (depth of contact, head)
        for neighbor in np.flatnonzero(sim.adjacency[node]):
            neighbor = int(neighbor)
            head = int(state.head_of[neighbor])
            if head < 0 or head == node:
                continue
            depths = self._cluster_depths(sim, head)
            contact_depth = depths.get(neighbor)
            if contact_depth is None or contact_depth + 1 > self.d:
                continue
            key = (contact_depth, head)
            if best is None or key < best:
                best = key
        return None if best is None else best[1]

    def _reaffiliate(self, sim: Simulation, node: int, time: float) -> None:
        host = self._admitting_cluster(sim, node)
        if host is not None:
            self.state.make_member(node, host)
        else:
            self.state.make_head(node)
        with attributed(
            sim,
            CAUSE_REAFFILIATION,
            node=node,
            cluster=int(node if host is None else host),
        ):
            self._send_cluster_message(sim)
        if sim.tracer.enabled:
            became_head = host is None
            sim.tracer.emit(
                "cluster_reaffiliation",
                time,
                sim=sim.sim_id,
                node=int(node),
                head=int(node if became_head else host),
                role="head" if became_head else "member",
            )
            if became_head:
                sim.tracer.emit(
                    "head_change",
                    time,
                    sim=sim.sim_id,
                    node=int(node),
                    kind="elect",
                )

    def _repair_cluster(self, sim: Simulation, head: int, time: float) -> None:
        """Re-home every orphan of ``head``'s cluster, deterministically."""
        state = self.state
        orphans = self._find_orphans(sim, head)
        for node in sorted(orphans):
            # The node may have been adopted while repairing a previous
            # orphan (it can ride along a re-homed neighbor's cluster).
            if state.head_of[node] == head:
                depths = self._cluster_depths(sim, head)
                if node in depths:
                    continue
                self._reaffiliate(sim, node, time)
        # A head whose cluster fully drained stays a singleton head —
        # legal in the d-hop model (no P1), no message needed.

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def on_link_down(self, sim: Simulation, u: int, v: int, time: float) -> None:
        state = self.state
        if state.head_of[u] != state.head_of[v]:
            return
        head = int(state.head_of[u])
        if head < 0:
            return
        self._repair_cluster(sim, head, time)

    # Link generations never violate P2(d); nothing to do.

    # ------------------------------------------------------------------
    # Introspection and invariants
    # ------------------------------------------------------------------
    def head_ratio(self) -> float:
        """Current measured cluster-head ratio."""
        return self.state.head_ratio()

    def cluster_count(self) -> int:
        """Current number of clusters."""
        return self.state.cluster_count()

    def violations(self, sim: Simulation) -> list[int]:
        """Nodes currently violating P2(d); empty when healthy."""
        broken: list[int] = []
        for head in self.state.heads():
            broken.extend(self._find_orphans(sim, int(head)))
        unassigned = np.flatnonzero(self.state.head_of < 0)
        broken.extend(int(x) for x in unassigned)
        return broken
