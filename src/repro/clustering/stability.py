"""Cluster stability metrics.

The LCC principle the paper's maintenance model follows exists because
cluster-head churn is the dominant hidden cost of clustering: every
head change cascades into CLUSTER messages and route-update rounds.
This module measures stability directly:

* **head tenure** — how long a node holds the head role once elected;
* **affiliation tenure** — how long a member stays with one head;
* **role/affiliation change rates** — per node per unit time.

:class:`StabilityTracker` is a passive protocol observing the
maintenance protocol's state after every step; algorithms can then be
ranked by the stability of the structures they maintain (the classic
comparison of the clustering literature).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..sim.engine import Protocol, Simulation
from .base import Role
from .maintenance import ClusterMaintenanceProtocol

__all__ = ["StabilitySummary", "StabilityTracker"]


@dataclass(frozen=True)
class StabilitySummary:
    """Aggregate stability of one run."""

    observed_time: float
    head_changes: int
    affiliation_changes: int
    mean_head_tenure: float
    mean_affiliation_tenure: float
    head_change_rate: float
    affiliation_change_rate: float


@dataclass
class _Tenures:
    """Completed and open tenure bookkeeping for one attribute."""

    completed: list[float] = field(default_factory=list)
    started_at: dict[int, float] = field(default_factory=dict)

    def open_tenure(self, node: int, time: float) -> None:
        self.started_at.setdefault(node, time)

    def close_tenure(self, node: int, time: float) -> None:
        start = self.started_at.pop(node, None)
        if start is not None:
            self.completed.append(time - start)

    def mean(self, now: float) -> float:
        """Mean tenure, counting still-open tenures at their current age.

        Including open tenures avoids the survivorship bias of very
        stable structures (whose tenures never complete).
        """
        ages = list(self.completed) + [
            now - start for start in self.started_at.values()
        ]
        if not ages:
            return float("nan")
        return float(np.mean(ages))


class StabilityTracker(Protocol):
    """Observes a maintenance protocol and scores structural stability."""

    name = "stability-tracker"

    def __init__(self, maintenance: ClusterMaintenanceProtocol) -> None:
        self.maintenance = maintenance
        self._previous_roles: np.ndarray | None = None
        self._previous_heads: np.ndarray | None = None
        self._start_time: float | None = None
        self._last_time: float = 0.0
        self.head_changes = 0
        self.affiliation_changes = 0
        self._head_tenures = _Tenures()
        self._affiliation_tenures = _Tenures()

    def on_attach(self, sim: Simulation) -> None:
        state = self.maintenance.state
        if state is None:
            raise RuntimeError(
                "StabilityTracker must be attached after the maintenance "
                "protocol has formed clusters"
            )
        self._previous_roles = state.roles.copy()
        self._previous_heads = state.head_of.copy()
        self._start_time = sim.time
        self._last_time = sim.time
        for node in range(state.n_nodes):
            if state.roles[node] == Role.HEAD:
                self._head_tenures.open_tenure(node, sim.time)
            self._affiliation_tenures.open_tenure(node, sim.time)

    def on_step_end(self, sim: Simulation, time: float) -> None:
        state = self.maintenance.state
        roles = state.roles
        heads = state.head_of
        role_changed = roles != self._previous_roles
        head_changed = heads != self._previous_heads

        for node in np.flatnonzero(role_changed):
            node = int(node)
            if self._previous_roles[node] == Role.HEAD:
                self._head_tenures.close_tenure(node, time)
                self.head_changes += 1
            if roles[node] == Role.HEAD:
                self._head_tenures.open_tenure(node, time)

        for node in np.flatnonzero(head_changed):
            node = int(node)
            self._affiliation_tenures.close_tenure(node, time)
            self._affiliation_tenures.open_tenure(node, time)
            self.affiliation_changes += 1

        self._previous_roles = roles.copy()
        self._previous_heads = heads.copy()
        self._last_time = time

    # ------------------------------------------------------------------
    def summary(self) -> StabilitySummary:
        """Aggregate the run so far."""
        if self._start_time is None:
            raise RuntimeError("tracker was never attached")
        observed = self._last_time - self._start_time
        n = len(self._previous_roles)
        per_node_time = max(observed, 1e-12) * n
        return StabilitySummary(
            observed_time=observed,
            head_changes=self.head_changes,
            affiliation_changes=self.affiliation_changes,
            mean_head_tenure=self._head_tenures.mean(self._last_time),
            mean_affiliation_tenure=self._affiliation_tenures.mean(
                self._last_time
            ),
            head_change_rate=self.head_changes / per_node_time,
            affiliation_change_rate=self.affiliation_changes / per_node_time,
        )
