"""Cluster stability metrics.

The LCC principle the paper's maintenance model follows exists because
cluster-head churn is the dominant hidden cost of clustering: every
head change cascades into CLUSTER messages and route-update rounds.
This module measures stability directly:

* **head tenure** — how long a node holds the head role once elected;
* **affiliation tenure** — how long a member stays with one head;
* **role/affiliation change rates** — per node per unit time.

:class:`StabilityTracker` is a passive protocol observing the
maintenance protocol's state after every step; algorithms can then be
ranked by the stability of the structures they maintain (the classic
comparison of the clustering literature).

:class:`ClusterDynamicsCollector` turns the same observations into a
*windowed time series streamed into the trace*: one ``cluster_window``
record per window (cluster count, head ratio, head-change and
reaffiliation deltas, gateway churn, mean head tenure, cluster sizes
and mean cluster diameter) plus one ``gateway_change`` record per node
that gained or lost gateway status at a window boundary.  Window deltas
are differences of the maintenance protocol's unconditional running
counters — the ones incremented at the exact code points where the
corresponding trace events are emitted — so summing the series
reconciles with trace event counts *by construction* (the same
guarantee the message-total reconciliation gives ``msg_tx``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..sim.engine import Protocol, Simulation
from .base import Role
from .maintenance import ClusterMaintenanceProtocol

__all__ = [
    "ClusterDynamicsCollector",
    "StabilitySummary",
    "StabilityTracker",
    "attach_cluster_dynamics",
]


@dataclass(frozen=True)
class StabilitySummary:
    """Aggregate stability of one run."""

    observed_time: float
    head_changes: int
    affiliation_changes: int
    mean_head_tenure: float
    mean_affiliation_tenure: float
    head_change_rate: float
    affiliation_change_rate: float


@dataclass
class _Tenures:
    """Completed and open tenure bookkeeping for one attribute."""

    completed: list[float] = field(default_factory=list)
    started_at: dict[int, float] = field(default_factory=dict)

    def open_tenure(self, node: int, time: float) -> None:
        self.started_at.setdefault(node, time)

    def close_tenure(self, node: int, time: float) -> None:
        start = self.started_at.pop(node, None)
        if start is not None:
            self.completed.append(time - start)

    def mean(self, now: float) -> float:
        """Mean tenure, counting still-open tenures at their current age.

        Including open tenures avoids the survivorship bias of very
        stable structures (whose tenures never complete).
        """
        ages = list(self.completed) + [
            now - start for start in self.started_at.values()
        ]
        if not ages:
            return float("nan")
        return float(np.mean(ages))


class StabilityTracker(Protocol):
    """Observes a maintenance protocol and scores structural stability."""

    name = "stability-tracker"

    def __init__(self, maintenance: ClusterMaintenanceProtocol) -> None:
        self.maintenance = maintenance
        self._previous_roles: np.ndarray | None = None
        self._previous_heads: np.ndarray | None = None
        self._start_time: float | None = None
        self._last_time: float = 0.0
        self.head_changes = 0
        self.affiliation_changes = 0
        self._head_tenures = _Tenures()
        self._affiliation_tenures = _Tenures()

    def on_attach(self, sim: Simulation) -> None:
        state = self.maintenance.state
        if state is None:
            raise RuntimeError(
                "StabilityTracker must be attached after the maintenance "
                "protocol has formed clusters"
            )
        self._previous_roles = state.roles.copy()
        self._previous_heads = state.head_of.copy()
        self._start_time = sim.time
        self._last_time = sim.time
        for node in range(state.n_nodes):
            if state.roles[node] == Role.HEAD:
                self._head_tenures.open_tenure(node, sim.time)
            self._affiliation_tenures.open_tenure(node, sim.time)

    def on_step_end(self, sim: Simulation, time: float) -> None:
        state = self.maintenance.state
        roles = state.roles
        heads = state.head_of
        role_changed = roles != self._previous_roles
        head_changed = heads != self._previous_heads

        for node in np.flatnonzero(role_changed):
            node = int(node)
            if self._previous_roles[node] == Role.HEAD:
                self._head_tenures.close_tenure(node, time)
                self.head_changes += 1
            if roles[node] == Role.HEAD:
                self._head_tenures.open_tenure(node, time)

        for node in np.flatnonzero(head_changed):
            node = int(node)
            self._affiliation_tenures.close_tenure(node, time)
            self._affiliation_tenures.open_tenure(node, time)
            self.affiliation_changes += 1

        self._previous_roles = roles.copy()
        self._previous_heads = heads.copy()
        self._last_time = time

    # ------------------------------------------------------------------
    def summary(self) -> StabilitySummary:
        """Aggregate the run so far."""
        if self._start_time is None:
            raise RuntimeError("tracker was never attached")
        observed = self._last_time - self._start_time
        n = len(self._previous_roles)
        per_node_time = max(observed, 1e-12) * n
        return StabilitySummary(
            observed_time=observed,
            head_changes=self.head_changes,
            affiliation_changes=self.affiliation_changes,
            mean_head_tenure=self._head_tenures.mean(self._last_time),
            mean_affiliation_tenure=self._affiliation_tenures.mean(
                self._last_time
            ),
            head_change_rate=self.head_changes / per_node_time,
            affiliation_change_rate=self.affiliation_changes / per_node_time,
        )


class ClusterDynamicsCollector(Protocol):
    """Streams a windowed cluster-topology time series into the trace.

    Attach after the maintenance protocol and *before stepping starts*
    (e.g. via :func:`attach_cluster_dynamics`) — the reconciliation
    guarantee (window sums == trace event counts) holds only when the
    collector observes the run from its first step.

    Parameters
    ----------
    maintenance:
        The maintenance protocol whose structure is observed.
    window:
        Window length in simulated time units.  Each full window — plus
        one final partial window flushed by ``on_run_end`` — produces a
        ``cluster_window`` trace record.
    """

    name = "cluster-dynamics"

    def __init__(
        self,
        maintenance: ClusterMaintenanceProtocol,
        window: float = 1.0,
    ) -> None:
        if window <= 0.0:
            raise ValueError(f"window must be positive, got {window}")
        self.maintenance = maintenance
        self.window = float(window)
        self.windows_emitted = 0
        self._window_start: float = 0.0
        self._head_changes_seen = 0
        self._reaffiliations_seen = 0
        self._gateways: frozenset[int] = frozenset()
        self._head_tenures = _Tenures()
        self._final_flushed = False

    # ------------------------------------------------------------------
    def _gateway_set(self, sim: Simulation) -> frozenset[int]:
        """Current gateways: members with a cross-cluster link.

        Matches :func:`repro.routing.inter_cluster.is_gateway`, but
        computed for all nodes at once from the live edge set.
        """
        state = self.maintenance.state
        edges = sim.edges
        if len(edges) == 0:
            return frozenset()
        head_of = state.head_of
        cross = head_of[edges[:, 0]] != head_of[edges[:, 1]]
        endpoints = edges[cross].ravel()
        members = endpoints[state.roles[endpoints] == Role.MEMBER]
        return frozenset(int(n) for n in np.unique(members))

    def _mean_diameter(self, sim: Simulation) -> float:
        """Mean over clusters of the max intra-cluster node distance."""
        state = self.maintenance.state
        positions = sim.positions
        diameters = []
        for head in state.heads():
            nodes = np.flatnonzero(state.head_of == int(head))
            if len(nodes) < 2:
                diameters.append(0.0)
                continue
            distances = sim.region.distance_matrix(positions[nodes])
            diameters.append(float(distances.max()))
        if not diameters:
            return 0.0
        return float(np.mean(diameters))

    def _on_change(self, sim: Simulation, node: int, time: float) -> None:
        """Maintenance change listener: track head-tenure boundaries."""
        if self.maintenance.state.roles[node] == Role.HEAD:
            self._head_tenures.open_tenure(int(node), time)
        else:
            self._head_tenures.close_tenure(int(node), time)

    # ------------------------------------------------------------------
    def on_attach(self, sim: Simulation) -> None:
        state = self.maintenance.state
        if state is None:
            raise RuntimeError(
                "ClusterDynamicsCollector must be attached after the "
                "maintenance protocol has formed clusters"
            )
        self.maintenance.add_change_listener(self._on_change)
        self._window_start = sim.time
        self._head_changes_seen = self.maintenance.head_changes_total
        self._reaffiliations_seen = self.maintenance.reaffiliations_total
        self._gateways = self._gateway_set(sim)
        for head in state.heads():
            self._head_tenures.open_tenure(int(head), sim.time)

    def _flush(self, sim: Simulation, time: float, final: bool) -> None:
        state = self.maintenance.state
        gateways = self._gateway_set(sim)
        added = sorted(gateways - self._gateways)
        dropped = sorted(self._gateways - gateways)
        tracer = sim.tracer
        for node in added:
            tracer.emit(
                "gateway_change", time, sim=sim.sim_id, node=node, kind="add"
            )
        for node in dropped:
            tracer.emit(
                "gateway_change", time, sim=sim.sim_id, node=node, kind="drop"
            )
        head_changes = self.maintenance.head_changes_total
        reaffiliations = self.maintenance.reaffiliations_total
        sizes = state.cluster_sizes()
        tracer.emit(
            "cluster_window",
            time,
            sim=sim.sim_id,
            window=self.windows_emitted,
            window_start=self._window_start,
            final=final,
            clusters=state.cluster_count(),
            head_ratio=state.head_ratio(),
            head_changes=head_changes - self._head_changes_seen,
            reaffiliations=reaffiliations - self._reaffiliations_seen,
            gateways=len(gateways),
            gateway_adds=len(added),
            gateway_drops=len(dropped),
            mean_head_tenure=self._head_tenures.mean(time),
            mean_size=float(np.mean(sizes)) if len(sizes) else 0.0,
            max_size=int(sizes.max()) if len(sizes) else 0,
            mean_diameter=self._mean_diameter(sim),
        )
        self.windows_emitted += 1
        self._window_start = time
        self._head_changes_seen = head_changes
        self._reaffiliations_seen = reaffiliations
        self._gateways = gateways

    def on_step_end(self, sim: Simulation, time: float) -> None:
        if time - self._window_start >= self.window - 1e-9:
            self._flush(sim, time, final=False)

    def on_run_end(self, sim: Simulation, time: float) -> None:
        # Always flush the final (possibly partial, possibly empty)
        # window: its deltas carry whatever happened since the last
        # boundary, which is what makes the series sums exact.
        if not self._final_flushed:
            self._flush(sim, time, final=True)
            self._final_flushed = True


def attach_cluster_dynamics(
    sim: Simulation,
    maintenance: ClusterMaintenanceProtocol | None,
    window: float = 1.0,
) -> ClusterDynamicsCollector | None:
    """Attach a dynamics collector when the simulation is traced.

    Mirrors :func:`repro.obs.health.attach_run_health`: a no-op (returns
    ``None``) when there is no maintenance protocol or the tracer is
    disabled, so untraced runs pay nothing.
    """
    if maintenance is None or not sim.tracer.enabled:
        return None
    collector = ClusterDynamicsCollector(maintenance, window=window)
    sim.attach(collector)
    return collector
