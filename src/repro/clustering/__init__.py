"""Clustering algorithms and reactive one-hop cluster maintenance."""

from .base import ClusteringAlgorithm, ClusterState, Role, sequential_formation
from .properties import PropertyViolations, assert_valid, check_properties
from .lid import LowestIdClustering
from .hcc import HighestConnectivityClustering
from .dmac import DmacClustering
from .maxmin import MaxMinDCluster
from .lca import LinkedClusterArchitecture
from .mobdhop import MobDHopClustering, relative_mobility
from .maintenance import ClusterMaintenanceProtocol
from .dhop_maintenance import DHopClusterMaintenanceProtocol
from .stability import (
    ClusterDynamicsCollector,
    StabilitySummary,
    StabilityTracker,
    attach_cluster_dynamics,
)

__all__ = [
    "ClusteringAlgorithm",
    "ClusterState",
    "Role",
    "sequential_formation",
    "PropertyViolations",
    "assert_valid",
    "check_properties",
    "LowestIdClustering",
    "HighestConnectivityClustering",
    "DmacClustering",
    "MaxMinDCluster",
    "LinkedClusterArchitecture",
    "MobDHopClustering",
    "relative_mobility",
    "ClusterMaintenanceProtocol",
    "DHopClusterMaintenanceProtocol",
    "ClusterDynamicsCollector",
    "StabilitySummary",
    "attach_cluster_dynamics",
    "StabilityTracker",
]
