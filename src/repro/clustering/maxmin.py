"""Max-Min d-cluster formation (Amis, Prakash, Vuong & Huynh, INFOCOM 2000).

A *d*-hop generalization from the paper's related-work set: cluster
members may be up to ``d`` hops from their head.  The algorithm runs
``2d`` synchronous flooding rounds:

1. **Floodmax** (``d`` rounds): every node repeatedly adopts the largest
   node id heard in its closed neighborhood.
2. **Floodmin** (``d`` rounds): starting from the floodmax outcome,
   every node repeatedly adopts the *smallest* value heard.

Head election then follows the three original rules, evaluated in
order:

* Rule 1 — a node that receives its own id back in floodmin is a head;
* Rule 2 — otherwise, if some id appears in both the node's floodmax
  and floodmin round logs (a *node pair*), the node elects the minimum
  such id;
* Rule 3 — otherwise it elects the maximum id seen during floodmax.

Each non-head finally affiliates to the elected head's cluster; since
elected heads are at most ``d`` hops away, affiliation follows a BFS
tree toward the nearest node already in the target cluster.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from .base import ClusteringAlgorithm, ClusterState, Role

__all__ = ["MaxMinDCluster"]


class MaxMinDCluster(ClusteringAlgorithm):
    """Max-Min heuristic for d-hop dominating-set clustering.

    Parameters
    ----------
    d:
        Maximum hop distance between a member and its cluster-head.
    """

    name = "maxmin"

    def __init__(self, d: int = 2) -> None:
        if d < 1:
            raise ValueError(f"d must be at least 1, got {d}")
        self.d = d

    def form(self, adjacency: np.ndarray, rng=None) -> ClusterState:
        adjacency = np.asarray(adjacency, dtype=bool)
        n = len(adjacency)
        closed = adjacency | np.eye(n, dtype=bool)
        ids = np.arange(n)

        # Floodmax: d synchronous rounds, logging each round's values.
        value = ids.astype(np.int64)
        max_log = [value.copy()]
        for _ in range(self.d):
            value = np.array([value[closed[i]].max() for i in range(n)])
            max_log.append(value.copy())

        # Floodmin: d more rounds from the floodmax outcome.
        min_log = [value.copy()]
        for _ in range(self.d):
            value = np.array([value[closed[i]].min() for i in range(n)])
            min_log.append(value.copy())

        # Election rules.
        elected = np.empty(n, dtype=np.int64)
        for i in range(n):
            seen_max = {int(roundvals[i]) for roundvals in max_log[1:]}
            seen_min = {int(roundvals[i]) for roundvals in min_log[1:]}
            if i in seen_min:
                elected[i] = i  # Rule 1
                continue
            pairs = seen_max & seen_min
            if pairs:
                elected[i] = min(pairs)  # Rule 2
            else:
                elected[i] = max(seen_max)  # Rule 3

        # Every elected id declares itself a head (it may not have
        # elected itself — the original algorithm converts such nodes,
        # since other nodes depend on them).
        state = ClusterState.unassigned(n)
        heads = set(int(h) for h in np.unique(elected)) | {
            i for i in range(n) if elected[i] == i
        }
        for head in heads:
            state.make_head(head)

        # Affiliate the rest by BFS from all heads simultaneously so
        # each node joins its *nearest* head (ties by smaller head id),
        # guaranteeing the d-hop bound on connected components.
        owner = np.full(n, -1, dtype=np.int64)
        distance = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
        queue: deque[int] = deque()
        for head in sorted(heads):
            owner[head] = head
            distance[head] = 0
            queue.append(head)
        while queue:
            current = queue.popleft()
            for neighbor in np.flatnonzero(adjacency[current]):
                neighbor = int(neighbor)
                if owner[neighbor] < 0:
                    owner[neighbor] = owner[current]
                    distance[neighbor] = distance[current] + 1
                    queue.append(neighbor)

        for node in range(n):
            if state.roles[node] == Role.HEAD:
                continue
            if owner[node] >= 0:
                state.make_member(node, int(owner[node]))
            else:  # isolated component with no head (cannot happen: every
                # component elects at least one head via Rule 1/3 ids)
                state.make_head(node)  # pragma: no cover - defensive
        return state
