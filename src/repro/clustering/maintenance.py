"""Reactive one-hop cluster maintenance (LCC-style).

The paper's CLUSTER overhead analysis assumes *reactive* maintenance:
CLUSTER messages are transmitted only when the one-hop properties P1/P2
are violated by a link change, and — per the Least Clusterhead Change
(LCC) principle — the structure is repaired with as few role changes as
possible.  The two triggering events (Section 3.5.2):

* **Link break between a member and its own head** — the member joins a
  neighboring head if one exists (1 CLUSTER message) or becomes a head
  itself (1 CLUSTER message).
* **Link generation between two heads** (P1 violation) — the
  lower-priority head resigns and re-affiliates (1 CLUSTER message) and
  each of its former members re-affiliates (1 CLUSTER message each),
  i.e. ``m`` messages for a cluster of size ``m``, matching Eqn (10).

All other link events leave the structure untouched.  Priorities come
from the wrapped :class:`~repro.clustering.base.ClusteringAlgorithm`
(LID: lowest id; HCC: highest degree; DMAC: weight), so one protocol
body implements maintenance for the whole one-hop family.

The protocol keeps the structure valid (P1 and P2) after *every*
delivered event — the test suite asserts this invariant continuously.

When tracing is on, each repair runs inside a causal **span** (see
:mod:`repro.obs.spans`): ``repair:member-break`` for the P2 case,
``repair:head-merge`` for the P1 case, with one ``reaffiliate`` child
span per re-homed node and a ``span_link`` (``kind="cascade"``) from
the merge to every reaffiliation it forced.  The CLUSTER ``msg_tx``
events those repairs generate carry the handler's span id, which is
what lets a trace attribute overhead bursts to the maintenance events
that caused them.  The protocol also keeps unconditional running
counters (:attr:`head_changes_total`, :attr:`reaffiliations_total`)
incremented at exactly the points where the trace events are emitted,
so the cluster-dynamics collector's window sums reconcile with trace
event counts by construction.
"""

from __future__ import annotations

import numpy as np

from ..obs.attribution import (
    CAUSE_CRASH_RECOVERY,
    CAUSE_HEAD_ADJACENCY_REPAIR,
    CAUSE_HEAD_MERGE_CASCADE,
    CAUSE_REAFFILIATION,
    attributed,
)
from ..sim.engine import Protocol, Simulation
from .base import ClusteringAlgorithm, ClusterState, Role

__all__ = ["ClusterMaintenanceProtocol"]


class ClusterMaintenanceProtocol(Protocol):
    """Drives a one-hop clustering algorithm inside a simulation.

    Parameters
    ----------
    algorithm:
        The clustering algorithm supplying formation and priorities.
    dynamic_priority:
        When true, the priority vector is recomputed from the *current*
        topology before each contention decision.  Required for faithful
        HCC (whose priority is the live degree); a no-op for LID and
        DMAC whose priorities are topology-independent.
    """

    name = "cluster-maintenance"

    def __init__(
        self,
        algorithm: ClusteringAlgorithm,
        dynamic_priority: bool = False,
    ) -> None:
        self.algorithm = algorithm
        self.dynamic_priority = dynamic_priority
        self.state: ClusterState | None = None
        self._priority: np.ndarray | None = None
        self._change_listeners: list = []
        #: Running count of head-role changes (elections + resignations)
        #: since attach.  Incremented unconditionally at the exact
        #: points where ``head_change`` events are emitted, so windowed
        #: deltas reconcile with trace event counts by construction.
        self.head_changes_total = 0
        #: Running count of affiliation changes since attach (same
        #: contract, mirroring ``cluster_reaffiliation`` events).
        self.reaffiliations_total = 0

    # ------------------------------------------------------------------
    def add_change_listener(self, listener) -> None:
        """Register ``listener(sim, node, time)`` for affiliation changes.

        The listener fires once per node whose affiliation (role or
        head) changed, after the structure has been repaired.
        """
        self._change_listeners.append(listener)

    def _notify(self, sim: Simulation, node: int, time: float) -> None:
        for listener in self._change_listeners:
            listener(sim, node, time)

    # ------------------------------------------------------------------
    def on_attach(self, sim: Simulation) -> None:
        self._priority = np.asarray(
            self.algorithm.head_priority(sim.adjacency), dtype=float
        )
        self.state = self.algorithm.form(sim.adjacency)

    # ------------------------------------------------------------------
    # Repair primitives
    # ------------------------------------------------------------------
    def _send_cluster_message(self, sim: Simulation) -> None:
        sim.stats.record("cluster", 1, sim.params.messages.p_cluster)

    def _neighboring_heads(self, sim: Simulation, node: int) -> np.ndarray:
        neighbors = sim.neighbors_of(node)
        return neighbors[self.state.roles[neighbors] == Role.HEAD]

    def _best_head(self, candidates: np.ndarray) -> int:
        return int(candidates[np.argmax(self._priority[candidates])])

    def _reaffiliate(
        self,
        sim: Simulation,
        node: int,
        time: float,
        cause: str = CAUSE_REAFFILIATION,
    ) -> int | None:
        """Give an orphaned node a new affiliation (one CLUSTER message).

        ``cause`` labels the message in the overhead-attribution ledger
        (the P2 default, or ``head-merge-cascade`` when a resigning
        head forced this reaffiliation).  Returns the ``reaffiliate``
        span id when tracing (else None), so a cascading repair can
        link itself to the reaffiliations it forced.
        """
        heads = self._neighboring_heads(sim, node)
        if len(heads):
            new_head = self._best_head(heads)
            self.state.make_member(node, new_head)
            became_head = False
        else:
            self.state.make_head(node)
            new_head = node
            became_head = True
        self.reaffiliations_total += 1
        if became_head:
            self.head_changes_total += 1
        spans = sim.spans
        span = None
        if spans.enabled:
            span = spans.start("reaffiliate", "handler", time, node=int(node))
        with attributed(sim, cause, node=node, cluster=int(new_head)):
            self._send_cluster_message(sim)
        if sim.tracer.enabled:
            sim.tracer.emit(
                "cluster_reaffiliation",
                time,
                sim=sim.sim_id,
                node=int(node),
                head=int(new_head),
                role="head" if became_head else "member",
                span=span,
            )
            if became_head:
                sim.tracer.emit(
                    "head_change",
                    time,
                    sim=sim.sim_id,
                    node=int(node),
                    kind="elect",
                    span=span,
                )
        if span is not None:
            spans.end(time)
        self._notify(sim, node, time)
        return span

    def _resign_head(
        self,
        sim: Simulation,
        loser: int,
        winner: int,
        time: float,
        cause: str = CAUSE_HEAD_ADJACENCY_REPAIR,
    ) -> None:
        """Demote ``loser`` (joining ``winner``) and re-home its members.

        ``cause`` labels the loser's own CLUSTER message (the P1
        default, or ``crash-recovery`` when the triggering link event
        was a fault transition); the cascade reaffiliations keep their
        dedicated ``head-merge-cascade`` cause either way.
        """
        members = self.state.members_of(loser)
        spans = sim.spans
        merge_span = None
        if spans.enabled:
            merge_span = spans.start(
                "repair:head-merge",
                "handler",
                time,
                loser=int(loser),
                winner=int(winner),
                members=int(len(members)),
            )
        self.state.make_member(loser, winner)
        self.head_changes_total += 1
        self.reaffiliations_total += 1
        with attributed(sim, cause, node=loser, cluster=int(winner)):
            self._send_cluster_message(sim)
        if sim.tracer.enabled:
            sim.tracer.emit(
                "head_change",
                time,
                sim=sim.sim_id,
                node=int(loser),
                kind="resign",
                span=merge_span,
            )
            sim.tracer.emit(
                "cluster_reaffiliation",
                time,
                sim=sim.sim_id,
                node=int(loser),
                head=int(winner),
                role="member",
                span=merge_span,
            )
        self._notify(sim, loser, time)
        # Former members re-affiliate, deterministically by index.  The
        # paper counts exactly one CLUSTER message per such node and
        # ignores chain reactions; re-affiliation here cannot create a
        # P1 violation because a node only becomes head when it has no
        # neighboring head.
        for member in members:
            child = self._reaffiliate(
                sim, int(member), time, cause=CAUSE_HEAD_MERGE_CASCADE
            )
            if merge_span is not None and child is not None:
                spans.link(merge_span, child, "cascade", time)
        if merge_span is not None:
            spans.end(time)

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def on_link_down(self, sim: Simulation, u: int, v: int, time: float) -> None:
        state = self.state
        # Member lost the link to its own head (P2 violation).
        if state.roles[u] == Role.MEMBER and state.head_of[u] == v:
            orphan = u
        elif state.roles[v] == Role.MEMBER and state.head_of[v] == u:
            orphan = v
        else:
            return
        cause = CAUSE_REAFFILIATION
        if sim.faults is not None and sim.faults.is_fault_transition(u, v):
            # The break came from a crash/outage transition, not
            # mobility: the orphan's repair is crash-recovery overhead.
            cause = CAUSE_CRASH_RECOVERY
        spans = sim.spans
        span_open = spans.enabled
        if span_open:
            spans.start(
                "repair:member-break", "handler", time, u=int(u), v=int(v)
            )
        self._reaffiliate(sim, orphan, time, cause=cause)
        if span_open:
            spans.end(time)

    def on_link_up(self, sim: Simulation, u: int, v: int, time: float) -> None:
        state = self.state
        if (
            self.dynamic_priority
            and state.roles[u] == Role.HEAD
            and state.roles[v] == Role.HEAD
        ):
            self._priority = np.asarray(
                self.algorithm.head_priority(sim.adjacency), dtype=float
            )
        if state.roles[u] == Role.HEAD and state.roles[v] == Role.HEAD:
            cause = CAUSE_HEAD_ADJACENCY_REPAIR
            if sim.faults is not None and sim.faults.is_fault_transition(u, v):
                # Two heads meeting because one just recovered (or an
                # outage lifted) is crash-recovery overhead, not a
                # mobility-driven adjacency repair.
                cause = CAUSE_CRASH_RECOVERY
            # P1 violation: lower priority head resigns.
            if self._priority[u] >= self._priority[v]:
                self._resign_head(sim, v, u, time, cause=cause)
            else:
                self._resign_head(sim, u, v, time, cause=cause)
        # Any other combination keeps P1/P2 intact (LCC: a member does
        # not switch to a newly reachable head).

    # ------------------------------------------------------------------
    # Crash handling (fault plans)
    # ------------------------------------------------------------------
    def on_node_fail(self, sim: Simulation, node: int, time: float) -> None:
        """State wipe: a crashing member silently leaves its cluster.

        A dead radio cannot transmit, so no CLUSTER message is recorded
        — the node is simply marked a standalone head, which keeps
        P1/P2 vacuously true once its links drop this same step.  A
        crashing *head* keeps its role; its orphaned members repair
        themselves through the ordinary ``on_link_down`` path as the
        engine delivers the mask-induced link breaks.
        """
        if self.state.roles[node] == Role.MEMBER:
            self.state.make_head(node)
            self.head_changes_total += 1
            if sim.tracer.enabled:
                sim.tracer.emit(
                    "head_change",
                    time,
                    sim=sim.sim_id,
                    node=int(node),
                    kind="elect",
                    span=sim.spans.current,
                )
            self._notify(sim, node, time)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def head_ratio(self) -> float:
        """Current measured cluster-head ratio ``P``."""
        return self.state.head_ratio()

    def cluster_count(self) -> int:
        """Current number of clusters."""
        return self.state.cluster_count()
