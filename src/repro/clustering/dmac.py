"""DMAC — Distributed Mobility-Adaptive Clustering (Basagni, 1999).

DMAC generalizes LID/HCC to an arbitrary per-node *weight*: the highest
weight in a neighborhood wins head contention.  Basagni's protocol
specifies exactly the two reactive maintenance rules the paper's
CLUSTER analysis counts — ``CH(v)`` when a node declares itself head
and ``JOIN(v, u)`` when it affiliates — both subsumed by the generic
one-hop maintenance protocol with DMAC's weight as the priority.

Weights default to a seeded random draw (Basagni's generic setting); a
mobility-aware weight can be injected for mobility-adaptive behaviour.
"""

from __future__ import annotations

import numpy as np

from .base import ClusteringAlgorithm, ClusterState, sequential_formation

__all__ = ["DmacClustering"]


class DmacClustering(ClusteringAlgorithm):
    """Weight-based clustering with the DMAC contention rule.

    Parameters
    ----------
    weights:
        Per-node weights; higher weight wins.  When omitted, weights
        are drawn uniformly at random with ``seed``.
    seed:
        Seed for the default random weights.
    """

    name = "dmac"

    def __init__(self, weights: np.ndarray | None = None, seed: int = 0) -> None:
        self.weights = None if weights is None else np.asarray(weights, dtype=float)
        self.seed = seed

    def _weights_for(self, n: int) -> np.ndarray:
        if self.weights is not None:
            if len(self.weights) != n:
                raise ValueError(
                    f"configured weights cover {len(self.weights)} nodes, "
                    f"topology has {n}"
                )
            return self.weights
        rng = np.random.default_rng(self.seed)
        self.weights = rng.uniform(size=n)
        return self.weights

    def head_priority(self, adjacency: np.ndarray) -> np.ndarray:
        """DMAC priority: the node weight, with ``-id`` as tie-break."""
        n = len(adjacency)
        weights = self._weights_for(n)
        # Random floats are almost surely unique, but compose the id
        # tie-break anyway so the formation contract (unique priorities)
        # holds for any injected weights.
        order = np.argsort(np.lexsort((np.arange(n), -weights)))
        return -(order.astype(float))

    def form(self, adjacency: np.ndarray, rng=None) -> ClusterState:
        """Run DMAC formation on a static topology."""
        return sequential_formation(adjacency, self.head_priority(adjacency))
