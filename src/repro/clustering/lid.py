"""Lowest-ID (LID) clustering (Gerla & Tsai; Lin & Gerla).

The algorithm the paper analyzes in Section 5: every node has a unique
id; a node becomes a cluster-head iff it has the smallest id among the
nodes of its closed neighborhood that have not yet joined any cluster,
and an undecided node with a neighboring head joins the lowest-id such
head.  Processing nodes in increasing id order is a valid linearization
of the distributed algorithm (a node decides once all lower-id nodes
have), so formation is implemented through the shared sequential
skeleton with priority ``-id``.
"""

from __future__ import annotations

import numpy as np

from .base import ClusteringAlgorithm, ClusterState, sequential_formation

__all__ = ["LowestIdClustering"]


class LowestIdClustering(ClusteringAlgorithm):
    """LID clustering with optional id permutation.

    Parameters
    ----------
    ids:
        Explicit node ids (a permutation of ``0..N-1`` or any unique
        integers).  When omitted, ids equal node indices.  Passing a
        random permutation decorrelates ids from any structure the
        caller's node indexing might carry.
    """

    name = "lid"

    def __init__(self, ids: np.ndarray | None = None) -> None:
        self.ids = None if ids is None else np.asarray(ids)
        if self.ids is not None and len(np.unique(self.ids)) != len(self.ids):
            raise ValueError("node ids must be unique")

    def _ids_for(self, n: int) -> np.ndarray:
        if self.ids is None:
            return np.arange(n)
        if len(self.ids) != n:
            raise ValueError(
                f"configured ids cover {len(self.ids)} nodes, topology has {n}"
            )
        return self.ids

    def head_priority(self, adjacency: np.ndarray) -> np.ndarray:
        """Lower id wins head contention: priority is ``-id``."""
        return -self._ids_for(len(adjacency)).astype(float)

    def form(self, adjacency: np.ndarray, rng=None) -> ClusterState:
        """Run LID formation on a static topology."""
        return sequential_formation(adjacency, self.head_priority(adjacency))
