"""Highest Connectivity Clustering (HCC; Gerla & Tsai).

The degree-based alternative to LID from the paper's related-work set:
head contention is won by the node with the highest degree, with lower
id breaking ties.  Because degree is topology-dependent, the priority is
recomputed from the adjacency at formation time; during reactive
maintenance the degree at the moment of the triggering event is used.
"""

from __future__ import annotations

import numpy as np

from .base import ClusteringAlgorithm, ClusterState, sequential_formation

__all__ = ["HighestConnectivityClustering"]


class HighestConnectivityClustering(ClusteringAlgorithm):
    """HCC: highest degree wins, ties broken by lowest id."""

    name = "hcc"

    def head_priority(self, adjacency: np.ndarray) -> np.ndarray:
        """Composite priority: degree major, ``-id`` minor.

        Degrees are integers and ids are unique, so scaling the degree
        by the node count and subtracting the id yields a unique
        priority with the intended lexicographic order.
        """
        adjacency = np.asarray(adjacency, dtype=bool)
        n = len(adjacency)
        degrees = adjacency.sum(axis=1).astype(float)
        return degrees * n - np.arange(n)

    def form(self, adjacency: np.ndarray, rng=None) -> ClusterState:
        """Run HCC formation on a static topology."""
        return sequential_formation(adjacency, self.head_priority(adjacency))
