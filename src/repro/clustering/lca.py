"""Linked Cluster Architecture (LCA; Baker & Ephremides, 1981).

The earliest of the id-based schemes in the paper's related-work set.
A node ``i`` becomes a cluster-head iff

* it has the highest id in its closed neighborhood, **or**
* it is the highest-id node in the closed neighborhood of at least one
  of its neighbors (i.e. some neighbor would otherwise be left without
  a head).

Every non-head then affiliates to its highest-id neighboring head.
Unlike LID/HCC, LCA can produce *adjacent* heads (it predates property
P1), which is why it participates in the formation comparison but not
in the P1-enforcing reactive maintenance.
"""

from __future__ import annotations

import numpy as np

from .base import ClusteringAlgorithm, ClusterState

__all__ = ["LinkedClusterArchitecture"]


class LinkedClusterArchitecture(ClusteringAlgorithm):
    """LCA formation on a static topology."""

    name = "lca"

    def form(self, adjacency: np.ndarray, rng=None) -> ClusterState:
        adjacency = np.asarray(adjacency, dtype=bool)
        n = len(adjacency)
        closed = adjacency | np.eye(n, dtype=bool)
        ids = np.arange(n)

        # Highest id of each closed neighborhood.
        neighborhood_max = np.array(
            [ids[closed[i]].max() for i in range(n)], dtype=np.int64
        )
        is_head = np.zeros(n, dtype=bool)
        # Rule 1: locally highest.
        is_head |= neighborhood_max == ids
        # Rule 2: highest in some neighbor's closed neighborhood.
        for node in range(n):
            for neighbor in np.flatnonzero(adjacency[node]):
                if neighborhood_max[neighbor] == node:
                    is_head[node] = True
                    break

        state = ClusterState.unassigned(n)
        for head in np.flatnonzero(is_head):
            state.make_head(int(head))
        for node in np.flatnonzero(~is_head):
            node = int(node)
            head_neighbors = np.flatnonzero(adjacency[node] & is_head)
            # Rule 2 guarantees at least one neighboring head exists.
            state.make_member(node, int(head_neighbors.max()))
        return state
