"""Cluster state representation and the one-hop formation framework.

A cluster structure assigns every node a role — cluster-head or
cluster-member — and every member a head it is affiliated to.  The
paper's properties for 1-HOP clustered networks:

* **P1** — no two cluster-heads are directly connected;
* **P2** — each node is affiliated to exactly one cluster, with its
  cluster-head at most one hop away.

Most classic one-hop algorithms (LID, HCC, DMAC) share one formation
skeleton and differ only in the *priority* that decides who becomes a
head: processing nodes from highest to lowest priority, an undecided
node joins the best neighboring head if one exists and otherwise
becomes a head itself.  :func:`sequential_formation` implements that
skeleton; the algorithm classes supply priorities.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass

import numpy as np

__all__ = [
    "Role",
    "ClusterState",
    "ClusteringAlgorithm",
    "sequential_formation",
]


class Role(enum.IntEnum):
    """Role of a node in the cluster structure."""

    UNASSIGNED = 0
    MEMBER = 1
    HEAD = 2


@dataclass
class ClusterState:
    """Roles and affiliations of all nodes.

    ``head_of[i]`` is the node id of ``i``'s cluster-head; heads point
    to themselves; unassigned nodes carry ``-1``.
    """

    roles: np.ndarray
    head_of: np.ndarray

    def __post_init__(self) -> None:
        self.roles = np.asarray(self.roles, dtype=np.int8)
        self.head_of = np.asarray(self.head_of, dtype=np.int64)
        if self.roles.shape != self.head_of.shape:
            raise ValueError("roles and head_of must have equal shapes")

    # ------------------------------------------------------------------
    @classmethod
    def unassigned(cls, n: int) -> "ClusterState":
        """A fresh state with every node unassigned."""
        if n < 1:
            raise ValueError(f"node count must be positive, got {n}")
        return cls(
            roles=np.full(n, Role.UNASSIGNED, dtype=np.int8),
            head_of=np.full(n, -1, dtype=np.int64),
        )

    @property
    def n_nodes(self) -> int:
        """Number of nodes covered by this state."""
        return len(self.roles)

    # ------------------------------------------------------------------
    # Mutation (kept here so role and affiliation stay consistent)
    # ------------------------------------------------------------------
    def make_head(self, node: int) -> None:
        """Declare ``node`` a cluster-head of its own cluster."""
        self.roles[node] = Role.HEAD
        self.head_of[node] = node

    def make_member(self, node: int, head: int) -> None:
        """Affiliate ``node`` to cluster-head ``head``."""
        if self.roles[head] != Role.HEAD:
            raise ValueError(f"node {head} is not a cluster-head")
        if node == head:
            raise ValueError("a head cannot be its own member")
        self.roles[node] = Role.MEMBER
        self.head_of[node] = head

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_head(self, node: int) -> bool:
        """Whether ``node`` is a cluster-head."""
        return self.roles[node] == Role.HEAD

    def heads(self) -> np.ndarray:
        """Indices of all cluster-heads."""
        return np.flatnonzero(self.roles == Role.HEAD)

    def members_of(self, head: int) -> np.ndarray:
        """Member indices of the cluster headed by ``head`` (excl. the head)."""
        return np.flatnonzero(
            (self.head_of == head) & (np.arange(self.n_nodes) != head)
        )

    def cluster_count(self) -> int:
        """Number of clusters (= number of heads)."""
        return int(np.sum(self.roles == Role.HEAD))

    def head_ratio(self) -> float:
        """Measured cluster-head ratio ``P`` = heads / nodes."""
        return self.cluster_count() / self.n_nodes

    def cluster_sizes(self) -> np.ndarray:
        """Sizes (head included) of all clusters, sorted by head id."""
        heads = self.heads()
        return np.array(
            [1 + len(self.members_of(int(h))) for h in heads], dtype=int
        )

    def same_cluster(self, u: int, v: int) -> bool:
        """Whether ``u`` and ``v`` belong to the same cluster."""
        return (
            self.head_of[u] >= 0
            and self.head_of[u] == self.head_of[v]
        )

    def cluster_nodes(self, head: int) -> np.ndarray:
        """All nodes of ``head``'s cluster, head included."""
        return np.flatnonzero(self.head_of == head)

    def copy(self) -> "ClusterState":
        """Deep copy of the state."""
        return ClusterState(self.roles.copy(), self.head_of.copy())


class ClusteringAlgorithm(abc.ABC):
    """A clustering algorithm's formation stage.

    ``form`` builds a complete :class:`ClusterState` for a static
    topology.  One-hop algorithms additionally expose
    :meth:`head_priority`, which the reactive maintenance protocol uses
    to arbitrate P1 violations and member re-affiliation at runtime.
    """

    name: str = "clustering"

    @abc.abstractmethod
    def form(self, adjacency: np.ndarray, rng=None) -> ClusterState:
        """Run cluster formation on a boolean adjacency matrix."""

    def head_priority(self, adjacency: np.ndarray) -> np.ndarray:
        """Per-node priority: larger values win head contention.

        The default raises: algorithms that support reactive
        maintenance must override.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not define a head priority and "
            "cannot drive reactive maintenance"
        )


def sequential_formation(
    adjacency: np.ndarray, priority: np.ndarray
) -> ClusterState:
    """Shared one-hop formation skeleton.

    Nodes are processed from highest to lowest ``priority`` (which must
    contain no ties — compose tie-breaks into the values).  An
    undecided node joins the highest-priority neighboring head if one
    exists, else becomes a head.  The resulting structure satisfies P1
    and P2 by construction.
    """
    adjacency = np.asarray(adjacency, dtype=bool)
    n = len(adjacency)
    priority = np.asarray(priority, dtype=float)
    if priority.shape != (n,):
        raise ValueError(
            f"priority must have shape ({n},), got {priority.shape}"
        )
    if len(np.unique(priority)) != n:
        raise ValueError("priority values must be unique (compose tie-breaks)")

    state = ClusterState.unassigned(n)
    order = np.argsort(-priority, kind="stable")
    for node in order:
        node = int(node)
        neighbor_idx = np.flatnonzero(adjacency[node])
        head_neighbors = neighbor_idx[
            state.roles[neighbor_idx] == Role.HEAD
        ]
        if len(head_neighbors):
            best = int(head_neighbors[np.argmax(priority[head_neighbors])])
            state.make_member(node, best)
        else:
            state.make_head(node)
    return state
