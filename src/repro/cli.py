"""Command-line interface: ``repro-manet``.

Subcommands::

    repro-manet list                     # show all experiment ids
    repro-manet run fig1 [--quick]       # run one experiment
    repro-manet run all [--quick]        # run every experiment
    repro-manet model --n 400 --rf 0.15 --vf 0.05
                                         # evaluate the closed-form model

The experiment tables printed here are the series behind the paper's
figures; EXPERIMENTS.md archives the full-scale output.
"""

from __future__ import annotations

import argparse
import sys

from .core.lid_analysis import lid_head_probability
from .core.overhead import overhead_breakdown
from .core.params import NetworkParameters
from .experiments import experiment_ids, run_experiment

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-manet",
        description=(
            "Clustering/routing overhead analysis for clustered MANETs "
            "(reproduction of Xue, Er & Seah, ICDCS 2006)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiment ids")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id or 'all'")
    run.add_argument(
        "--quick", action="store_true", help="reduced-scale run (seconds)"
    )
    run.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="also write each experiment's table as DIR/<id>.csv",
    )

    simulate = sub.add_parser(
        "simulate", help="run a JSON scenario through the full stack"
    )
    simulate.add_argument("scenario", help="path to a scenario JSON file")
    simulate.add_argument(
        "--json",
        action="store_true",
        help="emit the report as JSON instead of text",
    )

    sweep = sub.add_parser(
        "sweep", help="sweep one parameter, simulation vs analysis"
    )
    sweep.add_argument(
        "parameter", choices=["tx_range", "velocity", "density"]
    )
    sweep.add_argument(
        "values",
        help="comma-separated absolute values, e.g. 0.08,0.15,0.25",
    )
    sweep.add_argument("--n", type=int, default=150, help="network size N")
    sweep.add_argument(
        "--rf", type=float, default=0.15, help="base range as r/a"
    )
    sweep.add_argument(
        "--vf", type=float, default=0.05, help="base speed as v/a"
    )
    sweep.add_argument("--seeds", type=int, default=2, help="seeds per point")
    sweep.add_argument(
        "--duration", type=float, default=10.0, help="measured time per run"
    )

    model = sub.add_parser("model", help="evaluate the closed-form model")
    model.add_argument("--n", type=int, default=400, help="network size N")
    model.add_argument(
        "--rf", type=float, default=0.15, help="transmission range as r/a"
    )
    model.add_argument(
        "--vf", type=float, default=0.05, help="node speed as v/a"
    )
    model.add_argument(
        "--full-table",
        action="store_true",
        help="ROUTE updates carry the full intra-cluster table",
    )
    return parser


def _run_model(args) -> int:
    params = NetworkParameters.from_fractions(
        n_nodes=args.n, range_fraction=args.rf, velocity_fraction=args.vf
    )
    head_p = float(
        lid_head_probability(params.n_nodes, params.density, params.tx_range)
    )
    breakdown = overhead_breakdown(params, head_p, full_table=args.full_table)
    print(f"N={params.n_nodes}  r/a={args.rf}  v/a={args.vf}")
    print(f"expected degree d      = {breakdown.degree:.4g}")
    print(f"LID head ratio P       = {head_p:.4g}")
    print(f"expected clusters n    = {params.n_nodes * head_p:.4g}")
    for key, value in breakdown.frequencies.items():
        print(f"{key:22s} = {value:.4g} msgs/node/t")
    print(f"O_hello                = {breakdown.hello_overhead:.4g} bits/node/t")
    print(f"O_cluster              = {breakdown.cluster_overhead:.4g} bits/node/t")
    print(f"O_route                = {breakdown.route_overhead:.4g} bits/node/t")
    print(f"O_total                = {breakdown.total:.4g} bits/node/t")
    return 0


def _run_sweep(args) -> int:
    from .analysis import run_sweep
    from .experiments.figures123 import sweep_table

    try:
        values = [float(v) for v in args.values.split(",") if v.strip()]
    except ValueError:
        print(f"could not parse sweep values: {args.values!r}")
        return 2
    if not values:
        print("no sweep values given")
        return 2
    base = NetworkParameters.from_fractions(
        n_nodes=args.n, range_fraction=args.rf, velocity_fraction=args.vf
    )
    result = run_sweep(
        args.parameter,
        base,
        values,
        seeds=args.seeds,
        duration=args.duration,
        warmup=args.duration * 0.15,
    )
    table = sweep_table(
        result,
        f"Sweep of {args.parameter} (N={args.n})",
        args.parameter,
    )
    print(table.render())
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for experiment_id in experiment_ids():
            print(experiment_id)
        return 0
    if args.command == "model":
        return _run_model(args)
    if args.command == "sweep":
        return _run_sweep(args)
    if args.command == "simulate":
        import json as _json

        from .scenario import load_scenario, run_scenario

        report = run_scenario(load_scenario(args.scenario))
        if args.json:
            print(_json.dumps(report.to_dict(), indent=2))
        else:
            print(report.render())
        return 0
    if args.command == "run":
        ids = experiment_ids() if args.experiment == "all" else [args.experiment]
        csv_dir = None
        if args.csv is not None:
            from pathlib import Path

            csv_dir = Path(args.csv)
            csv_dir.mkdir(parents=True, exist_ok=True)
        for experiment_id in ids:
            table = run_experiment(experiment_id, quick=args.quick)
            print(table.render())
            print()
            if csv_dir is not None:
                table.save_csv(csv_dir / f"{experiment_id}.csv")
        return 0
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
