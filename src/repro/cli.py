"""Command-line interface: ``repro-manet``.

Subcommands::

    repro-manet list                     # show all experiment ids
    repro-manet run fig1 [--quick]       # run one experiment
    repro-manet run all [--quick]        # run every experiment
    repro-manet simulate scenario.json   # run a declarative scenario
    repro-manet trace-summary t.jsonl    # aggregate a telemetry trace
    repro-manet metrics t.jsonl          # OpenMetrics export of a trace
    repro-manet report t.jsonl           # Markdown run-health report
    repro-manet timeline t.jsonl         # Chrome/Perfetto trace export
    repro-manet compare a.jsonl b.jsonl  # diff two traced runs
    repro-manet bench                    # engine perf -> BENCH_engine.json
    repro-manet store stats              # inspect the result store
    repro-manet model --n 400 --rf 0.15 --vf 0.05
                                         # evaluate the closed-form model

``run`` and ``sweep`` accept ``--jobs J`` to fan per-seed simulation
runs out to ``J`` worker processes; results are bitwise-identical to a
serial run for any value.

The same two commands accept ``--store [PATH]`` to memoize per-seed
simulation tasks in a content-addressed on-disk store (see README,
"Result store & incremental sweeps"): repeated runs are cache hits,
interrupted sweeps resume from completed tasks, and results are
byte-identical either way.  The store root defaults to
``$REPRO_MANET_STORE`` or ``~/.cache/repro-manet``; setting the
environment variable enables the store without the flag, and
``--no-store`` disables it regardless.  ``--store-refresh`` recomputes
every task and overwrites its record.  The ``store`` command group
(``stats`` / ``ls`` / ``gc`` / ``verify``) inspects and maintains the
store.

``run`` and ``simulate`` accept telemetry flags (see README,
"Observability"): ``--trace FILE`` streams structured JSONL events,
``--metrics-json FILE`` exports the metrics registry and per-phase
timing, ``--metrics-openmetrics FILE`` (also on ``sweep``) exports the
registry — message totals plus the overhead-attribution counters — in
OpenMetrics text format, ``--progress`` prints progress lines and the
timing breakdown,
and ``-v`` / ``--log-level`` control stdlib logging across the package.
Run-health flags ride on the same commands: ``--audit [check|strict]``
attaches the P1/P2 invariant auditor and the analytic-residual monitor
(strict mode exits 3 on the first violation), and
``--sample-resources SEC`` streams RSS/CPU/phase samples into the
trace.  ``bench --history FILE`` appends steps/sec results to a JSONL
history and exits 1 when a point regresses more than the threshold
against the best prior entry (regressions come with a per-phase
attribution table when phase data is available).  ``bench --modes``
picks which kernels run; whenever the incremental engine is among
them, its dual-engine equivalence check gates the exit code too.

Timeline tooling (see README, "Timelines & run comparison"):
``timeline`` exports a trace as Chrome trace-event JSON for
chrome://tracing / Perfetto, ``--profile FILE`` on ``run``/``simulate``
writes a collapsed-stack cProfile capture, and ``compare`` diffs two
traces — per-category message rates, cluster-dynamics rates, residual
verdicts and phase timings — exiting 1 when any gating delta exceeds
``--threshold`` or a residual verdict flips.

Exit codes: 0 success/healthy, 1 unhealthy (report problems, trace
non-reconciliation, bench regression, compare deltas beyond threshold,
corrupt store records), 2 usage or input error, 3 strict-mode
invariant audit failure.

The experiment tables printed here are the series behind the paper's
figures; EXPERIMENTS.md archives the full-scale output.
"""

from __future__ import annotations

import argparse
import sys

from .core.lid_analysis import lid_head_probability
from .core.overhead import overhead_breakdown
from .core.params import NetworkParameters
from .experiments import experiment_ids, run_experiment

__all__ = ["main", "build_parser"]


class _CliError(Exception):
    """User-facing CLI failure: printed to stderr, exit code 2."""


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_jobs_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="J",
        help=(
            "worker processes for per-seed runs (0 = one per CPU; "
            "default: serial). Results are identical for any value."
        ),
    )


def _add_store_flags(parser: argparse.ArgumentParser) -> None:
    """Result-store flags shared by ``run`` and ``sweep``."""
    parser.add_argument(
        "--store",
        nargs="?",
        const="",
        default=None,
        metavar="PATH",
        help=(
            "memoize per-seed simulation tasks in a content-addressed "
            "store (bare --store uses $REPRO_MANET_STORE or "
            "~/.cache/repro-manet)"
        ),
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="disable the result store even when $REPRO_MANET_STORE is set",
    )
    parser.add_argument(
        "--store-refresh",
        action="store_true",
        help=(
            "re-simulate every task and overwrite its store record "
            "(implies --store)"
        ),
    )


def _parse_size(text: str) -> int:
    """Parse a byte size with an optional K/M/G suffix."""
    text = text.strip()
    multiplier = 1
    suffixes = {"K": 1024, "M": 1024**2, "G": 1024**3}
    if text and text[-1].upper() in suffixes:
        multiplier = suffixes[text[-1].upper()]
        text = text[:-1]
    try:
        value = int(float(text) * multiplier)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"not a size (use bytes or K/M/G suffix): {text!r}"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"size must be >= 0, got {value}")
    return value


def _add_telemetry_flags(parser: argparse.ArgumentParser) -> None:
    """Observability flags shared by ``run`` and ``simulate``."""
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write structured JSONL telemetry events to FILE",
    )
    parser.add_argument(
        "--trace-step-every",
        type=_positive_int,
        default=10,
        metavar="K",
        help="sample only every K-th per-step trace event (default 10)",
    )
    parser.add_argument(
        "--metrics-json",
        metavar="FILE",
        default=None,
        help="write the metrics registry and timing breakdown to FILE",
    )
    _add_openmetrics_flag(parser)
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print progress lines and a final timing breakdown",
    )
    parser.add_argument(
        "--audit",
        nargs="?",
        const="check",
        default="off",
        choices=["off", "check", "strict"],
        help=(
            "attach run-health protocols: P1/P2 invariant auditor and "
            "analytic-residual monitor (bare --audit = check; strict "
            "exits 3 on the first invariant violation)"
        ),
    )
    parser.add_argument(
        "--audit-every",
        type=float,
        default=1.0,
        metavar="T",
        help="simulated seconds between invariant audits (default 1.0)",
    )
    parser.add_argument(
        "--residual-window",
        type=float,
        default=2.0,
        metavar="T",
        help="simulated seconds per residual-monitor window (default 2.0)",
    )
    parser.add_argument(
        "--residual-rtol",
        type=float,
        default=0.15,
        metavar="F",
        help=(
            "relative slack below the analytic bound tolerated before "
            "a residual is flagged (default 0.15)"
        ),
    )
    parser.add_argument(
        "--sample-resources",
        type=float,
        default=0.0,
        metavar="SEC",
        help=(
            "sample RSS/CPU/engine-phase usage every SEC wall-clock "
            "seconds into the trace (requires --trace; 0 disables)"
        ),
    )
    parser.add_argument(
        "--profile",
        metavar="FILE",
        default=None,
        help=(
            "capture a cProfile of the workload and write it to FILE in "
            "collapsed-stack (flamegraph) format"
        ),
    )
    _add_logging_flags(parser)


def _add_openmetrics_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics-openmetrics",
        metavar="FILE",
        default=None,
        help=(
            "write the metrics registry (message totals, overhead "
            "attribution counters) to FILE in OpenMetrics text format"
        ),
    )


def _add_logging_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="increase log verbosity (-v info, -vv debug)",
    )
    parser.add_argument(
        "--log-level",
        choices=["debug", "info", "warning", "error"],
        default=None,
        help="explicit log level (overrides -v)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    from . import __version__
    from .sim.engine import ENGINE_SCHEMA_VERSION

    parser = argparse.ArgumentParser(
        prog="repro-manet",
        description=(
            "Clustering/routing overhead analysis for clustered MANETs "
            "(reproduction of Xue, Er & Seah, ICDCS 2006)"
        ),
    )
    parser.add_argument(
        "--version",
        action="version",
        version=(
            f"repro-manet {__version__} "
            f"(engine schema {ENGINE_SCHEMA_VERSION})"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiment ids")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id or 'all'")
    run.add_argument(
        "--quick", action="store_true", help="reduced-scale run (seconds)"
    )
    run.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="also write each experiment's table as DIR/<id>.csv",
    )
    _add_jobs_flag(run)
    _add_store_flags(run)
    _add_telemetry_flags(run)

    simulate = sub.add_parser(
        "simulate", help="run a JSON scenario through the full stack"
    )
    simulate.add_argument("scenario", help="path to a scenario JSON file")
    simulate.add_argument(
        "--json",
        action="store_true",
        help="emit the report as JSON instead of text",
    )
    _add_telemetry_flags(simulate)

    metrics = sub.add_parser(
        "metrics",
        help=(
            "export a JSONL trace in OpenMetrics text format (message "
            "totals plus overhead-attribution counters)"
        ),
    )
    metrics.add_argument("file", help="trace file written by --trace")
    metrics.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="output path (default: stdout)",
    )
    _add_logging_flags(metrics)

    trace_summary = sub.add_parser(
        "trace-summary",
        help="aggregate a JSONL trace into per-category message rates",
    )
    trace_summary.add_argument("file", help="trace file written by --trace")
    trace_summary.add_argument(
        "--json",
        action="store_true",
        help="emit the summary as JSON instead of text",
    )
    _add_logging_flags(trace_summary)

    timeline = sub.add_parser(
        "timeline",
        help="export a JSONL trace as Chrome/Perfetto trace-event JSON",
    )
    timeline.add_argument("file", help="trace file written by --trace")
    timeline.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="output path (default: <trace>.timeline.json)",
    )
    _add_logging_flags(timeline)

    compare = sub.add_parser(
        "compare",
        help=(
            "diff two traces: message rates, cluster dynamics, residual "
            "verdicts, phase timings (exit 1 when deltas exceed threshold)"
        ),
    )
    compare.add_argument("trace_a", help="baseline trace file")
    compare.add_argument("trace_b", help="candidate trace file")
    compare.add_argument(
        "--threshold",
        type=float,
        default=None,
        metavar="F",
        help=(
            "relative delta on gating metrics tolerated before exit 1 "
            "(default 0.10)"
        ),
    )
    compare.add_argument(
        "--json",
        action="store_true",
        help="emit the comparison as JSON instead of text",
    )
    _add_logging_flags(compare)

    report = sub.add_parser(
        "report",
        help="render a Markdown run-health report from trace files",
    )
    report.add_argument(
        "files", nargs="+", help="trace files written by --trace"
    )
    report.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="write the report to FILE instead of stdout",
    )
    _add_logging_flags(report)

    sweep = sub.add_parser(
        "sweep", help="sweep one parameter, simulation vs analysis"
    )
    sweep.add_argument(
        "parameter", choices=["tx_range", "velocity", "density"]
    )
    sweep.add_argument(
        "values",
        help="comma-separated absolute values, e.g. 0.08,0.15,0.25",
    )
    sweep.add_argument("--n", type=int, default=150, help="network size N")
    sweep.add_argument(
        "--rf", type=float, default=0.15, help="base range as r/a"
    )
    sweep.add_argument(
        "--vf", type=float, default=0.05, help="base speed as v/a"
    )
    sweep.add_argument("--seeds", type=int, default=2, help="seeds per point")
    sweep.add_argument(
        "--duration", type=float, default=10.0, help="measured time per run"
    )
    sweep.add_argument(
        "--beacon-policy",
        metavar="POLICY",
        default=None,
        help=(
            "replace the event-mode HELLO with a beacon policy from "
            "repro.control (fixed, analytic-rate, churn-feedback, "
            "staleness-bounded); part of each task's store identity"
        ),
    )
    sweep.add_argument(
        "--beacon-interval",
        type=float,
        default=1.0,
        help="base beacon interval for --beacon-policy (default 1.0)",
    )
    sweep.add_argument(
        "--fault-crash-rate",
        type=float,
        default=None,
        metavar="RATE",
        help=(
            "inject node crashes at RATE per node per unit time "
            "(deterministic per-seed schedule; part of each task's "
            "store identity)"
        ),
    )
    sweep.add_argument(
        "--fault-crash-recover",
        type=float,
        default=None,
        metavar="DELAY",
        help=(
            "recover crashed nodes after DELAY time units "
            "(default: crashes are permanent)"
        ),
    )
    sweep.add_argument(
        "--fault-loss-rate",
        type=float,
        default=None,
        metavar="P",
        help="drop each HELLO/RREQ reception with probability P",
    )
    _add_jobs_flag(sweep)
    _add_store_flags(sweep)
    _add_openmetrics_flag(sweep)
    _add_logging_flags(sweep)

    store = sub.add_parser(
        "store", help="inspect and maintain the result store"
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_parsers = {
        "stats": store_sub.add_parser(
            "stats", help="record/manifest counts, sizes and saved time"
        ),
        "ls": store_sub.add_parser("ls", help="list stored task records"),
        "gc": store_sub.add_parser(
            "gc", help="evict records by age and total size"
        ),
        "verify": store_sub.add_parser(
            "verify", help="re-hash every record and report corruption"
        ),
    }
    for store_parser in store_parsers.values():
        store_parser.add_argument(
            "--store",
            metavar="PATH",
            default=None,
            help=(
                "store root (default: $REPRO_MANET_STORE or "
                "~/.cache/repro-manet)"
            ),
        )
        _add_logging_flags(store_parser)
    store_parsers["ls"].add_argument(
        "--limit",
        type=_positive_int,
        default=None,
        metavar="N",
        help="show only the N most recent records",
    )
    store_parsers["gc"].add_argument(
        "--max-size",
        type=_parse_size,
        default=None,
        metavar="SIZE",
        help="evict oldest records until the store fits (bytes or K/M/G)",
    )
    store_parsers["gc"].add_argument(
        "--max-age",
        type=float,
        default=None,
        metavar="DAYS",
        help="evict records older than DAYS",
    )
    store_parsers["gc"].add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be evicted without deleting anything",
    )
    store_parsers["verify"].add_argument(
        "--quarantine",
        action="store_true",
        help="also move corrupt records into <root>/quarantine/",
    )

    bench = sub.add_parser(
        "bench", help="benchmark the engine; writes BENCH_engine.json"
    )
    bench.add_argument(
        "--out",
        metavar="FILE",
        default="BENCH_engine.json",
        help="output JSON report path (default: BENCH_engine.json)",
    )
    bench.add_argument(
        "--sizes",
        default="100,500,2000,5000",
        help="comma-separated network sizes (default: 100,500,2000,5000)",
    )
    bench.add_argument(
        "--steps",
        type=_positive_int,
        default=30,
        help="simulation steps per (size, mode) point (default 30)",
    )
    bench.add_argument(
        "--modes",
        default="edge,incremental,dense",
        metavar="M1,M2",
        help=(
            "comma-separated kernels to benchmark: edge, incremental, "
            "dense (default: all three)"
        ),
    )
    bench.add_argument(
        "--dense-limit",
        type=int,
        default=2000,
        help="skip the O(N^2) dense baseline above this size (default 2000)",
    )
    bench.add_argument(
        "--crossover",
        action="store_true",
        help="also measure the dense/grid crossover table",
    )
    bench.add_argument(
        "--sweep-jobs",
        default=None,
        metavar="J1,J2",
        help="also time a small sweep point at these jobs values, e.g. 1,4",
    )
    bench.add_argument(
        "--history",
        metavar="FILE",
        default=None,
        help=(
            "append steps/sec results to this JSONL history and exit 1 "
            "on regression vs the best prior entry"
        ),
    )
    bench.add_argument(
        "--regression-threshold",
        type=float,
        default=0.20,
        metavar="F",
        help=(
            "fractional steps/sec drop counted as a regression when "
            "gating with --history (default 0.20)"
        ),
    )
    _add_logging_flags(bench)

    model = sub.add_parser("model", help="evaluate the closed-form model")
    model.add_argument("--n", type=int, default=400, help="network size N")
    model.add_argument(
        "--rf", type=float, default=0.15, help="transmission range as r/a"
    )
    model.add_argument(
        "--vf", type=float, default=0.05, help="node speed as v/a"
    )
    model.add_argument(
        "--full-table",
        action="store_true",
        help="ROUTE updates carry the full intra-cluster table",
    )
    return parser


def _run_model(args) -> int:
    params = NetworkParameters.from_fractions(
        n_nodes=args.n, range_fraction=args.rf, velocity_fraction=args.vf
    )
    head_p = float(
        lid_head_probability(params.n_nodes, params.density, params.tx_range)
    )
    breakdown = overhead_breakdown(params, head_p, full_table=args.full_table)
    print(f"N={params.n_nodes}  r/a={args.rf}  v/a={args.vf}")
    print(f"expected degree d      = {breakdown.degree:.4g}")
    print(f"LID head ratio P       = {head_p:.4g}")
    print(f"expected clusters n    = {params.n_nodes * head_p:.4g}")
    for key, value in breakdown.frequencies.items():
        print(f"{key:22s} = {value:.4g} msgs/node/t")
    print(f"O_hello                = {breakdown.hello_overhead:.4g} bits/node/t")
    print(f"O_cluster              = {breakdown.cluster_overhead:.4g} bits/node/t")
    print(f"O_route                = {breakdown.route_overhead:.4g} bits/node/t")
    print(f"O_total                = {breakdown.total:.4g} bits/node/t")
    return 0


def _resolve_store(args):
    """The :class:`~repro.store.disk.ResultStore` the flags request.

    Enabled by ``--store`` / ``--store-refresh`` or by the
    ``REPRO_MANET_STORE`` environment variable; ``--no-store`` always
    wins.  Returns ``None`` when caching is off.
    """
    import os

    from .store import STORE_ENV_VAR, ResultStore, resolve_store_root

    if args.no_store:
        if args.store is not None or args.store_refresh:
            raise _CliError("--no-store conflicts with --store/--store-refresh")
        return None
    enabled = (
        args.store is not None
        or args.store_refresh
        or bool(os.environ.get(STORE_ENV_VAR))
    )
    if not enabled:
        return None
    return ResultStore(
        resolve_store_root(args.store or None), refresh=args.store_refresh
    )


def _run_sweep(args) -> int:
    from .analysis import run_sweep
    from .experiments.figures123 import sweep_table
    from .obs import MetricsRegistry, observe

    try:
        values = [float(v) for v in args.values.split(",") if v.strip()]
    except ValueError:
        print(f"could not parse sweep values: {args.values!r}")
        return 2
    if not values:
        print("no sweep values given")
        return 2
    store = _resolve_store(args)
    beacon = None
    if args.beacon_policy is not None:
        beacon = {
            "mode": "adaptive",
            "policy": {
                "policy": args.beacon_policy,
                "interval": args.beacon_interval,
            },
        }
        from .sim.beacon import hello_from_config

        try:
            hello_from_config(beacon)
        except ValueError as error:
            print(f"bad --beacon-policy: {error}")
            return 2
    faults = None
    if (
        args.fault_crash_rate is not None
        or args.fault_loss_rate is not None
    ):
        faults = {}
        if args.fault_crash_rate is not None:
            faults["crash_rate"] = args.fault_crash_rate
        if args.fault_crash_recover is not None:
            faults["crash_recover_after"] = args.fault_crash_recover
        if args.fault_loss_rate is not None:
            faults["loss_rate"] = args.fault_loss_rate
        from .faults import fault_config_from_dict

        try:
            fault_config_from_dict(faults)
        except ValueError as error:
            print(f"bad --fault-* flags: {error}")
            return 2
    elif args.fault_crash_recover is not None:
        print("--fault-crash-recover requires --fault-crash-rate")
        return 2
    base = NetworkParameters.from_fractions(
        n_nodes=args.n, range_fraction=args.rf, velocity_fraction=args.vf
    )
    # An ambient registry makes every per-seed run attach the overhead
    # ledger; worker registries are folded back in by the parallel
    # runner, so any --jobs value exports identical counters.
    registry = (
        MetricsRegistry() if args.metrics_openmetrics is not None else None
    )
    with observe(registry=registry):
        sweep_kwargs = dict(
            seeds=args.seeds,
            duration=args.duration,
            warmup=args.duration * 0.15,
            jobs=args.jobs,
            store=store,
        )
        if beacon is not None:
            # Only passed when set: a literal ``beacon=None`` would
            # enter the sweep manifest identity and orphan every
            # pre-existing event-mode manifest.
            sweep_kwargs["beacon"] = beacon
        if faults is not None:
            # Same manifest-compatibility contract as ``beacon``.
            sweep_kwargs["faults"] = faults
        result = run_sweep(args.parameter, base, values, **sweep_kwargs)
    if registry is not None:
        from .obs.openmetrics import write_openmetrics

        write_openmetrics(registry, args.metrics_openmetrics)
        print(f"openmetrics written to {args.metrics_openmetrics}")
    table = sweep_table(
        result,
        f"Sweep of {args.parameter} (N={args.n})",
        args.parameter,
    )
    print(table.render())
    if store is not None:
        print()
        print(store.describe())
    return 0


def _run_bench(args) -> int:
    from .analysis.benchmark import DEFAULT_MODES, run_bench, write_bench

    modes = tuple(
        token.strip() for token in args.modes.split(",") if token.strip()
    )
    unknown = [token for token in modes if token not in DEFAULT_MODES]
    if unknown:
        raise _CliError(
            f"unknown bench modes {','.join(unknown)!r}; "
            f"choose from {','.join(DEFAULT_MODES)}"
        )
    if not modes:
        raise _CliError("no bench modes given")
    try:
        sizes = [int(v) for v in args.sizes.split(",") if v.strip()]
    except ValueError:
        raise _CliError(
            f"could not parse sizes: {args.sizes!r}"
        ) from None
    if not sizes:
        raise _CliError("no benchmark sizes given")
    sweep_jobs = None
    if args.sweep_jobs is not None:
        tokens = [token.strip() for token in args.sweep_jobs.split(",")]
        if not tokens or any(not token for token in tokens):
            raise _CliError(
                f"bad --sweep-jobs {args.sweep_jobs!r}: empty entry "
                "(use a comma-separated list like 1,4)"
            )
        try:
            sweep_jobs = [int(token) for token in tokens]
        except ValueError:
            raise _CliError(
                f"bad --sweep-jobs {args.sweep_jobs!r}: entries must be "
                "integers (use a comma-separated list like 1,4)"
            ) from None
        invalid = [jobs for jobs in sweep_jobs if jobs < 1]
        if invalid:
            raise _CliError(
                f"bad --sweep-jobs {args.sweep_jobs!r}: jobs values must "
                f"be >= 1, got {invalid}"
            )
    payload = run_bench(
        sizes=sizes,
        steps=args.steps,
        dense_limit=args.dense_limit,
        crossover=args.crossover,
        sweep_jobs=sweep_jobs,
        modes=modes,
    )
    path = write_bench(payload, args.out)
    print(f"benchmark report written to {path}")
    for row in payload["step_benchmarks"]:
        print(
            f"  N={row['n_nodes']:>5d}  {row['mode']:<18s} "
            f"{row['steps_per_sec']:>10.1f} steps/s  "
            f"peak RSS {row['peak_rss_kb'] / 1024:.0f} MiB"
        )
    for baseline, table in (
        ("dense", payload.get("speedup_vs_dense", {})),
        ("edge", payload.get("speedup_vs_edge", {})),
    ):
        for size, per_mode in table.items():
            for mode, speedup in per_mode.items():
                text = (
                    f"{speedup:.1f}x"
                    if isinstance(speedup, float)
                    else speedup
                )
                print(f"  N={size:>5s}  {mode} vs {baseline}: {text}")
    violations = [
        f"  N={size:>5s}  incremental-engine equivalence: {verdict}"
        for size, verdict in payload.get("equivalence", {}).items()
        if verdict != "ok"
    ]
    for line in violations:
        print(f"EQUIVALENCE VIOLATION{line}", file=sys.stderr)
    resources = payload.get("resources") or {}
    if resources.get("samples"):
        rss_max = resources.get("rss_kb_max")
        rss_text = (
            f"{rss_max / 1024:.0f} MiB" if rss_max is not None else "n/a"
        )
        print(
            f"  resources: peak RSS {rss_text}"
            f"  mean CPU {resources['cpu_util_mean']:.2f} cores"
            f"  ({resources['rss_source']})"
        )
    if args.history is not None:
        from .analysis.benchmark import update_bench_history

        try:
            entry, regressions = update_bench_history(
                payload, args.history, threshold=args.regression_threshold
            )
        except (OSError, ValueError) as error:
            raise _CliError(f"bench history: {error}") from None
        print(
            f"bench history: appended {len(entry['points'])} point(s) "
            f"to {args.history}"
        )
        if regressions:
            for line in regressions:
                print(f"  REGRESSION {line}", file=sys.stderr)
            return 1
    # Equivalence violations gate after the history append so the run
    # is still recorded as evidence.
    return 1 if violations else 0


def _run_trace_summary(args) -> int:
    import json as _json

    from .obs import summarize_trace

    try:
        summary = summarize_trace(args.file)
    except OSError as error:
        print(f"cannot read trace: {error}", file=sys.stderr)
        return 2
    except ValueError as error:
        print(f"malformed trace: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(_json.dumps(summary.to_dict(), indent=2))
    else:
        print(summary.render())
    return 0 if summary.reconciles() else 1


class _Telemetry:
    """Telemetry channels opened for one CLI workload."""

    def __init__(self, tracer, registry, timer, sampler, profiler=None):
        self.tracer = tracer
        self.registry = registry
        self.timer = timer
        self.sampler = sampler
        self.profiler = profiler

    def start(self) -> None:
        if self.sampler is not None:
            self.sampler.start()
        if self.profiler is not None:
            self.profiler.enable()

    def finish(self, args) -> None:
        import json as _json
        from pathlib import Path

        if self.profiler is not None:
            self.profiler.disable()
            from .obs.timeline import write_collapsed_profile

            frames = write_collapsed_profile(self.profiler, args.profile)
            print(
                f"profile: {frames} collapsed stack(s) written to "
                f"{args.profile}"
            )
        # The sampler's closing sample still goes through the tracer,
        # so stop it before the trace file is closed.
        if self.sampler is not None:
            self.sampler.stop()
        if self.tracer is not None:
            self.tracer.close()
        if args.metrics_json is not None:
            payload = {
                "schema_version": 1,
                "metrics": self.registry.to_dict(),
                "timing": self.timer.report().to_dict(),
            }
            Path(args.metrics_json).write_text(
                _json.dumps(payload, indent=2) + "\n"
            )
        if getattr(args, "metrics_openmetrics", None) is not None:
            from .obs.openmetrics import write_openmetrics

            write_openmetrics(self.registry, args.metrics_openmetrics)
        if args.progress:
            print()
            print(self.timer.report().render())


def _telemetry_scope(args):
    """Build the observability context requested by CLI flags.

    Returns ``(context manager, telemetry)``; the caller runs the
    workload inside the context manager between ``telemetry.start()``
    and ``telemetry.finish(args)``.
    """
    from .obs import JsonlTracer, MetricsRegistry, PhaseTimer, observe
    from .obs.context import RunHealthConfig
    from .obs.resources import ResourceSampler

    tracer = None
    if args.trace is not None:
        try:
            tracer = JsonlTracer(args.trace, step_every=args.trace_step_every)
        except OSError as error:
            raise _CliError(f"cannot open trace file: {error}") from None
    registry = (
        MetricsRegistry()
        if args.metrics_json is not None
        or getattr(args, "metrics_openmetrics", None) is not None
        else None
    )
    timer = PhaseTimer()
    health = None
    if args.audit != "off":
        health = RunHealthConfig(
            audit_every=args.audit_every,
            strict=args.audit == "strict",
            residual_window=args.residual_window,
            residual_rtol=args.residual_rtol,
        )
    sampler = None
    if args.sample_resources > 0.0:
        if tracer is None:
            raise _CliError("--sample-resources requires --trace")
        sampler = ResourceSampler(
            interval=args.sample_resources, tracer=tracer, timer=timer
        )
    profiler = None
    if args.profile is not None:
        import cProfile

        profiler = cProfile.Profile()
    scope = observe(
        tracer=tracer, registry=registry, timer=timer, health=health
    )
    return scope, _Telemetry(tracer, registry, timer, sampler, profiler)


def _audit_failure(error) -> int:
    print(f"audit failure: {error}", file=sys.stderr)
    return 3


def _run_simulate(args) -> int:
    import json as _json

    from .obs import AuditError
    from .scenario import load_scenario, run_scenario

    scope, telemetry = _telemetry_scope(args)
    telemetry.start()
    try:
        with scope:
            report = run_scenario(load_scenario(args.scenario))
    except AuditError as error:
        return _audit_failure(error)
    except (OSError, _json.JSONDecodeError, ValueError, TypeError) as error:
        # Unreadable file, malformed JSON, or a scenario that fails
        # validation (e.g. unknown keys) — input errors, exit code 2.
        print(f"bad scenario: {error}", file=sys.stderr)
        return 2
    finally:
        telemetry.finish(args)
    if args.json:
        print(_json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    return 0


def _run_run(args) -> int:
    from .obs import AuditError
    from .store import use_store

    ids = experiment_ids() if args.experiment == "all" else [args.experiment]
    csv_dir = None
    if args.csv is not None:
        from pathlib import Path

        csv_dir = Path(args.csv)
        csv_dir.mkdir(parents=True, exist_ok=True)
    store = _resolve_store(args)
    scope, telemetry = _telemetry_scope(args)
    telemetry.start()
    try:
        with scope, use_store(store):
            for experiment_id in ids:
                table = run_experiment(
                    experiment_id, quick=args.quick, jobs=args.jobs
                )
                print(table.render())
                print()
                if csv_dir is not None:
                    table.save_csv(csv_dir / f"{experiment_id}.csv")
    except AuditError as error:
        return _audit_failure(error)
    finally:
        telemetry.finish(args)
    if store is not None:
        print(store.describe())
    return 0


def _run_store(args) -> int:
    from .store import ResultStore, resolve_store_root

    store = ResultStore(resolve_store_root(args.store or None))
    if args.store_command == "stats":
        stats = store.stats()
        print(f"store root       {stats['root']}")
        print(
            f"task records     {stats['records']} "
            f"({stats['record_bytes'] / 1024:.1f} KiB)"
        )
        print(
            f"sweep manifests  {stats['manifests']} "
            f"({stats['manifest_bytes'] / 1024:.1f} KiB)"
        )
        print(f"quarantined      {stats['quarantined']}")
        print(
            f"stored sim time  {stats['stored_elapsed']:.2f}s "
            f"(wall-clock a full re-run would cost)"
        )
        return 0
    if args.store_command == "ls":
        rows = store.ls(limit=args.limit)
        if not rows:
            print(f"no records under {store.root}")
            return 0
        for row in rows:
            elapsed = row.get("elapsed")
            print(
                f"{row['key'][:16]}  {row['bytes']:>7d} B  "
                f"{elapsed if elapsed is None else format(elapsed, '8.3f')}s  "
                f"{row['fn']}"
            )
        return 0
    if args.store_command == "gc":
        removed, freed = store.gc(
            max_size=args.max_size,
            max_age_days=args.max_age,
            dry_run=args.dry_run,
        )
        verb = "would evict" if args.dry_run else "evicted"
        print(f"{verb} {removed} file(s), {freed / 1024:.1f} KiB")
        return 0
    if args.store_command == "verify":
        problems = store.verify(quarantine=args.quarantine)
        checked = sum(1 for _ in store.iter_record_paths()) + (
            len(problems) if args.quarantine else 0
        )
        if not problems:
            print(f"store OK: {checked} record(s) verified under {store.root}")
            return 0
        for path, problem in problems:
            print(f"CORRUPT {path}: {problem}", file=sys.stderr)
        print(
            f"store verify: {len(problems)} corrupt record(s) "
            + ("quarantined" if args.quarantine else "found"),
            file=sys.stderr,
        )
        return 1
    return 2  # pragma: no cover - argparse enforces the choices


def _run_metrics(args) -> int:
    from .obs.openmetrics import registry_from_trace, render_openmetrics

    try:
        registry = registry_from_trace(args.file)
    except OSError as error:
        print(f"cannot read trace: {error}", file=sys.stderr)
        return 2
    except ValueError as error:
        print(f"malformed trace: {error}", file=sys.stderr)
        return 2
    text = render_openmetrics(registry)
    if args.out is not None:
        from pathlib import Path

        Path(args.out).write_text(text, encoding="utf-8")
        print(f"openmetrics written to {args.out}")
    else:
        print(text, end="")
    return 0


def _run_timeline(args) -> int:
    from .obs.timeline import write_timeline

    out = args.out if args.out is not None else f"{args.file}.timeline.json"
    try:
        count = write_timeline(args.file, out)
    except OSError as error:
        print(f"cannot read trace: {error}", file=sys.stderr)
        return 2
    except ValueError as error:
        print(f"malformed trace: {error}", file=sys.stderr)
        return 2
    print(f"timeline: {count} trace event(s) written to {out}")
    return 0


def _run_compare(args) -> int:
    import json as _json

    from .obs.compare import DEFAULT_COMPARE_THRESHOLD, compare_traces

    threshold = (
        args.threshold
        if args.threshold is not None
        else DEFAULT_COMPARE_THRESHOLD
    )
    try:
        comparison = compare_traces(
            args.trace_a, args.trace_b, threshold=threshold
        )
    except OSError as error:
        print(f"cannot read trace: {error}", file=sys.stderr)
        return 2
    except ValueError as error:
        print(f"bad input: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(_json.dumps(comparison.to_dict(), indent=2))
    else:
        print(comparison.render())
    return 0 if comparison.within_threshold else 1


def _run_report(args) -> int:
    from pathlib import Path

    from .obs import build_report

    try:
        report = build_report(args.files)
    except OSError as error:
        print(f"cannot read trace: {error}", file=sys.stderr)
        return 2
    except ValueError as error:
        print(f"malformed trace: {error}", file=sys.stderr)
        return 2
    text = report.render()
    if args.out is not None:
        Path(args.out).write_text(text)
        print(f"run-health report written to {args.out}")
        for problem in report.problems():
            print(f"  PROBLEM {problem}", file=sys.stderr)
    else:
        print(text)
    return 0 if report.healthy else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if hasattr(args, "verbose"):
        from .obs import configure_logging

        configure_logging(
            level=args.log_level,
            verbosity=args.verbose,
            show_progress=getattr(args, "progress", False),
        )
    try:
        if args.command == "list":
            for experiment_id in experiment_ids():
                print(experiment_id)
            return 0
        if args.command == "model":
            return _run_model(args)
        if args.command == "sweep":
            return _run_sweep(args)
        if args.command == "bench":
            return _run_bench(args)
        if args.command == "trace-summary":
            return _run_trace_summary(args)
        if args.command == "metrics":
            return _run_metrics(args)
        if args.command == "timeline":
            return _run_timeline(args)
        if args.command == "compare":
            return _run_compare(args)
        if args.command == "report":
            return _run_report(args)
        if args.command == "store":
            return _run_store(args)
        if args.command == "simulate":
            return _run_simulate(args)
        if args.command == "run":
            return _run_run(args)
    except _CliError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # Telemetry sinks flush on the way out: _run_simulate/_run_run
        # finish their tracer in ``finally`` blocks as the interrupt
        # unwinds, and JsonlTracer keeps an atexit flush as a backstop —
        # a Ctrl-C'd run leaves a parseable trace.
        print("interrupted", file=sys.stderr)
        return 130
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
