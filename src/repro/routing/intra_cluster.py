"""Proactive intra-cluster routing (the hybrid protocol's inner half).

The paper's ROUTE analysis (Section 3.5.3): within every cluster, all
nodes keep proactive routes to all other nodes of the cluster; every
link change *inside* a cluster triggers one round of route-update
broadcasting in which each node of that cluster transmits once.  This
protocol reproduces exactly that accounting — its measured per-node
message rate is the simulation counterpart of Eqn (13) — and also
maintains real intra-cluster routing tables (shortest paths over the
cluster subgraph) so the hybrid protocol can actually forward packets.

Attach order matters: this protocol must be attached *before* the
cluster maintenance protocol so that, for a link break, it still sees
the pre-repair membership (a member–head break is an intra-cluster
change of the old cluster).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..obs.attribution import CAUSE_INTRA_CLUSTER_UPDATE, attributed
from ..sim.engine import Protocol, Simulation
from ..clustering.maintenance import ClusterMaintenanceProtocol
from .messages import route_update_bits

__all__ = ["IntraClusterRoutingProtocol"]


class IntraClusterRoutingProtocol(Protocol):
    """Cluster-scoped proactive distance-vector routing.

    Parameters
    ----------
    maintenance:
        The cluster maintenance protocol owning the cluster state.
    full_table:
        When true, each update message carries the full intra-cluster
        table (``m`` entries); otherwise a single changed entry.  This
        mirrors the two readings of Eqn (14).
    update_on_membership_change:
        When true, affiliation changes also trigger an update round in
        the node's new cluster — traffic the paper's lower bound
        deliberately omits (ablation knob).
    topology:
        ``"all"`` (default): any link change between two co-clustered
        nodes triggers an update round (the paper's reading).
        ``"star"``: only member↔own-head link changes trigger — the
        routing topology is the cluster star, whose link count the
        analysis knows *exactly* (``N(1-P)``), making the
        analysis/simulation comparison approximation-free.
    """

    name = "intra-cluster-routing"

    def __init__(
        self,
        maintenance: ClusterMaintenanceProtocol,
        full_table: bool = False,
        update_on_membership_change: bool = False,
        topology: str = "all",
    ) -> None:
        if topology not in ("all", "star"):
            raise ValueError(
                f"topology must be 'all' or 'star', got {topology!r}"
            )
        self.maintenance = maintenance
        self.full_table = full_table
        self.update_on_membership_change = update_on_membership_change
        self.topology = topology
        self._tables_dirty = True
        self._next_hop: dict[tuple[int, int], int] = {}
        if update_on_membership_change:
            maintenance.add_change_listener(self._on_membership_change)

    # ------------------------------------------------------------------
    # Overhead accounting
    # ------------------------------------------------------------------
    def _broadcast_round(self, sim: Simulation, head: int) -> None:
        """One update round: every node of ``head``'s cluster transmits."""
        cluster = self.maintenance.state.cluster_nodes(head)
        size = len(cluster)
        entries = size if self.full_table else 1
        bits = route_update_bits(sim.params.messages, entries)
        # One transmission per cluster node, charged to each evenly.
        with attributed(
            sim, CAUSE_INTRA_CLUSTER_UPDATE, nodes=cluster, cluster=int(head)
        ):
            sim.stats.record("route", size, size * bits)

    def _handle_link_event(self, sim: Simulation, u: int, v: int) -> None:
        state = self.maintenance.state
        if state.same_cluster(u, v):
            is_star_link = state.head_of[u] == v or state.head_of[v] == u
            if self.topology == "all" or is_star_link:
                self._broadcast_round(sim, int(state.head_of[u]))
        self._tables_dirty = True

    def on_link_up(self, sim: Simulation, u: int, v: int, time: float) -> None:
        self._handle_link_event(sim, u, v)

    def on_link_down(self, sim: Simulation, u: int, v: int, time: float) -> None:
        self._handle_link_event(sim, u, v)

    def _on_membership_change(self, sim: Simulation, node: int, time: float) -> None:
        """Affiliation changed: flood the node's *new* cluster (optional)."""
        head = int(self.maintenance.state.head_of[node])
        self._broadcast_round(sim, head)
        self._tables_dirty = True

    # ------------------------------------------------------------------
    # Actual routing tables
    # ------------------------------------------------------------------
    def _rebuild_tables(self, sim: Simulation) -> None:
        """Recompute next hops over every cluster subgraph (BFS)."""
        self._next_hop = {}
        state = self.maintenance.state
        adjacency = sim.adjacency
        for head in state.heads():
            nodes = state.cluster_nodes(int(head))
            node_set = set(int(x) for x in nodes)
            for source in node_set:
                # BFS restricted to the cluster subgraph.
                parents = {source: source}
                queue = deque([source])
                while queue:
                    current = queue.popleft()
                    for neighbor in np.flatnonzero(adjacency[current]):
                        neighbor = int(neighbor)
                        if neighbor in node_set and neighbor not in parents:
                            parents[neighbor] = current
                            queue.append(neighbor)
                for destination, parent in parents.items():
                    if destination == source:
                        continue
                    # Walk back to find the first hop from source.
                    hop = destination
                    while parents[hop] != source:
                        hop = parents[hop]
                    self._next_hop[(source, destination)] = hop
        self._tables_dirty = False

    def next_hop(self, sim: Simulation, source: int, destination: int) -> int | None:
        """Next hop from ``source`` toward ``destination`` inside a cluster.

        Returns ``None`` when the two nodes are not in the same cluster
        or the cluster subgraph does not connect them (members of a
        one-hop cluster may be mutually unreachable without the head).
        """
        if self._tables_dirty:
            self._rebuild_tables(sim)
        return self._next_hop.get((source, destination))

    def path(self, sim: Simulation, source: int, destination: int) -> list[int] | None:
        """Full intra-cluster path, or ``None`` when not routable."""
        if not self.maintenance.state.same_cluster(source, destination):
            return None
        path = [source]
        current = source
        for _ in range(sim.n_nodes):
            hop = self.next_hop(sim, current, destination)
            if hop is None:
                return None
            path.append(hop)
            if hop == destination:
                return path
            current = hop
        return None  # pragma: no cover - cycle guard

    def table_size(self, sim: Simulation, node: int) -> int:
        """Number of destinations ``node`` keeps routes for.

        The paper notes storage is proportional to the cluster size.
        """
        if self._tables_dirty:
            self._rebuild_tables(sim)
        return sum(1 for (src, _dst) in self._next_hop if src == node)
