"""AODV-style flat reactive routing (Perkins & Royer).

The second flat baseline: no proactive state at all; a route is
discovered on demand by flooding a route request (RREQ) through the
*whole* network — every reached node rebroadcasts once — and unicasting
a route reply (RREP) back along the reverse path, installing hop state
at each intermediate node.  Link breaks on active routes trigger route
errors (RERR) that invalidate the affected entries upstream.

Contrast with the hybrid protocol: there, only cluster-heads and
gateways rebroadcast the flood.  The difference between the two RREQ
transmission counts is precisely the flooding reduction the paper's
introduction credits clustering with.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..obs.attribution import (
    CAUSE_CRASH_RECOVERY,
    CAUSE_LINK_BREAK_REPAIR,
    CAUSE_LOSS_RETRANSMIT,
    CAUSE_ROUTE_DISCOVERY,
    attributed,
)
from ..sim.engine import Protocol, Simulation
from .messages import rerr_bits, rrep_bits, rreq_bits

__all__ = ["AodvProtocol", "AodvRouteState"]


@dataclass
class AodvRouteState:
    """Per-node forward entry of an active route."""

    destination: int
    next_hop: int
    hops: int


class AodvProtocol(Protocol):
    """Flat on-demand routing with full-network RREQ floods.

    Parameters
    ----------
    max_retries:
        Graceful-degradation knob (fault plans): a failed route
        discovery is retried up to this many times with capped
        exponential backoff instead of failing fast.  0 (the default)
        keeps the stock fail-fast behavior.
    retry_backoff, retry_backoff_cap:
        Base delay and cap of that backoff: retry ``k`` (0-based) fires
        ``min(retry_backoff * 2**k, retry_backoff_cap)`` after the
        failed attempt.
    """

    name = "aodv"

    def __init__(
        self,
        max_retries: int = 0,
        retry_backoff: float = 0.5,
        retry_backoff_cap: float = 4.0,
    ) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if retry_backoff <= 0.0 or retry_backoff_cap <= 0.0:
            raise ValueError("retry backoff and cap must be positive")
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.retry_backoff_cap = retry_backoff_cap
        # routes[node][destination] -> AodvRouteState
        self.routes: list[dict[int, AodvRouteState]] = []
        self.discoveries = 0
        self.cache_hits = 0
        #: Retried discoveries actually launched (after backoff expiry).
        self.route_retries = 0
        # Pending retries: (source, destination) -> due time / attempts
        # made so far.  Processed in sorted key order each step end.
        self._pending: dict[tuple[int, int], float] = {}
        self._attempts: dict[tuple[int, int], int] = {}

    def on_attach(self, sim: Simulation) -> None:
        self.routes = [{} for _ in range(sim.n_nodes)]
        self._pending = {}
        self._attempts = {}

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------
    def _flood(self, sim: Simulation, source: int, destination: int):
        """BFS flood; returns (parents, rreq transmission count)."""
        adjacency = sim.adjacency
        faults = sim.faults
        lossy = faults is not None and faults.loss_rate > 0.0
        parents: dict[int, int] = {source: source}
        queue: deque[int] = deque([source])
        transmissions = 0
        while queue:
            current = queue.popleft()
            if current == destination:
                continue  # the destination answers instead of forwarding
            transmissions += 1
            for neighbor in np.flatnonzero(adjacency[current]):
                neighbor = int(neighbor)
                if neighbor not in parents:
                    if lossy and faults.drop():
                        # Lost reception: the neighbor may still be
                        # reached through another rebroadcast.
                        continue
                    parents[neighbor] = current
                    queue.append(neighbor)
        return parents, transmissions

    def discover(
        self,
        sim: Simulation,
        source: int,
        destination: int,
        cause: str = CAUSE_ROUTE_DISCOVERY,
    ) -> list[int] | None:
        """Run one RREQ/RREP cycle; installs hop state and returns the path.

        With ``max_retries > 0`` a failed cycle schedules a backoff
        retry instead of giving up; :meth:`on_step_end` relaunches it
        (charging the retried flood to ``cause='loss-retransmit'``).
        """
        if source == destination:
            return [source]
        parents, rreq_count = self._flood(sim, source, destination)
        messages = sim.params.messages
        self.discoveries += 1
        key = (source, destination)
        if destination not in parents:
            with attributed(sim, cause, node=source):
                sim.stats.record(
                    "aodv", rreq_count, rreq_count * rreq_bits(messages)
                )
            attempts = self._attempts.get(key, 0)
            if attempts < self.max_retries:
                delay = min(
                    self.retry_backoff * 2.0**attempts,
                    self.retry_backoff_cap,
                )
                self._attempts[key] = attempts + 1
                self._pending[key] = sim.time + delay
            else:
                self._pending.pop(key, None)
                self._attempts.pop(key, None)
            return None
        self._pending.pop(key, None)
        self._attempts.pop(key, None)

        path = [destination]
        while path[-1] != source:
            path.append(parents[path[-1]])
        path.reverse()

        rrep_count = len(path) - 1
        with attributed(sim, cause, node=source):
            sim.stats.record(
                "aodv",
                rreq_count + rrep_count,
                rreq_count * rreq_bits(messages)
                + rrep_count * rrep_bits(messages),
            )
        # Install forward entries along the path (toward the destination)
        # and reverse entries (toward the source), as the RREP does.
        for position, node in enumerate(path[:-1]):
            self.routes[node][destination] = AodvRouteState(
                destination, path[position + 1], len(path) - 1 - position
            )
        for position, node in enumerate(path[1:], start=1):
            self.routes[node][source] = AodvRouteState(
                source, path[position - 1], position
            )
        return path

    # ------------------------------------------------------------------
    # Routing service
    # ------------------------------------------------------------------
    def route(self, sim: Simulation, source: int, destination: int) -> list[int] | None:
        """Use installed state when valid, otherwise rediscover."""
        path = self._follow(sim, source, destination)
        if path is not None:
            self.cache_hits += 1
            return path
        return self.discover(sim, source, destination)

    def _follow(self, sim: Simulation, source: int, destination: int) -> list[int] | None:
        if source == destination:
            return [source]
        path = [source]
        current = source
        for _ in range(sim.n_nodes):
            entry = self.routes[current].get(destination)
            if entry is None or not sim.has_link(current, entry.next_hop):
                return None
            path.append(entry.next_hop)
            if entry.next_hop == destination:
                return path
            current = entry.next_hop
        return None

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def on_link_down(self, sim: Simulation, u: int, v: int, time: float) -> None:
        """Invalidate entries through the broken link and emit RERRs.

        RERRs are recorded per transmitting endpoint so the overhead
        ledger can charge each node for its own notifications; the
        per-category totals are unchanged.
        """
        cause = CAUSE_LINK_BREAK_REPAIR
        if sim.faults is not None and sim.faults.is_fault_transition(u, v):
            # The break is a crash/outage transition, not mobility.
            cause = CAUSE_CRASH_RECOVERY
        for node, gone in ((u, v), (v, u)):
            dead = [
                destination
                for destination, entry in self.routes[node].items()
                if entry.next_hop == gone
            ]
            for destination in dead:
                del self.routes[node][destination]
            if dead:
                with attributed(sim, cause, node=node):
                    sim.stats.record(
                        "aodv_rerr",
                        len(dead),
                        len(dead) * rerr_bits(sim.params.messages),
                    )

    def on_step_end(self, sim: Simulation, time: float) -> None:
        """Relaunch route discoveries whose retry backoff has expired."""
        if not self._pending:
            return
        due = sorted(
            key for key, when in self._pending.items() if when <= time
        )
        for key in due:
            if key not in self._pending or self._pending[key] > time:
                continue  # rescheduled by a retry earlier in this pass
            del self._pending[key]
            source, destination = key
            self.route_retries += 1
            if sim.faults is not None:
                sim.faults.count("route_retries_total")
            self.discover(sim, source, destination, cause=CAUSE_LOSS_RETRANSMIT)

    # ------------------------------------------------------------------
    # Crash handling (fault plans)
    # ------------------------------------------------------------------
    def on_node_fail(self, sim: Simulation, node: int, time: float) -> None:
        """State wipe: a crashed node forgets its routing table.

        Entries *through* the node at other nodes are invalidated by
        the RERR path as the engine delivers the mask-induced link
        breaks.  Pending retries it originated are abandoned — a dead
        node cannot flood.
        """
        self.routes[node].clear()
        for key in [k for k in self._pending if k[0] == node]:
            del self._pending[key]
            self._attempts.pop(key, None)

    # ------------------------------------------------------------------
    @property
    def installed_entries(self) -> int:
        """Total forward entries currently installed network-wide."""
        return sum(len(table) for table in self.routes)
