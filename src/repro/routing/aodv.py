"""AODV-style flat reactive routing (Perkins & Royer).

The second flat baseline: no proactive state at all; a route is
discovered on demand by flooding a route request (RREQ) through the
*whole* network — every reached node rebroadcasts once — and unicasting
a route reply (RREP) back along the reverse path, installing hop state
at each intermediate node.  Link breaks on active routes trigger route
errors (RERR) that invalidate the affected entries upstream.

Contrast with the hybrid protocol: there, only cluster-heads and
gateways rebroadcast the flood.  The difference between the two RREQ
transmission counts is precisely the flooding reduction the paper's
introduction credits clustering with.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..obs.attribution import (
    CAUSE_LINK_BREAK_REPAIR,
    CAUSE_ROUTE_DISCOVERY,
    attributed,
)
from ..sim.engine import Protocol, Simulation
from .messages import rerr_bits, rrep_bits, rreq_bits

__all__ = ["AodvProtocol", "AodvRouteState"]


@dataclass
class AodvRouteState:
    """Per-node forward entry of an active route."""

    destination: int
    next_hop: int
    hops: int


class AodvProtocol(Protocol):
    """Flat on-demand routing with full-network RREQ floods."""

    name = "aodv"

    def __init__(self) -> None:
        # routes[node][destination] -> AodvRouteState
        self.routes: list[dict[int, AodvRouteState]] = []
        self.discoveries = 0
        self.cache_hits = 0

    def on_attach(self, sim: Simulation) -> None:
        self.routes = [{} for _ in range(sim.n_nodes)]

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------
    def _flood(self, sim: Simulation, source: int, destination: int):
        """BFS flood; returns (parents, rreq transmission count)."""
        adjacency = sim.adjacency
        parents: dict[int, int] = {source: source}
        queue: deque[int] = deque([source])
        transmissions = 0
        while queue:
            current = queue.popleft()
            if current == destination:
                continue  # the destination answers instead of forwarding
            transmissions += 1
            for neighbor in np.flatnonzero(adjacency[current]):
                neighbor = int(neighbor)
                if neighbor not in parents:
                    parents[neighbor] = current
                    queue.append(neighbor)
        return parents, transmissions

    def discover(self, sim: Simulation, source: int, destination: int) -> list[int] | None:
        """Run one RREQ/RREP cycle; installs hop state and returns the path."""
        if source == destination:
            return [source]
        parents, rreq_count = self._flood(sim, source, destination)
        messages = sim.params.messages
        self.discoveries += 1
        if destination not in parents:
            with attributed(sim, CAUSE_ROUTE_DISCOVERY, node=source):
                sim.stats.record(
                    "aodv", rreq_count, rreq_count * rreq_bits(messages)
                )
            return None

        path = [destination]
        while path[-1] != source:
            path.append(parents[path[-1]])
        path.reverse()

        rrep_count = len(path) - 1
        with attributed(sim, CAUSE_ROUTE_DISCOVERY, node=source):
            sim.stats.record(
                "aodv",
                rreq_count + rrep_count,
                rreq_count * rreq_bits(messages)
                + rrep_count * rrep_bits(messages),
            )
        # Install forward entries along the path (toward the destination)
        # and reverse entries (toward the source), as the RREP does.
        for position, node in enumerate(path[:-1]):
            self.routes[node][destination] = AodvRouteState(
                destination, path[position + 1], len(path) - 1 - position
            )
        for position, node in enumerate(path[1:], start=1):
            self.routes[node][source] = AodvRouteState(
                source, path[position - 1], position
            )
        return path

    # ------------------------------------------------------------------
    # Routing service
    # ------------------------------------------------------------------
    def route(self, sim: Simulation, source: int, destination: int) -> list[int] | None:
        """Use installed state when valid, otherwise rediscover."""
        path = self._follow(sim, source, destination)
        if path is not None:
            self.cache_hits += 1
            return path
        return self.discover(sim, source, destination)

    def _follow(self, sim: Simulation, source: int, destination: int) -> list[int] | None:
        if source == destination:
            return [source]
        path = [source]
        current = source
        for _ in range(sim.n_nodes):
            entry = self.routes[current].get(destination)
            if entry is None or not sim.has_link(current, entry.next_hop):
                return None
            path.append(entry.next_hop)
            if entry.next_hop == destination:
                return path
            current = entry.next_hop
        return None

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def on_link_down(self, sim: Simulation, u: int, v: int, time: float) -> None:
        """Invalidate entries through the broken link and emit RERRs.

        RERRs are recorded per transmitting endpoint so the overhead
        ledger can charge each node for its own notifications; the
        per-category totals are unchanged.
        """
        for node, gone in ((u, v), (v, u)):
            dead = [
                destination
                for destination, entry in self.routes[node].items()
                if entry.next_hop == gone
            ]
            for destination in dead:
                del self.routes[node][destination]
            if dead:
                with attributed(sim, CAUSE_LINK_BREAK_REPAIR, node=node):
                    sim.stats.record(
                        "aodv_rerr",
                        len(dead),
                        len(dead) * rerr_bits(sim.params.messages),
                    )

    # ------------------------------------------------------------------
    @property
    def installed_entries(self) -> int:
        """Total forward entries currently installed network-wide."""
        return sum(len(table) for table in self.routes)
