"""Routing protocols: clustered hybrid and flat baselines."""

from .messages import (
    RouteEntry,
    rerr_bits,
    route_update_bits,
    rrep_bits,
    rreq_bits,
)
from .intra_cluster import IntraClusterRoutingProtocol
from .inter_cluster import (
    BroadcastResult,
    DiscoveryResult,
    broadcast_flood,
    discover_route,
    is_gateway,
)
from .hybrid import HybridRoutingProtocol
from .dsdv import DsdvProtocol
from .aodv import AodvProtocol, AodvRouteState

__all__ = [
    "RouteEntry",
    "rerr_bits",
    "route_update_bits",
    "rrep_bits",
    "rreq_bits",
    "IntraClusterRoutingProtocol",
    "BroadcastResult",
    "DiscoveryResult",
    "broadcast_flood",
    "discover_route",
    "is_gateway",
    "HybridRoutingProtocol",
    "DsdvProtocol",
    "AodvProtocol",
    "AodvRouteState",
]
