"""The hybrid routing protocol: proactive inside, reactive across.

Combines :class:`~repro.routing.intra_cluster.IntraClusterRoutingProtocol`
(proactive, paper Eqn 13 accounting) with backbone route discovery
(:mod:`repro.routing.inter_cluster`) into a complete routing service:

* same-cluster traffic is forwarded from the proactive tables at zero
  marginal control cost;
* cross-cluster traffic triggers a reactive discovery whose result is
  cached and invalidated when one of its links breaks (with an RERR
  notification per surviving upstream hop, AODV-style).

``route(src, dst)`` returns the path actually usable for data delivery;
experiments use the message statistics to compare the hybrid total
against the flat baselines.
"""

from __future__ import annotations

from ..obs.attribution import CAUSE_LINK_BREAK_REPAIR, attributed
from ..sim.engine import Protocol, Simulation
from ..clustering.maintenance import ClusterMaintenanceProtocol
from .inter_cluster import DiscoveryResult, discover_route
from .intra_cluster import IntraClusterRoutingProtocol
from .messages import rerr_bits

__all__ = ["HybridRoutingProtocol"]


class HybridRoutingProtocol(Protocol):
    """Cluster-aware hybrid routing with route caching.

    Parameters
    ----------
    maintenance:
        The cluster maintenance protocol owning the cluster state.
    intra:
        The proactive intra-cluster protocol (attached separately to
        the simulation; this class only consumes its tables).
    """

    name = "hybrid-routing"

    def __init__(
        self,
        maintenance: ClusterMaintenanceProtocol,
        intra: IntraClusterRoutingProtocol,
    ) -> None:
        self.maintenance = maintenance
        self.intra = intra
        self._cache: dict[tuple[int, int], list[int]] = {}
        self.discoveries = 0
        self.cache_hits = 0

    # ------------------------------------------------------------------
    def route(self, sim: Simulation, source: int, destination: int) -> list[int] | None:
        """Return a usable path, running a discovery if needed."""
        if source == destination:
            return [source]
        state = self.maintenance.state
        if state.same_cluster(source, destination):
            return self.intra.path(sim, source, destination)

        cached = self._cache.get((source, destination))
        if cached is not None:
            self.cache_hits += 1
            return cached

        result: DiscoveryResult = discover_route(sim, state, source, destination)
        self.discoveries += 1
        if not result.found:
            return None
        self._cache[(source, destination)] = result.path
        return result.path

    # ------------------------------------------------------------------
    def on_link_down(self, sim: Simulation, u: int, v: int, time: float) -> None:
        """Invalidate cached routes using the broken link, emitting RERRs."""
        broken: list[tuple[int, int]] = []
        for key, path in self._cache.items():
            for a, b in zip(path, path[1:]):
                if (a, b) in ((u, v), (v, u)):
                    broken.append(key)
                    break
        for key in broken:
            path = self._cache.pop(key)
            # One RERR per upstream hop that must learn of the failure.
            upstream = 0
            for a, b in zip(path, path[1:]):
                upstream += 1
                if (a, b) in ((u, v), (v, u)):
                    break
            # One RERR transmission per upstream node of the break.
            with attributed(
                sim, CAUSE_LINK_BREAK_REPAIR, nodes=path[:upstream]
            ):
                sim.stats.record(
                    "route_error",
                    upstream,
                    upstream * rerr_bits(sim.params.messages),
                )

    # ------------------------------------------------------------------
    @property
    def cached_routes(self) -> int:
        """Number of currently cached cross-cluster routes."""
        return len(self._cache)
