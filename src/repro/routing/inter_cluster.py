"""Reactive inter-cluster route discovery (the hybrid protocol's outer half).

The paper assumes "a hybrid routing protocol which uses proactive
intra-cluster routing and reactive inter-cluster routing" and leaves the
reactive half uncounted in its lower bound.  This module implements a
concrete reactive discovery so the hybrid protocol is a complete,
runnable routing system — and so protocol-comparison experiments can
quantify the traffic the clustered structure saves:

Route requests are flooded over the *cluster backbone* only: a node
retransmits an RREQ iff it is a cluster-head or a gateway (a member with
a neighbor outside its own cluster).  Pure interior members stay silent,
which is exactly the flooding reduction clustering buys.  The reply is
unicast back along the discovered path.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..obs.attribution import (
    CAUSE_BROADCAST_FLOOD,
    CAUSE_ROUTE_DISCOVERY,
    attributed,
)
from ..sim.engine import Simulation
from ..clustering.base import ClusterState, Role
from .messages import rrep_bits, rreq_bits

__all__ = [
    "DiscoveryResult",
    "BroadcastResult",
    "is_gateway",
    "discover_route",
    "broadcast_flood",
]


@dataclass(frozen=True)
class DiscoveryResult:
    """Outcome of one reactive route discovery.

    ``path`` is the node sequence from source to destination (``None``
    when unreachable over the backbone); ``rreq_transmissions`` counts
    flood rebroadcasts, ``rrep_transmissions`` the reply unicast hops.
    """

    path: list[int] | None
    rreq_transmissions: int
    rrep_transmissions: int

    @property
    def found(self) -> bool:
        """Whether a route was discovered."""
        return self.path is not None

    @property
    def total_transmissions(self) -> int:
        """All control transmissions of the discovery."""
        return self.rreq_transmissions + self.rrep_transmissions


def is_gateway(state: ClusterState, adjacency: np.ndarray, node: int) -> bool:
    """Whether ``node`` is a gateway (member with out-of-cluster neighbors)."""
    if state.roles[node] != Role.MEMBER:
        return False
    my_head = state.head_of[node]
    neighbors = np.flatnonzero(adjacency[node])
    return bool(np.any(state.head_of[neighbors] != my_head))


def _forwards(state: ClusterState, adjacency: np.ndarray, node: int) -> bool:
    """Whether ``node`` retransmits an RREQ (head or gateway)."""
    return state.roles[node] == Role.HEAD or is_gateway(state, adjacency, node)


@dataclass(frozen=True)
class BroadcastResult:
    """Outcome of one network-wide broadcast.

    ``reached`` counts nodes that received the message (including the
    source); ``transmissions`` counts nodes that retransmitted it.  For
    a blind flood the two are equal; the backbone flood's savings are
    ``reached - transmissions``.
    """

    reached: int
    transmissions: int

    @property
    def savings(self) -> int:
        """Receivers that did not need to retransmit."""
        return self.reached - self.transmissions


def broadcast_flood(
    sim: Simulation,
    source: int,
    state: ClusterState | None = None,
    record_stats: bool = True,
) -> BroadcastResult:
    """Flood a message network-wide, optionally over the cluster backbone.

    With ``state`` given, only cluster-heads and gateways retransmit
    (cluster-based flooding); without it, every reached node does
    (blind flooding, the baseline).  Statistics are recorded under
    ``"broadcast"``.
    """
    adjacency = sim.adjacency
    reached: set[int] = {source}
    queue: deque[int] = deque([source])
    transmissions = 0
    while queue:
        current = queue.popleft()
        if (
            current != source
            and state is not None
            and not _forwards(state, adjacency, current)
        ):
            continue
        transmissions += 1
        for neighbor in np.flatnonzero(adjacency[current]):
            neighbor = int(neighbor)
            if neighbor not in reached:
                reached.add(neighbor)
                queue.append(neighbor)
    result = BroadcastResult(reached=len(reached), transmissions=transmissions)
    if record_stats:
        bits = result.transmissions * rreq_bits(sim.params.messages)
        # Charged to the initiating source: the flood exists because
        # this node broadcast, even though relays transmit it.
        with attributed(sim, CAUSE_BROADCAST_FLOOD, node=source):
            sim.stats.record("broadcast", result.transmissions, bits)
    return result


def discover_route(
    sim: Simulation,
    state: ClusterState,
    source: int,
    destination: int,
    record_stats: bool = True,
) -> DiscoveryResult:
    """Flood an RREQ over the backbone and unicast the RREP back.

    The flood is a deterministic BFS: the source always transmits; a
    reached node retransmits iff it is a head or gateway; the
    destination absorbs the request and answers.  Statistics are
    recorded into ``sim.stats`` under ``"route_discovery"`` unless
    ``record_stats`` is false (e.g. for what-if measurements).
    """
    if source == destination:
        return DiscoveryResult(path=[source], rreq_transmissions=0, rrep_transmissions=0)

    adjacency = sim.adjacency
    parents: dict[int, int] = {source: source}
    queue: deque[int] = deque([source])
    transmissions = 0
    found = False
    while queue:
        current = queue.popleft()
        if current != source and not _forwards(state, adjacency, current):
            continue
        transmissions += 1
        for neighbor in np.flatnonzero(adjacency[current]):
            neighbor = int(neighbor)
            if neighbor in parents:
                continue
            parents[neighbor] = current
            if neighbor == destination:
                found = True
                queue.clear()
                break
            queue.append(neighbor)

    if not found:
        result = DiscoveryResult(
            path=None, rreq_transmissions=transmissions, rrep_transmissions=0
        )
    else:
        path = [destination]
        while path[-1] != source:
            path.append(parents[path[-1]])
        path.reverse()
        result = DiscoveryResult(
            path=path,
            rreq_transmissions=transmissions,
            rrep_transmissions=len(path) - 1,
        )

    if record_stats:
        messages = sim.params.messages
        bits = (
            result.rreq_transmissions * rreq_bits(messages)
            + result.rrep_transmissions * rrep_bits(messages)
        )
        # Charged to the requesting source (see broadcast_flood).
        with attributed(sim, CAUSE_ROUTE_DISCOVERY, node=source):
            sim.stats.record(
                "route_discovery", result.total_transmissions, bits
            )
    return result
