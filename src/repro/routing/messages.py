"""Control message descriptors for the routing layer.

The paper models control traffic at message granularity: what matters
for the overhead analysis is *how many* control transmissions occur and
*how many bits* each carries.  These descriptors standardize the bit
accounting across protocols:

* ROUTE updates carry ``entries * p_route`` bits (``p_route`` is the
  size of one routing table entry, per the paper).
* Reactive control packets (RREQ/RREP/RERR) are modelled as one routing
  entry each — they carry a single (destination, originator, metric)
  tuple.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.params import MessageSizes

__all__ = [
    "RouteEntry",
    "route_update_bits",
    "rreq_bits",
    "rrep_bits",
    "rerr_bits",
]


@dataclass(frozen=True)
class RouteEntry:
    """One distance-vector routing table entry.

    ``sequence`` follows DSDV semantics: even numbers are emitted by the
    destination itself; an odd number marks an infinite-metric (broken)
    route advertised by an intermediate node.
    """

    destination: int
    next_hop: int
    metric: float
    sequence: int = 0

    @property
    def reachable(self) -> bool:
        """Whether the entry denotes a usable route."""
        return self.metric != float("inf")


def route_update_bits(messages: MessageSizes, entries: int) -> float:
    """Bits of a routing update carrying ``entries`` table entries."""
    if entries < 0:
        raise ValueError(f"entry count must be non-negative, got {entries}")
    return messages.p_route * entries


def rreq_bits(messages: MessageSizes) -> float:
    """Bits of a route request broadcast."""
    return messages.p_route


def rrep_bits(messages: MessageSizes) -> float:
    """Bits of a route reply unicast."""
    return messages.p_route


def rerr_bits(messages: MessageSizes) -> float:
    """Bits of a route error notification."""
    return messages.p_route
