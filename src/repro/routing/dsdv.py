"""DSDV-style flat proactive routing (Perkins & Bhagwat).

The baseline the paper's introduction motivates against: every node
keeps a route to *every* destination and periodically broadcasts its
full table; topology changes additionally trigger incremental updates.
The defining DSDV mechanics are implemented faithfully at message
granularity:

* per-destination *sequence numbers*, even when originated by the
  destination, odd when an intermediate node declares the route broken;
* newer sequence number wins; equal sequence prefers the shorter metric;
* periodic full-table broadcasts plus triggered incremental updates on
  *significant* changes (reachability transitions), cascading one hop
  per simulation step;
* a node that hears a broken route *to itself* immediately claims a
  fresh higher sequence number (the repair rule), so repairs supersede
  the poison network-wide.

What is abstracted away (consistently across all protocols in this
package) is the MAC/PHY: broadcasts reach exactly the current
neighbors, without loss or delay.  Overhead is counted in messages and
bits (``entries * p_route``), which is the quantity the paper compares.

Internally the tables are dense NumPy arrays (``metric``, ``sequence``
and ``next_hop`` of shape ``(N, N)``), which keeps the merge step — the
hot path of every flat-proactive simulation — vectorized over
destinations.  The dict-of-:class:`RouteEntry` view the tests and tools
consume is materialized on demand via :attr:`DsdvProtocol.tables`.
"""

from __future__ import annotations

import numpy as np

from ..obs.attribution import (
    CAUSE_DSDV_PERIODIC,
    CAUSE_DSDV_TRIGGERED,
    attributed,
)
from ..sim.engine import Protocol, Simulation
from .messages import RouteEntry, route_update_bits

__all__ = ["DsdvProtocol"]

_NO_HOP = -1


class _TableView:
    """Read-only dict-like view of one node's routing table."""

    def __init__(self, protocol: "DsdvProtocol", node: int) -> None:
        self._protocol = protocol
        self._node = node

    def _entry(self, destination: int) -> RouteEntry | None:
        p, node = self._protocol, self._node
        hop = p._next_hop[node, destination]
        if hop == _NO_HOP:
            return None
        return RouteEntry(
            destination,
            int(hop),
            float(p._metric[node, destination]),
            int(p._sequence[node, destination]),
        )

    def get(self, destination: int, default=None):
        """Entry for ``destination`` or ``default``."""
        entry = self._entry(destination)
        return default if entry is None else entry

    def __getitem__(self, destination: int) -> RouteEntry:
        entry = self._entry(destination)
        if entry is None:
            raise KeyError(destination)
        return entry

    def __contains__(self, destination: int) -> bool:
        return self._protocol._next_hop[self._node, destination] != _NO_HOP

    def __len__(self) -> int:
        return int(
            np.count_nonzero(self._protocol._next_hop[self._node] != _NO_HOP)
        )

    def keys(self):
        """Known destinations."""
        return [
            int(d)
            for d in np.flatnonzero(self._protocol._next_hop[self._node] != _NO_HOP)
        ]

    def items(self):
        """(destination, RouteEntry) pairs."""
        return [(d, self._entry(d)) for d in self.keys()]

    def values(self):
        """RouteEntry values."""
        return [self._entry(d) for d in self.keys()]


class DsdvProtocol(Protocol):
    """Flat destination-sequenced distance-vector routing.

    Parameters
    ----------
    periodic_interval:
        Period of full-table broadcasts (per node, randomly phased).
    """

    name = "dsdv"

    def __init__(self, periodic_interval: float = 1.0) -> None:
        if periodic_interval <= 0.0:
            raise ValueError(
                f"periodic_interval must be positive, got {periodic_interval}"
            )
        self.periodic_interval = periodic_interval
        self._metric: np.ndarray | None = None
        self._sequence: np.ndarray | None = None
        self._next_hop: np.ndarray | None = None
        self._own_sequence: np.ndarray | None = None
        self._next_broadcast: np.ndarray | None = None
        self._pending_triggered: set[int] = set()

    # ------------------------------------------------------------------
    @property
    def tables(self) -> list[_TableView]:
        """Per-node dict-like table views (read-only)."""
        return [_TableView(self, node) for node in range(len(self._metric))]

    # ------------------------------------------------------------------
    def on_attach(self, sim: Simulation) -> None:
        n = sim.n_nodes
        self._metric = np.full((n, n), np.inf)
        self._sequence = np.zeros((n, n), dtype=np.int64)
        self._next_hop = np.full((n, n), _NO_HOP, dtype=np.int64)
        diagonal = np.arange(n)
        self._metric[diagonal, diagonal] = 0.0
        self._next_hop[diagonal, diagonal] = diagonal
        self._own_sequence = np.zeros(n, dtype=np.int64)
        self._next_broadcast = sim.rng.uniform(
            0.0, self.periodic_interval, size=n
        )
        # Converge the initial topology without counting the traffic
        # (formation-stage exclusion, as for clustering).
        for _ in range(n if n < 40 else 40):
            changed = False
            for node in range(n):
                changed |= self._broadcast(sim, node, record=False)
            if not changed:
                break

    # ------------------------------------------------------------------
    # Table mechanics (vectorized over destinations)
    # ------------------------------------------------------------------
    def _broadcast(self, sim: Simulation, node: int, record: bool = True) -> bool:
        """Broadcast ``node``'s full table to all its neighbors at once.

        Each receiver merges the same sender snapshot (vectorized over
        receivers × destinations): a newer sequence number wins; an
        equal sequence with a shorter metric wins; everything else is
        kept.  Receivers whose *reachability* changed for some
        destination schedule a triggered update of their own, so route
        news cascades one hop per simulation step.  The DSDV repair
        rule also runs here: a receiver that hears a broken route to
        itself claims a fresh higher sequence number.
        """
        if record:
            entries = int(np.count_nonzero(self._next_hop[node] != _NO_HOP))
            bits = route_update_bits(sim.params.messages, entries)
            sim.stats.record("dsdv", 1, bits)

        receivers = sim.neighbors_of(node)
        if not len(receivers):
            return False

        advert_metric = self._metric[node]
        advert_sequence = self._sequence[node]
        candidate_metric = advert_metric + 1.0  # inf + 1 stays inf

        current_metric = self._metric[receivers]  # (m, n) copies
        current_sequence = self._sequence[receivers]
        current_hop = self._next_hop[receivers]

        newer = advert_sequence > current_sequence
        better = (advert_sequence == current_sequence) & (
            candidate_metric < current_metric
        )
        adopt = newer | better
        rows = np.arange(len(receivers))
        adopt[rows, receivers] = False  # never adopt a route to oneself

        was_reachable = np.isfinite(current_metric) & (current_hop != _NO_HOP)
        new_metric = np.where(adopt, candidate_metric, current_metric)
        new_sequence = np.where(adopt, advert_sequence, current_sequence)
        new_hop = np.where(adopt, node, current_hop)
        self._metric[receivers] = new_metric
        self._sequence[receivers] = new_sequence
        self._next_hop[receivers] = new_hop

        now_reachable = np.isfinite(new_metric) & (new_hop != _NO_HOP)
        significant = ((was_reachable != now_reachable) & adopt).any(axis=1)
        changed = bool(significant.any())
        self._pending_triggered.update(
            int(r) for r in receivers[significant]
        )

        # Repair rule: receivers hearing a broken route to themselves.
        heard_metric = advert_metric[receivers]
        heard_sequence = advert_sequence[receivers]
        broken_self = (~np.isfinite(heard_metric)) & (
            heard_sequence > self._own_sequence[receivers]
        )
        for receiver in receivers[broken_self]:
            receiver = int(receiver)
            self._own_sequence[receiver] = int(
                advert_sequence[receiver]
            ) + 1
            self._sequence[receiver, receiver] = self._own_sequence[receiver]
            self._pending_triggered.add(receiver)
        return changed

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def on_link_up(self, sim: Simulation, u: int, v: int, time: float) -> None:
        # Fresh sequence numbers advertise the new direct connectivity.
        for node in (u, v):
            self._own_sequence[node] += 2
            self._sequence[node, node] = self._own_sequence[node]
        self._pending_triggered.update((u, v))

    def on_link_down(self, sim: Simulation, u: int, v: int, time: float) -> None:
        # Each endpoint marks routes through the other as broken with an
        # odd (infinite-metric) sequence number — the DSDV break rule.
        # Already-broken (odd) entries keep their sequence so a second
        # break never forges an even number.
        for node, gone in ((u, v), (v, u)):
            through = self._next_hop[node] == gone
            through[node] = False
            if not through.any():
                continue
            self._metric[node, through] = np.inf
            even = through & (self._sequence[node] % 2 == 0)
            self._sequence[node, even] += 1
            self._pending_triggered.add(node)

    def on_step_end(self, sim: Simulation, time: float) -> None:
        due = set(np.flatnonzero(self._next_broadcast <= time).tolist())
        for node in due:
            self._next_broadcast[node] += self.periodic_interval
            # DSDV: a node stamps each periodic dump with a fresh even
            # sequence number of its own; this is what lets repaired
            # routes supersede the odd (infinite-metric) break markers.
            self._own_sequence[node] += 2
            self._sequence[node, node] = self._own_sequence[node]
        senders = sorted(due | self._pending_triggered)
        # Clear before sending: receivers that change during this round
        # re-enter the pending set and broadcast on the *next* step.
        self._pending_triggered.clear()
        for node in senders:
            cause = (
                CAUSE_DSDV_PERIODIC if node in due else CAUSE_DSDV_TRIGGERED
            )
            with attributed(sim, cause, node=int(node)):
                self._broadcast(sim, int(node))

    # ------------------------------------------------------------------
    # Routing service
    # ------------------------------------------------------------------
    def next_hop(self, source: int, destination: int) -> int | None:
        """Next hop from the current table, or ``None`` when unroutable."""
        hop = self._next_hop[source, destination]
        if hop == _NO_HOP or not np.isfinite(self._metric[source, destination]):
            return None
        return int(hop)

    def path(self, sim: Simulation, source: int, destination: int) -> list[int] | None:
        """Follow next hops; ``None`` on dead ends, loops, or stale hops."""
        if source == destination:
            return [source]
        path = [source]
        current = source
        for _ in range(sim.n_nodes):
            hop = self.next_hop(current, destination)
            if hop is None or (hop in path and hop != destination):
                return None
            if not sim.has_link(current, hop) and hop != current:
                return None
            path.append(hop)
            if hop == destination:
                return path
            current = hop
        return None
