"""Canonical fingerprinting of simulation tasks.

A *fingerprint* is a stable content address for one unit of
deterministic work: the SHA-256 of a canonical JSON document that
captures the task's full identity — worker function, every input
(:class:`~repro.core.params.NetworkParameters`, protocol/mobility
configuration objects, seeds), the engine schema version and the
package version.  Two tasks share a fingerprint iff re-running one
would reproduce the other's result bit-for-bit, so the fingerprint is
the key of the :mod:`repro.store.disk` result store.

Canonicalization is *one-way* (hash input, not a serialization format;
:mod:`repro.store.codec` is the reversible counterpart for results)
and dataclass-aware: dataclasses and plain objects are tagged with
their import path so ``LowestIdClustering()`` and
``HighestConnectivityClustering()`` never collide even when their
configuration dicts match.  Dict keys are sorted and JSON is emitted
with fixed separators, so the byte stream — and therefore the hash —
is independent of insertion order and platform.

What invalidates a fingerprint (and therefore the cache):

* any task input changing, including defaults threaded through the
  task tuple (duration, warmup, epoch, seed, message sizes…);
* :data:`repro.sim.engine.ENGINE_SCHEMA_VERSION` being bumped — the
  declaration that engine semantics changed;
* :data:`repro.__version__` changing — the coarse guard for everything
  the schema version does not capture.

Objects that cannot be canonicalized (open files, RNG instances…)
raise :class:`FingerprintError`; callers treat such tasks as
uncacheable and simply run them.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any

__all__ = [
    "FingerprintError",
    "canonicalize",
    "canonical_json",
    "fingerprint",
    "task_identity",
]


class FingerprintError(TypeError):
    """A value has no canonical form (the task is uncacheable)."""


def _import_path(cls: type) -> str:
    return f"{cls.__module__}:{cls.__qualname__}"


def canonicalize(value: Any) -> Any:
    """Reduce ``value`` to a canonical JSON-able structure.

    Supported: JSON scalars, lists/tuples (both become lists — a task
    built from a list is the same task built from a tuple), dicts with
    string keys, dataclasses, NumPy scalars and arrays, module-level
    functions/classes (by import path), and plain objects via their
    ``__dict__`` tagged with their import path.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, (list, tuple)):
        return [canonicalize(item) for item in value]
    if isinstance(value, dict):
        out = {}
        for key in sorted(value):
            if not isinstance(key, str):
                raise FingerprintError(
                    f"dict keys must be strings to fingerprint, got {key!r}"
                )
            out[key] = canonicalize(value[key])
        return out
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            f.name: canonicalize(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return {"__dataclass__": _import_path(type(value)), **fields}
    # NumPy without importing it eagerly: scalars have .item(), arrays
    # have .tolist() + dtype/shape.
    if hasattr(value, "dtype") and hasattr(value, "tolist"):
        dtype = str(value.dtype)
        if getattr(value, "shape", ()) == ():
            return {"__scalar__": dtype, "value": value.item()}
        return {
            "__array__": dtype,
            "shape": list(value.shape),
            "data": value.tolist(),
        }
    if isinstance(value, type) or callable(value):
        module = getattr(value, "__module__", None)
        qualname = getattr(value, "__qualname__", None)
        if not module or not qualname or "<locals>" in qualname:
            raise FingerprintError(
                f"cannot fingerprint non-importable callable {value!r}"
            )
        return {"__callable__": f"{module}:{qualname}"}
    state = getattr(value, "__dict__", None)
    if state is not None:
        return {
            "__object__": _import_path(type(value)),
            "state": canonicalize(state),
        }
    raise FingerprintError(
        f"cannot fingerprint {type(value).__name__!r} value {value!r}"
    )


def canonical_json(doc: Any) -> str:
    """Serialize a canonical structure with a stable byte layout."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def _engine_schema_version() -> int:
    # Looked up at call time (not import time) so a bumped version —
    # including one monkeypatched by the invalidation tests — is always
    # reflected in fresh fingerprints.
    from ..sim import engine

    return engine.ENGINE_SCHEMA_VERSION


def task_identity(fn: Any, task: Any) -> dict:
    """The canonical identity document of one ``run_tasks`` task."""
    from .. import __version__

    return {
        "kind": "task",
        "fn": canonicalize(fn)["__callable__"],
        "task": canonicalize(task),
        "engine_schema": _engine_schema_version(),
        "version": __version__,
    }


def fingerprint(doc: dict) -> str:
    """SHA-256 content address of a canonical identity document."""
    return hashlib.sha256(canonical_json(doc).encode("utf-8")).hexdigest()
