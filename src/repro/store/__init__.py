"""Content-addressed experiment store: incremental & resumable sweeps.

Every sweep/experiment task in this package is a pure function of its
task tuple (parameters + seed), so its result can be memoized on disk
and reused across processes and sessions.  This package provides the
three layers that make that safe:

* :mod:`repro.store.fingerprint` — canonical, dataclass-aware task
  identities hashed to stable SHA-256 content addresses (inputs +
  engine schema version + package version, so stale results
  self-invalidate);
* :mod:`repro.store.codec` — a reversible JSON codec so a cache hit
  reproduces the fresh result exactly (tuples, dataclasses and NumPy
  types included);
* :mod:`repro.store.disk` — the on-disk store itself: atomic writes,
  quarantine-not-crash corruption handling, gc/verify maintenance, and
  sweep-level manifests.

:func:`use_store` makes a store ambient for a whole workload; the task
runner (:func:`repro.analysis.parallel.run_tasks`) consults it before
simulating and writes results back on completion.  See the CLI's
``--store`` family and the ``repro-manet store`` command group.
"""

from .codec import CodecError, decode, encode
from .context import current_store, use_store
from .disk import (
    MISS,
    STORE_ENV_VAR,
    STORE_SCHEMA_VERSION,
    ResultStore,
    default_store_root,
    resolve_store_root,
)
from .fingerprint import (
    FingerprintError,
    canonical_json,
    canonicalize,
    fingerprint,
    task_identity,
)

__all__ = [
    "MISS",
    "STORE_ENV_VAR",
    "STORE_SCHEMA_VERSION",
    "CodecError",
    "FingerprintError",
    "ResultStore",
    "canonical_json",
    "canonicalize",
    "current_store",
    "decode",
    "default_store_root",
    "encode",
    "fingerprint",
    "resolve_store_root",
    "task_identity",
    "use_store",
]
