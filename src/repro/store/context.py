"""Ambient result-store context.

The same pattern as :mod:`repro.obs.context`: experiments assemble
their task lists several layers below the CLI, so instead of threading
a store handle through every experiment signature, the CLI pushes one
ambient :class:`~repro.store.disk.ResultStore` and
:func:`repro.analysis.parallel.run_tasks` picks it up::

    from repro.store import ResultStore, use_store

    with use_store(ResultStore(root)):
        run_experiment("fig1", quick=True)   # per-seed tasks memoized

Contexts nest; the default is ``None`` (no store — every task runs),
so nothing changes for code that never touches this module.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional

from .disk import ResultStore

__all__ = ["current_store", "use_store"]

_stack: list[Optional[ResultStore]] = [None]


def current_store() -> ResultStore | None:
    """The innermost active store (``None`` when caching is off)."""
    return _stack[-1]


@contextmanager
def use_store(store: ResultStore | None):
    """Make ``store`` ambient for the ``with`` body."""
    _stack.append(store)
    try:
        yield store
    finally:
        _stack.pop()
