"""Content-addressed on-disk result store.

Layout (default root ``~/.cache/repro-manet``, overridable with the
``REPRO_MANET_STORE`` environment variable or ``--store PATH``)::

    <root>/
      objects/<kk>/<key>.json     # one record per task fingerprint
      manifests/<key>.json        # one record per completed sweep
      quarantine/<name>           # records that failed to load/verify

Every record is a single JSON document with a ``schema`` version, the
full ``fingerprint`` identity document it was keyed by, and the
:mod:`repro.store.codec`-encoded ``result``.  Writes go through a
``tmp + os.replace`` rename, so records are always either absent or
complete — concurrent writers (``--jobs`` workers, or two independent
processes) racing on the same key each write the identical content and
the last atomic rename wins.  Reads are corruption-tolerant: a record
that is unparseable, has the wrong schema, or mismatches its key is
moved into ``quarantine/`` with a warning and treated as a miss — a
damaged cache can slow a run down, never break it.

The store object itself is a picklable value (paths and flags, no open
handles): ``run_tasks`` ships it to worker processes so *workers write
records* as soon as their task completes and the parent only merges
telemetry — an interrupted ``--jobs 8`` sweep keeps every finished
task.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

from .codec import CodecError, decode, encode
from .fingerprint import fingerprint

__all__ = [
    "MISS",
    "STORE_SCHEMA_VERSION",
    "STORE_ENV_VAR",
    "ResultStore",
    "default_store_root",
    "resolve_store_root",
]

logger = logging.getLogger(__name__)

#: Bump when the record layout changes incompatibly; mismatching
#: records are quarantined on read.
STORE_SCHEMA_VERSION = 1

#: Environment variable naming the store root (and enabling the store
#: by default for CLI runs unless ``--no-store`` is passed).
STORE_ENV_VAR = "REPRO_MANET_STORE"


class _Miss:
    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<MISS>"


#: Sentinel distinguishing "no record" from a stored ``None`` result.
MISS = _Miss()


def default_store_root() -> Path:
    """``$XDG_CACHE_HOME/repro-manet`` or ``~/.cache/repro-manet``."""
    cache_home = os.environ.get("XDG_CACHE_HOME")
    base = Path(cache_home) if cache_home else Path.home() / ".cache"
    return base / "repro-manet"


def resolve_store_root(path: str | os.PathLike | None = None) -> Path:
    """An explicit path, else ``$REPRO_MANET_STORE``, else the default."""
    if path:
        return Path(path)
    env = os.environ.get(STORE_ENV_VAR)
    if env:
        return Path(env)
    return default_store_root()


@dataclass
class ResultStore:
    """Content-addressed store rooted at ``root``.

    ``refresh=True`` skips lookups (every task recomputes) while still
    writing records back — the ``--store-refresh`` semantics.  The
    ``hits``/``misses``/``writes`` counters track this process's view
    for the CLI summary line; the durable counters live in the ambient
    metrics registry (see :mod:`repro.analysis.parallel`).
    """

    root: Path
    refresh: bool = False
    hits: int = field(default=0, compare=False)
    misses: int = field(default=0, compare=False)
    writes: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    @property
    def objects_dir(self) -> Path:
        return self.root / "objects"

    @property
    def manifests_dir(self) -> Path:
        return self.root / "manifests"

    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    def record_path(self, key: str) -> Path:
        return self.objects_dir / key[:2] / f"{key}.json"

    def manifest_path(self, key: str) -> Path:
        return self.manifests_dir / f"{key}.json"

    # ------------------------------------------------------------------
    # Atomic write machinery
    # ------------------------------------------------------------------
    def _write_atomic(self, path: Path, payload: dict) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps(payload, sort_keys=True) + "\n"
        handle, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as tmp:
                tmp.write(text)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def quarantine(self, path: Path, reason: str) -> None:
        """Move a damaged record out of the lookup path, keeping it."""
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        target = self.quarantine_dir / path.name
        suffix = 0
        while target.exists():
            suffix += 1
            target = self.quarantine_dir / f"{path.name}.{suffix}"
        try:
            os.replace(path, target)
        except OSError:
            return  # a concurrent reader already moved it
        logger.warning(
            "store: quarantined corrupt record %s -> %s (%s)",
            path,
            target,
            reason,
        )

    # ------------------------------------------------------------------
    # Task records
    # ------------------------------------------------------------------
    def load_record(self, path: Path) -> dict:
        """Parse and validate one record file; raises ``ValueError``."""
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            raise ValueError(f"unreadable record: {error}")
        if not isinstance(record, dict):
            raise ValueError("record is not a JSON object")
        if record.get("schema") != STORE_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported record schema {record.get('schema')!r} "
                f"(supported: {STORE_SCHEMA_VERSION})"
            )
        for required in ("key", "fingerprint", "result"):
            if required not in record:
                raise ValueError(f"record lacks the {required!r} field")
        return record

    def get(self, key: str):
        """The stored result for ``key``, or :data:`MISS`.

        Corrupt records are quarantined and reported as a miss.
        """
        path = self.record_path(key)
        if not path.exists():
            return MISS
        try:
            record = self.load_record(path)
            if record["key"] != key:
                raise ValueError(
                    f"record key {record['key']!r} does not match its "
                    f"address {key!r}"
                )
            return decode(record["result"])
        except (ValueError, CodecError) as error:
            self.quarantine(path, str(error))
            return MISS

    def put(self, key: str, identity: dict, result, elapsed: float) -> None:
        """Write one task record atomically (last writer wins)."""
        self._write_atomic(
            self.record_path(key),
            {
                "schema": STORE_SCHEMA_VERSION,
                "key": key,
                "fingerprint": identity,
                "result": encode(result),
                "created": time.time(),
                "elapsed": elapsed,
            },
        )

    # ------------------------------------------------------------------
    # Sweep manifests
    # ------------------------------------------------------------------
    def put_manifest(self, key: str, identity: dict, payload: dict) -> None:
        """Write one sweep-level manifest atomically."""
        self._write_atomic(
            self.manifest_path(key),
            {
                "schema": STORE_SCHEMA_VERSION,
                "key": key,
                "fingerprint": identity,
                "created": time.time(),
                **payload,
            },
        )

    def get_manifest(self, key: str):
        """The manifest record for ``key``, or :data:`MISS`."""
        path = self.manifest_path(key)
        if not path.exists():
            return MISS
        try:
            return self.load_record(path)
        except ValueError as error:
            self.quarantine(path, str(error))
            return MISS

    # ------------------------------------------------------------------
    # Maintenance: stats / ls / gc / verify
    # ------------------------------------------------------------------
    def iter_record_paths(self):
        """All task record paths, sorted for stable output."""
        if not self.objects_dir.is_dir():
            return
        for path in sorted(self.objects_dir.glob("*/*.json")):
            yield path

    def stats(self) -> dict:
        """Counts and byte sizes of everything under the root."""
        records = list(self.iter_record_paths())
        manifests = (
            sorted(self.manifests_dir.glob("*.json"))
            if self.manifests_dir.is_dir()
            else []
        )
        quarantined = (
            sorted(p for p in self.quarantine_dir.iterdir() if p.is_file())
            if self.quarantine_dir.is_dir()
            else []
        )
        elapsed = 0.0
        for path in records:
            try:
                elapsed += float(
                    json.loads(path.read_text(encoding="utf-8")).get(
                        "elapsed", 0.0
                    )
                )
            except (OSError, json.JSONDecodeError, TypeError, ValueError):
                pass
        return {
            "root": str(self.root),
            "records": len(records),
            "record_bytes": sum(p.stat().st_size for p in records),
            "manifests": len(manifests),
            "manifest_bytes": sum(p.stat().st_size for p in manifests),
            "quarantined": len(quarantined),
            "stored_elapsed": elapsed,
        }

    def ls(self, limit: int | None = None) -> list[dict]:
        """One summary row per record (newest first)."""
        rows = []
        for path in self.iter_record_paths():
            stat = path.stat()
            row = {
                "key": path.stem,
                "bytes": stat.st_size,
                "mtime": stat.st_mtime,
                "fn": "?",
            }
            try:
                record = json.loads(path.read_text(encoding="utf-8"))
                row["fn"] = record.get("fingerprint", {}).get("fn", "?")
                row["elapsed"] = record.get("elapsed")
            except (OSError, json.JSONDecodeError):
                row["fn"] = "<corrupt>"
            rows.append(row)
        rows.sort(key=lambda r: (-r["mtime"], r["key"]))
        return rows[:limit] if limit else rows

    def gc(
        self,
        max_size: int | None = None,
        max_age_days: float | None = None,
        dry_run: bool = False,
    ) -> tuple[int, int]:
        """Evict records by age and total size; returns (removed, freed).

        Age eviction drops records older than ``max_age_days``; size
        eviction then drops oldest-first until the object tree fits in
        ``max_size`` bytes.  Quarantined files are always eligible.
        """
        removed = 0
        freed = 0

        def drop(path: Path) -> None:
            nonlocal removed, freed
            freed += path.stat().st_size
            removed += 1
            if not dry_run:
                try:
                    os.unlink(path)
                except OSError:
                    pass

        if self.quarantine_dir.is_dir():
            for path in sorted(self.quarantine_dir.iterdir()):
                if path.is_file():
                    drop(path)
        entries = [(p.stat().st_mtime, p) for p in self.iter_record_paths()]
        entries.sort()
        if max_age_days is not None:
            cutoff = time.time() - max_age_days * 86400.0
            keep = []
            for mtime, path in entries:
                if mtime < cutoff:
                    drop(path)
                else:
                    keep.append((mtime, path))
            entries = keep
        if max_size is not None:
            total = sum(path.stat().st_size for _, path in entries)
            while entries and total > max_size:
                mtime, path = entries.pop(0)
                total -= path.stat().st_size
                drop(path)
        return removed, freed

    def verify(self, quarantine: bool = False) -> list[tuple[Path, str]]:
        """Re-hash every record; returns ``(path, problem)`` pairs.

        A record is healthy iff it parses, carries the supported
        schema, its fingerprint re-hashes to both its stored key and
        its on-disk address, and its result decodes.  With
        ``quarantine=True`` broken records are also moved aside.
        """
        problems: list[tuple[Path, str]] = []
        for path in self.iter_record_paths():
            problem = None
            try:
                record = self.load_record(path)
                rehash = fingerprint(record["fingerprint"])
                if rehash != record["key"]:
                    problem = (
                        f"fingerprint re-hashes to {rehash[:12]}…, record "
                        f"claims {record['key'][:12]}…"
                    )
                elif path.stem != record["key"]:
                    problem = (
                        f"record stored at {path.stem[:12]}… but keyed "
                        f"{record['key'][:12]}…"
                    )
                else:
                    decode(record["result"])
            except (ValueError, CodecError) as error:
                problem = str(error)
            if problem is not None:
                problems.append((path, problem))
                if quarantine:
                    self.quarantine(path, problem)
        return problems

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One-line summary for CLI output."""
        total = self.hits + self.misses
        rate = (100.0 * self.hits / total) if total else 0.0
        return (
            f"store: {self.hits} hit(s), {self.misses} miss(es) "
            f"({rate:.1f}% hit rate), {self.writes} record(s) written "
            f"-> {self.root}"
        )
