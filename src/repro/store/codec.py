"""Reversible JSON codec for task results.

:func:`encode` turns the value a ``run_tasks`` worker returned into a
JSON-able document; :func:`decode` reconstructs an *equal* Python value
from it, so a cache hit is indistinguishable from a fresh run
(``decode(encode(x)) == x``, preserving tuple-ness, dataclass types and
NumPy scalar types — the properties downstream aggregation code relies
on).  Unlike :mod:`repro.store.fingerprint`, which only ever hashes,
this codec must round-trip exactly.

Container markers are single-key dicts (``__t__`` tuple, ``__dc__``
dataclass, ``__np__`` NumPy scalar, ``__nd__`` NumPy array, ``__d__``
dict with non-string or marker-colliding keys); plain dicts with string
keys pass through untagged.  Dataclasses are reconstructed by importing
their class and calling the constructor with the stored init fields, so
only dataclasses whose constructor accepts all their fields — every
result type in this package — are supported.
"""

from __future__ import annotations

import dataclasses
import importlib
from typing import Any

__all__ = ["CodecError", "encode", "decode"]

_MARKERS = frozenset({"__t__", "__dc__", "__np__", "__nd__", "__d__"})


class CodecError(ValueError):
    """A value cannot be encoded, or a document cannot be decoded."""


def encode(value: Any) -> Any:
    """Encode a task result into a JSON-able document."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, tuple):
        return {"__t__": [encode(item) for item in value]}
    if isinstance(value, list):
        return [encode(item) for item in value]
    if isinstance(value, dict):
        plain = all(isinstance(key, str) for key in value)
        if plain and not (_MARKERS & set(value)):
            return {key: encode(item) for key, item in value.items()}
        return {"__d__": [[encode(k), encode(v)] for k, v in value.items()]}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            f.name: encode(getattr(value, f.name))
            for f in dataclasses.fields(value)
            if f.init
        }
        return {
            "__dc__": f"{type(value).__module__}:{type(value).__qualname__}",
            "fields": fields,
        }
    import numpy as np

    if isinstance(value, np.generic):
        return {"__np__": str(value.dtype), "value": value.item()}
    if isinstance(value, np.ndarray):
        return {
            "__nd__": str(value.dtype),
            "shape": list(value.shape),
            "data": value.tolist(),
        }
    raise CodecError(
        f"cannot encode {type(value).__name__!r} result value {value!r}"
    )


def _import_class(path: str) -> type:
    module_name, _, qualname = path.partition(":")
    try:
        obj: Any = importlib.import_module(module_name)
        for part in qualname.split("."):
            obj = getattr(obj, part)
    except (ImportError, AttributeError) as error:
        raise CodecError(f"cannot import stored class {path!r}: {error}")
    if not (isinstance(obj, type) and dataclasses.is_dataclass(obj)):
        raise CodecError(f"stored class {path!r} is not a dataclass")
    return obj


def decode(doc: Any) -> Any:
    """Reconstruct the Python value an :func:`encode` document describes."""
    if doc is None or isinstance(doc, (bool, int, float, str)):
        return doc
    if isinstance(doc, list):
        return [decode(item) for item in doc]
    if isinstance(doc, dict):
        if "__t__" in doc:
            return tuple(decode(item) for item in doc["__t__"])
        if "__d__" in doc:
            return {decode(k): decode(v) for k, v in doc["__d__"]}
        if "__dc__" in doc:
            cls = _import_class(doc["__dc__"])
            fields = {
                name: decode(value)
                for name, value in doc["fields"].items()
            }
            try:
                return cls(**fields)
            except TypeError as error:
                raise CodecError(
                    f"cannot reconstruct {doc['__dc__']}: {error}"
                )
        if "__np__" in doc:
            import numpy as np

            return np.dtype(doc["__np__"]).type(doc["value"])
        if "__nd__" in doc:
            import numpy as np

            return np.asarray(doc["data"], dtype=doc["__nd__"]).reshape(
                doc["shape"]
            )
        return {key: decode(value) for key, value in doc.items()}
    raise CodecError(f"cannot decode document node {doc!r}")
