"""Declarative scenario runner.

A *scenario* is a JSON-serializable description of one complete
simulation — network parameters, mobility model, clustering algorithm,
routing stack, HELLO mode, data-plane flows, and run lengths — that the
runner turns into an assembled protocol stack, executes, and summarizes.
This is the adoption surface for users who want results without writing
orchestration code::

    repro-manet simulate scenario.json

Example scenario::

    {
      "name": "campus",
      "n_nodes": 200,
      "range_fraction": 0.15,
      "velocity_fraction": 0.05,
      "mobility": {"model": "epoch-rwp", "epoch": 1.0},
      "clustering": {"algorithm": "lid"},
      "routing": "hybrid",
      "hello": {"mode": "event"},
      "duration": 20.0,
      "warmup": 2.0,
      "seed": 0,
      "flows": [{"source": 0, "destination": 10, "interval": 0.5}]
    }
"""

from __future__ import annotations

import json
import logging
from dataclasses import asdict, dataclass, field
from pathlib import Path

from .clustering import (
    ClusterMaintenanceProtocol,
    DmacClustering,
    HighestConnectivityClustering,
    LowestIdClustering,
)
from .core.params import MessageSizes, NetworkParameters
from .mobility import (
    ConstantVelocityModel,
    EpochRandomWaypointModel,
    GaussMarkovModel,
    ManhattanModel,
    RandomDirectionModel,
    RandomWalkModel,
    RandomWaypointModel,
)
from .routing import (
    AodvProtocol,
    DsdvProtocol,
    HybridRoutingProtocol,
    IntraClusterRoutingProtocol,
)
from .sim import (
    AodvRouterAdapter,
    CbrFlow,
    DsdvRouterAdapter,
    HelloProtocol,
    HybridRouterAdapter,
    Simulation,
    TrafficProtocol,
)
from .spatial import Boundary

__all__ = ["ScenarioConfig", "ScenarioReport", "run_scenario", "load_scenario"]

logger = logging.getLogger(__name__)

_CLUSTERING_ALGORITHMS = {
    "lid": LowestIdClustering,
    "hcc": HighestConnectivityClustering,
    "dmac": DmacClustering,
}

_ROUTING_STACKS = ("hybrid", "dsdv", "aodv", "none")


def _build_mobility(spec: dict, velocity: float):
    """Instantiate a mobility model from its scenario spec."""
    spec = dict(spec)
    model = spec.pop("model", "epoch-rwp")
    half, x1_5 = 0.5 * velocity, 1.5 * velocity
    if model == "cv":
        return ConstantVelocityModel(velocity)
    if model == "epoch-rwp":
        return EpochRandomWaypointModel(velocity, epoch=spec.get("epoch", 1.0))
    if model == "rwp":
        return RandomWaypointModel(
            (spec.get("v_min", half), spec.get("v_max", x1_5)),
            (spec.get("pause_min", 0.0), spec.get("pause_max", 0.0)),
        )
    if model == "walk":
        return RandomWalkModel(
            (spec.get("v_min", half), spec.get("v_max", x1_5)),
            interval=spec.get("interval", 1.0),
        )
    if model == "direction":
        return RandomDirectionModel(
            (spec.get("v_min", half), spec.get("v_max", x1_5)),
            pause=spec.get("pause", 0.0),
        )
    if model == "gauss-markov":
        return GaussMarkovModel(velocity, alpha=spec.get("alpha", 0.75))
    if model == "manhattan":
        return ManhattanModel(
            (spec.get("v_min", half), spec.get("v_max", x1_5)),
            blocks=spec.get("blocks", 5),
        )
    raise ValueError(f"unknown mobility model {model!r}")


@dataclass(frozen=True)
class ScenarioConfig:
    """Validated scenario description."""

    name: str
    n_nodes: int
    range_fraction: float
    velocity_fraction: float
    mobility: dict = field(default_factory=lambda: {"model": "epoch-rwp"})
    clustering: dict = field(default_factory=lambda: {"algorithm": "lid"})
    routing: str = "hybrid"
    hello: dict = field(default_factory=lambda: {"mode": "event"})
    #: Optional beacon/control block (see
    #: :func:`repro.sim.beacon.hello_from_config`); when present it
    #: supersedes the legacy ``hello`` block and unlocks
    #: ``mode: "adaptive"`` with a policy spec.
    beacon: dict | None = None
    boundary: str = "torus"
    duration: float = 20.0
    warmup: float = 2.0
    seed: int = 0
    flows: list = field(default_factory=list)
    messages: dict = field(default_factory=dict)
    #: Optional fault-injection block (see
    #: :func:`repro.faults.fault_config_from_dict`): crash/loss/outage
    #: schedule plus graceful-degradation knobs.  The compiled plan is
    #: a pure function of this block, the network size, the run horizon
    #: and the seed.
    faults: dict | None = None

    def __post_init__(self) -> None:
        if self.routing not in _ROUTING_STACKS:
            raise ValueError(
                f"routing must be one of {_ROUTING_STACKS}, got {self.routing!r}"
            )
        algorithm = self.clustering.get("algorithm", "lid")
        if algorithm not in _CLUSTERING_ALGORITHMS:
            raise ValueError(
                f"clustering.algorithm must be one of "
                f"{tuple(_CLUSTERING_ALGORITHMS)}, got {algorithm!r}"
            )
        if self.duration <= 0.0 or self.warmup < 0.0:
            raise ValueError("duration must be positive, warmup non-negative")
        if self.beacon is not None:
            # Build-and-discard: surfaces unknown keys, unknown policy
            # names and invalid parameters at load time, with the same
            # errors the runner would hit.
            from .sim.beacon import hello_from_config

            hello_from_config(self.beacon)
        if self.faults is not None:
            from .faults import fault_config_from_dict

            fault_config_from_dict(self.faults)

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioConfig":
        """Build (and validate) a config from parsed JSON.

        Unknown top-level keys are rejected with the full list of
        valid keys, so a typo like ``"mobilty"`` fails loudly instead
        of silently running with defaults.
        """
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown scenario keys: {sorted(unknown)}; "
                f"valid keys are: {sorted(known)}"
            )
        return cls(**data)

    def to_dict(self) -> dict:
        """JSON-serializable view; ``from_dict`` round-trips it."""
        return asdict(self)

    def network_parameters(self) -> NetworkParameters:
        """The derived :class:`NetworkParameters`."""
        messages = MessageSizes(**self.messages) if self.messages else None
        return NetworkParameters.from_fractions(
            n_nodes=self.n_nodes,
            range_fraction=self.range_fraction,
            velocity_fraction=self.velocity_fraction,
            messages=messages,
        )


@dataclass
class ScenarioReport:
    """Everything one scenario run produced."""

    name: str
    frequencies: dict[str, float]
    overheads: dict[str, float]
    total_overhead: float
    head_ratio: float | None
    cluster_count: int | None
    traffic: dict[str, float] | None

    def to_dict(self) -> dict:
        """JSON-serializable view."""
        return asdict(self)

    def render(self) -> str:
        """Human-readable multi-line summary."""
        lines = [f"scenario: {self.name}"]
        for category in sorted(self.frequencies):
            lines.append(
                f"  {category:16s} {self.frequencies[category]:10.4g} msg/node/t"
                f"  {self.overheads[category]:12.4g} bits/node/t"
            )
        lines.append(f"  {'total overhead':16s} {self.total_overhead:23.4g} bits/node/t")
        if self.head_ratio is not None:
            lines.append(
                f"  clusters: {self.cluster_count}  (P = {self.head_ratio:.4f})"
            )
        if self.traffic is not None:
            lines.append(
                "  traffic: delivery {delivery:.2%}, latency {latency:.3g}, "
                "hops {hops:.3g} ({delivered}/{generated} delivered)".format(
                    **self.traffic
                )
            )
        return "\n".join(lines)


def load_scenario(path) -> ScenarioConfig:
    """Load a scenario JSON file."""
    data = json.loads(Path(path).read_text())
    return ScenarioConfig.from_dict(data)


def run_scenario(config: ScenarioConfig) -> ScenarioReport:
    """Assemble the stack described by ``config``, run it, summarize."""
    logger.info(
        "scenario %s: N=%d routing=%s duration=%g warmup=%g",
        config.name,
        config.n_nodes,
        config.routing,
        config.duration,
        config.warmup,
    )
    params = config.network_parameters()
    mobility = _build_mobility(config.mobility, params.velocity)
    sim = Simulation(
        params, mobility, boundary=Boundary(config.boundary), seed=config.seed
    )

    fault_config = None
    if config.faults is not None:
        from .faults import attach_faults, build_plan, fault_config_from_dict

        fault_config = fault_config_from_dict(config.faults)
        plan = build_plan(
            fault_config,
            config.n_nodes,
            horizon=config.warmup + config.duration,
            seed=config.seed,
        )
        attach_faults(sim, plan)

    miss_limit = (
        fault_config.hello_miss_limit if fault_config is not None else None
    )
    maintenance = None
    router_adapter = None
    needs_clustering = config.routing == "hybrid"
    hello_mode = config.hello.get("mode", "event")
    if config.routing in ("hybrid", "aodv") or config.routing == "none":
        if config.beacon is not None:
            from .sim.beacon import hello_from_config

            beacon_spec = dict(config.beacon)
            if (
                miss_limit is not None
                and beacon_spec.get("mode", "event") != "event"
                and "miss_limit" not in beacon_spec
            ):
                # The fault block's degradation knob, unless the beacon
                # block pins its own.
                beacon_spec["miss_limit"] = miss_limit
            sim.attach(hello_from_config(beacon_spec))
        else:
            sim.attach(
                HelloProtocol(
                    hello_mode,
                    interval=config.hello.get("interval", 1.0),
                    miss_limit=(
                        miss_limit if hello_mode != "event" else None
                    ),
                )
            )
    if needs_clustering or config.routing == "none":
        algorithm_spec = dict(config.clustering)
        algorithm_name = algorithm_spec.pop("algorithm", "lid")
        algorithm = _CLUSTERING_ALGORITHMS[algorithm_name](**algorithm_spec)
        maintenance = ClusterMaintenanceProtocol(algorithm)
    if config.routing == "hybrid":
        intra = IntraClusterRoutingProtocol(maintenance)
        sim.attach(intra)
        sim.attach(maintenance)
        hybrid = sim.attach(HybridRoutingProtocol(maintenance, intra))
        router_adapter = HybridRouterAdapter(hybrid)
    elif config.routing == "dsdv":
        dsdv = sim.attach(DsdvProtocol())
        router_adapter = DsdvRouterAdapter(dsdv)
    elif config.routing == "aodv":
        if fault_config is not None:
            aodv = sim.attach(
                AodvProtocol(
                    max_retries=fault_config.route_retries,
                    retry_backoff=fault_config.route_retry_backoff,
                    retry_backoff_cap=fault_config.route_retry_cap,
                )
            )
        else:
            aodv = sim.attach(AodvProtocol())
        router_adapter = AodvRouterAdapter(aodv)
    else:  # "none": clustering only
        sim.attach(maintenance)

    # Run-health protocols (invariant auditor + residual monitor) when
    # the ambient context carries a RunHealthConfig.  Only categories
    # the assembled stack actually produces are bound-checked: HELLO
    # needs the beacon protocol, CLUSTER the maintenance protocol, and
    # ROUTE the hybrid (proactive intra-cluster) stack.
    from .obs.health import attach_run_health

    health_categories = []
    if any(p.name == "hello" for p in sim.protocols):
        health_categories.append("hello")
    if maintenance is not None:
        health_categories.append("cluster")
    if config.routing == "hybrid":
        health_categories.append("route")
    attach_run_health(
        sim, maintenance, categories=tuple(health_categories)
    )
    # Cluster-dynamics time series when the run is traced (no-op
    # otherwise) — must attach before the run starts so window sums
    # reconcile with trace event counts.
    from .clustering.stability import attach_cluster_dynamics

    attach_cluster_dynamics(sim, maintenance)
    # Overhead attribution (per-cause / per-node / per-cluster ledger)
    # when the run is traced or exporting metrics; no-op otherwise.
    from .obs.attribution import attach_attribution

    attach_attribution(sim, maintenance)

    traffic_protocol = None
    if config.flows:
        if router_adapter is None:
            raise ValueError(
                "scenario declares flows but routing is 'none'"
            )
        flows = [CbrFlow(**flow) for flow in config.flows]
        traffic_protocol = sim.attach(
            TrafficProtocol(flows, router_adapter)
        )

    stats = sim.run(duration=config.duration, warmup=config.warmup)

    traffic_summary = None
    if traffic_protocol is not None:
        outcome = traffic_protocol.traffic
        traffic_summary = {
            "generated": outcome.generated,
            "delivered": outcome.delivered,
            "dropped": outcome.dropped,
            "delivery": outcome.delivery_ratio(),
            "latency": outcome.mean_latency(),
            "hops": outcome.mean_hops(),
        }

    return ScenarioReport(
        name=config.name,
        frequencies=stats.frequencies(),
        overheads=stats.overheads(),
        total_overhead=stats.total_overhead(),
        head_ratio=maintenance.head_ratio() if maintenance else None,
        cluster_count=maintenance.cluster_count() if maintenance else None,
        traffic=traffic_summary,
    )
