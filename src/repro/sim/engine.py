"""Time-stepped MANET simulation kernel.

The paper validated its analysis with GloMoSim; this kernel is the
Python substitute (see DESIGN.md, substitutions).  It advances a
mobility model in fixed steps, maintains the exact unit-disk
connectivity after every step as a sorted **edge set** (an ``(E, 2)``
pair array — ``O(E)`` state instead of an ``O(N^2)`` matrix), diffs
consecutive edge sets into link generation/break events in
``O(E log E)``, and delivers those events — in deterministic order — to
attached protocols (HELLO beaconing, clustering maintenance, routing).
A dense boolean :attr:`Simulation.adjacency` view is still available
for consumers that index into a matrix; it is materialized lazily from
the edge set and cached until the next step.  Message accounting flows
into a shared :class:`~repro.sim.stats.MessageStats`.

The kernel is fully instrumented (see :mod:`repro.obs`): every step
charges its phases (mobility advance, adjacency recompute, link diff,
each protocol's hooks) to a :class:`~repro.obs.timing.PhaseTimer`, and
a tracer — the no-op null tracer unless one is configured explicitly or
through the ambient observability context — receives structured
``step`` / ``link_up`` / ``link_down`` / ``msg_tx`` events.

The step size must be small enough that a link is unlikely to appear
*and* disappear within one step; :func:`recommended_step` provides the
standard choice (a small fraction of ``r / v``).
"""

from __future__ import annotations

import itertools
import logging
from time import perf_counter

import numpy as np

from ..core.params import NetworkParameters
from ..mobility.base import MobilityModel
from ..obs import context as obs_context
from ..obs.spans import SpanTracker
from ..obs.timing import PhaseTimer, TimingReport
from ..spatial import (
    Boundary,
    IncrementalConnectivityEngine,
    LinkEvents,
    SquareRegion,
    UniformGridIndex,
    compute_edges,
    degree_counts_from_edges,
    diff_edge_sets,
    edges_to_adjacency,
    select_connectivity_method,
)
from .stats import MessageStats

__all__ = [
    "ENGINE_SCHEMA_VERSION",
    "Protocol",
    "Simulation",
    "recommended_step",
]

logger = logging.getLogger(__name__)

#: Version of the engine's *result semantics*.  Bump whenever a change
#: to the kernel (or to any protocol it drives) can alter the numbers a
#: simulation run produces — stepping rules, event ordering, RNG use,
#: message accounting.  The value is folded into every task fingerprint
#: (:mod:`repro.store.fingerprint`), so bumping it invalidates all
#: previously stored results at once; purely structural refactors that
#: provably preserve outputs must NOT bump it, or the cache loses its
#: point.
ENGINE_SCHEMA_VERSION = 1


def recommended_step(tx_range: float, velocity: float, fraction: float = 0.05) -> float:
    """Step size so nodes move at most ``fraction * r`` per step.

    Relative node speed is at most ``2 v``, so ``dt = fraction * r / (2 v)``
    keeps per-step link-state churn well below one event per pair.
    Returns a default of 0.1 for static networks.
    """
    if tx_range <= 0.0:
        raise ValueError(f"tx_range must be positive, got {tx_range}")
    if velocity <= 0.0:
        return 0.1
    return fraction * tx_range / (2.0 * velocity)


class Protocol:
    """Base class for everything the simulation drives.

    Subclasses override the hooks they need.  Hook order per step:
    ``on_step_begin`` → link events (``on_link_up`` / ``on_link_down``,
    interleaved in deterministic pair order) → ``on_step_end``.

    Every subclass must declare a distinct ``name``: it is the label
    under which the protocol's hook time is charged
    (``protocol:<name>`` in the timing report) and the key
    :meth:`Simulation.attach` uses to reject double-attachment.
    """

    name: str = "protocol"

    def on_attach(self, sim: "Simulation") -> None:
        """Called once when attached, after the simulation is initialized."""

    def on_step_begin(self, sim: "Simulation", time: float) -> None:
        """Called after mobility advanced, before link events are delivered."""

    def on_link_up(self, sim: "Simulation", u: int, v: int, time: float) -> None:
        """A link appeared between nodes ``u`` and ``v`` (``u < v``)."""

    def on_link_down(self, sim: "Simulation", u: int, v: int, time: float) -> None:
        """A link disappeared between nodes ``u`` and ``v`` (``u < v``)."""

    def on_step_end(self, sim: "Simulation", time: float) -> None:
        """Called after all link events of the step were delivered."""

    def on_node_fail(self, sim: "Simulation", node: int, time: float) -> None:
        """``node`` crashed: wipe any state the protocol keeps *at* it.

        Fired by the engine's fault phase (see :mod:`repro.faults`)
        before the step's link events are delivered.  The crash also
        breaks all the node's links, so handlers at *other* nodes react
        through their ordinary ``on_link_down`` path; this hook only
        models the loss of the crashed node's own memory.
        """

    def on_node_recover(self, sim: "Simulation", node: int, time: float) -> None:
        """``node``'s radio came back (with the state wiped at crash)."""

    def on_run_end(self, sim: "Simulation", time: float) -> None:
        """Called once when a measurement run finishes.

        Fired by :meth:`Simulation.run` after the measurement window
        closes (and by drivers that step manually, via
        :meth:`Simulation.notify_run_end`) — the hook run-health
        protocols use to flush partial windows and emit final verdicts.
        """


class Simulation:
    """Synchronous time-stepped simulation of ``N`` mobile nodes.

    Parameters
    ----------
    params:
        Network parameters (node count, density/side, range, speed,
        message sizes).  The region side is derived from them.
    mobility:
        A mobility model instance; it is reset by the constructor.
    boundary:
        Region boundary rule; the paper's simulations wrap (torus).
    dt:
        Step size; defaults to :func:`recommended_step`.
    seed:
        Seed for mobility and any protocol randomness.
    tracer:
        Structured event sink; defaults to the ambient observability
        context's tracer (the no-op null tracer unless configured).
    timer:
        Phase timer; defaults to the ambient context's shared timer,
        or a private one when none is configured.
    connectivity:
        How the per-step edge set is computed: ``"auto"`` (default)
        lets the measured cost model pick, ``"grid"`` forces the
        uniform grid index, ``"dense"`` forces the dense metric, and
        ``"incremental"`` forces the temporal-coherence engine
        (:class:`~repro.spatial.IncrementalConnectivityEngine`).  All
        methods produce identical edge sets and link events; the knob
        exists for benchmarking and for densities where the model's
        assumptions break down.
    """

    _instance_ids = itertools.count()

    def __init__(
        self,
        params: NetworkParameters,
        mobility: MobilityModel,
        boundary: Boundary = Boundary.TORUS,
        dt: float | None = None,
        seed: int | None = 0,
        tracer=None,
        timer: PhaseTimer | None = None,
        connectivity: str = "auto",
    ) -> None:
        self.params = params
        self.region = SquareRegion(params.side, boundary)
        self.mobility = mobility
        self.dt = dt if dt is not None else recommended_step(
            params.tx_range, params.velocity
        )
        if self.dt <= 0.0:
            raise ValueError(f"dt must be positive, got {self.dt}")
        self.rng = np.random.default_rng(seed)
        self.seed = seed

        context = obs_context.current()
        #: Sequential id distinguishing this run's events in shared
        #: traces and registries.
        self.sim_id = next(Simulation._instance_ids)
        self.tracer = tracer if tracer is not None else context.tracer
        self.timer = timer if timer is not None else (
            context.timer if context.timer is not None else PhaseTimer()
        )
        if context.registry is not None:
            self.stats = MessageStats(
                params.n_nodes,
                registry=context.registry,
                labels={"sim": str(self.sim_id)},
            )
        else:
            self.stats = MessageStats(params.n_nodes)
        if self.tracer.enabled:
            self.stats.on_record = self._trace_msg_tx
        #: Overhead-attribution ledger, set by
        #: :func:`repro.obs.attribution.attach_attribution`; ``None``
        #: (the default) makes every ``attributed(...)`` scope a no-op.
        self.attribution = None
        #: Fault injector, set by :func:`repro.faults.attach_faults`;
        #: ``None`` (the default) skips the fault phase entirely, so an
        #: un-faulted run is byte-identical to one on a kernel without
        #: fault support.
        self.faults = None
        #: Hierarchical causal span stack (run → phase → step →
        #: handler) writing to the same tracer; see repro.obs.spans.
        self.spans = SpanTracker(self.tracer, self.sim_id)
        self._run_span_open = False
        self._phase_span_open = False
        self._phase_name: str | None = None

        self.time = 0.0
        self._protocols: list[Protocol] = []
        #: Signal taps (see :meth:`add_signal_tap`): pure observers of
        #: each step's link events, fed before protocol hooks run.
        self._signal_taps: list = []

        self.mobility.reset(params.n_nodes, self.region, seed)
        if connectivity == "auto":
            connectivity = select_connectivity_method(
                params.n_nodes,
                params.tx_range,
                self.region.side,
                velocity=params.velocity,
                dt=self.dt,
            )
        if connectivity not in ("dense", "grid", "incremental"):
            raise ValueError(
                "connectivity must be 'auto', 'dense', 'grid' or "
                f"'incremental', got {connectivity!r}"
            )
        self.connectivity = connectivity
        self._index: UniformGridIndex | None = None
        self._incremental: IncrementalConnectivityEngine | None = None
        if connectivity == "grid":
            self._index = UniformGridIndex(self.region, params.tx_range)
        elif connectivity == "incremental":
            self._incremental = IncrementalConnectivityEngine(
                self.region, params.tx_range
            )
        #: Radio state per node; failed nodes keep moving but hold no links.
        self.active = np.ones(params.n_nodes, dtype=bool)
        #: Whether every radio was active at the end of the previous
        #: step; the incremental fast-path events are only valid when no
        #: external masking happened on either side of the diff.
        self._prev_all_active = True
        #: Primary connectivity state: sorted (E, 2) edge array, i < j.
        if self._incremental is not None:
            initial = self._incremental.step(self.mobility.positions).edges
        else:
            initial = compute_edges(
                self.region,
                self.mobility.positions,
                params.tx_range,
                self._index,
                method=connectivity,
            )
        self.edges = self._mask_failed(initial)
        self._adjacency_cache: np.ndarray | None = None
        logger.debug(
            "sim %d: N=%d side=%.4g r=%.4g v=%.4g dt=%.4g seed=%s",
            self.sim_id,
            params.n_nodes,
            params.side,
            params.tx_range,
            params.velocity,
            self.dt,
            seed,
        )

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def _trace_msg_tx(self, category: str, messages: int, bits: float) -> None:
        fields = {
            "sim": self.sim_id,
            "category": category,
            "messages": int(messages),
            "bits": float(bits),
        }
        # Attribute the transmission to the innermost materialized span
        # (the handler that sent it, or the phase/run otherwise).
        span = self.spans.current
        if span is not None:
            fields["span"] = span
        self.tracer.emit("msg_tx", self.time, **fields)

    def _sync_phase_span(self) -> None:
        """Keep the open ``phase`` span aligned with ``stats.measuring``.

        Called at the top of each step while a run span is open: the
        first step opens the ``warmup`` (or ``measure``) phase span,
        and the warmup→measure transition closes one and opens the
        other, so every step/handler span nests under the phase that
        contains it.
        """
        phase = "measure" if self.stats.measuring else "warmup"
        if self._phase_span_open and phase == self._phase_name:
            return
        if self._phase_span_open:
            self.spans.end(self.time)
        self.spans.start(phase, "phase", self.time)
        self._phase_span_open = True
        self._phase_name = phase

    def trace_run_begin(self, duration: float, warmup: float) -> None:
        """Emit the ``run_begin`` boundary event (no-op when untraced).

        :meth:`run` calls this automatically; drivers that step the
        simulation manually (e.g. sweeps sampling mid-run state) should
        call it when opening their measurement window so traces stay
        reconcilable.
        """
        if self.tracer.enabled:
            self.tracer.emit(
                "run_begin",
                self.time,
                sim=self.sim_id,
                n_nodes=self.params.n_nodes,
                dt=self.dt,
                duration=float(duration),
                warmup=float(warmup),
                protocols=[p.name for p in self._protocols],
            )
            # Plain "run": the sim id already labels every record's
            # ``sim`` field, and embedding it in the name would go
            # stale when the parallel merge remaps worker sim ids.
            self.spans.start("run", "run", self.time)
            self._run_span_open = True

    def notify_run_end(self) -> None:
        """Deliver ``on_run_end`` to every protocol, charged to its phase.

        :meth:`run` calls this automatically after the measurement
        window closes; drivers that step the simulation manually should
        call it before :meth:`trace_run_end` so run-health protocols
        can flush their final telemetry into the trace.
        """
        for protocol in self._protocols:
            h0 = perf_counter()
            protocol.on_run_end(self, self.time)
            self.timer.add(f"protocol:{protocol.name}", perf_counter() - h0)

    def trace_run_end(self) -> None:
        """Emit ``run_end`` with final totals (no-op when untraced)."""
        if self.tracer.enabled:
            # Close the phase and run spans (and, defensively, any
            # handler span a protocol left open) before the boundary
            # event so every span_end falls inside the run's records.
            self.spans.unwind(self.time)
            self._run_span_open = False
            self._phase_span_open = False
            self._phase_name = None
            self.tracer.emit(
                "run_end",
                self.time,
                sim=self.sim_id,
                measured_time=self.stats.measured_time,
                totals={
                    category: {
                        "messages": totals.messages,
                        "bits": totals.bits,
                    }
                    for category, totals in self.stats.totals.items()
                },
            )

    def timing_report(self) -> TimingReport:
        """Per-phase wall-clock breakdown accumulated so far."""
        return self.timer.report()

    # ------------------------------------------------------------------
    # Topology accessors
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Number of nodes in the simulation."""
        return self.params.n_nodes

    @property
    def positions(self) -> np.ndarray:
        """Current node positions."""
        return self.mobility.positions

    @property
    def adjacency(self) -> np.ndarray:
        """Dense boolean adjacency view of the live edge set.

        Materialized lazily and cached until the next step, so runs
        whose protocols never index into a matrix stay ``O(E)``.
        """
        if self._adjacency_cache is None:
            self._adjacency_cache = edges_to_adjacency(
                self.edges, self.params.n_nodes
            )
        return self._adjacency_cache

    @property
    def edge_count(self) -> int:
        """Number of live links."""
        return len(self.edges)

    def degrees(self) -> np.ndarray:
        """Per-node degree vector from the live edge set."""
        return degree_counts_from_edges(self.edges, self.params.n_nodes)

    def neighbors_of(self, node: int) -> np.ndarray:
        """Current neighbor indices of ``node`` from the live adjacency."""
        return np.flatnonzero(self.adjacency[node])

    def degree_of(self, node: int) -> int:
        """Current degree of ``node``."""
        return int(self.adjacency[node].sum())

    def has_link(self, u: int, v: int) -> bool:
        """Whether ``u`` and ``v`` are currently connected."""
        return bool(self.adjacency[u, v])

    # ------------------------------------------------------------------
    # Protocol management
    # ------------------------------------------------------------------
    def attach(self, protocol: Protocol) -> Protocol:
        """Attach a protocol; returns it for chaining.

        Protocol names must be unique per simulation — they key the
        timing/trace labels, so a collision would silently merge two
        protocols' telemetry.
        """
        for existing in self._protocols:
            if existing.name == protocol.name:
                raise ValueError(
                    f"a protocol named {protocol.name!r} is already "
                    "attached; give each attached protocol a distinct "
                    "`name`"
                )
        self._protocols.append(protocol)
        protocol.on_attach(self)
        return protocol

    @property
    def protocols(self) -> tuple[Protocol, ...]:
        """Attached protocols in delivery order."""
        return tuple(self._protocols)

    def add_signal_tap(self, tap) -> None:
        """Register ``tap(sim, events)`` to observe each step's link events.

        Taps run after the step's edge set and events are final but
        *before* any protocol hook, so ``on_step_end`` decisions (e.g.
        an adaptive beacon policy) see signals that already include the
        current step.  Taps must be pure observers — no RNG draws, no
        message recording, no trace emission — so that registering one
        cannot change a run's results (their wall-clock cost is charged
        to the ``control_signals`` timing phase).
        """
        self._signal_taps.append(tap)

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def fail_node(self, node: int) -> None:
        """Crash ``node``'s radio: all its links break at the next step.

        The node keeps moving (a dead radio does not stop the vehicle);
        attached protocols observe ordinary link-down events, so no
        special crash handling is required of them.
        """
        self.active[node] = False
        if self._incremental is not None:
            self._incremental.invalidate()

    def recover_node(self, node: int) -> None:
        """Bring ``node``'s radio back; links re-form at the next step."""
        self.active[node] = True
        if self._incremental is not None:
            self._incremental.invalidate()

    @property
    def failed_nodes(self) -> np.ndarray:
        """Indices of currently failed nodes."""
        return np.flatnonzero(~self.active)

    def _mask_failed(self, edges: np.ndarray) -> np.ndarray:
        """Drop edges with a failed endpoint from an edge set."""
        if self.active.all():
            return edges
        alive = self.active[edges[:, 0]] & self.active[edges[:, 1]]
        return edges[alive]

    def notify_node_fail(self, node: int) -> None:
        """Deliver ``on_node_fail`` (state wipe) to every protocol.

        Protocols are duck-typed (see :meth:`attach`), so hooks are
        looked up with ``getattr`` — an attached object predating the
        fault hooks simply does not hear about crashes.
        """
        for protocol in self._protocols:
            hook = getattr(protocol, "on_node_fail", None)
            if hook is not None:
                hook(self, node, self.time)

    def notify_node_recover(self, node: int) -> None:
        """Deliver ``on_node_recover`` to every protocol."""
        for protocol in self._protocols:
            hook = getattr(protocol, "on_node_recover", None)
            if hook is not None:
                hook(self, node, self.time)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def step(self) -> LinkEvents:
        """Advance one step and deliver link events; returns the events."""
        timer = self.timer
        t0 = perf_counter()
        positions = self.mobility.advance(self.dt)
        t1 = perf_counter()
        timer.add("mobility", t1 - t0)
        if self.faults is not None:
            # Fault phase: apply scheduled crash/recover events and
            # outage-region membership *before* connectivity is
            # recomputed, so the new radio mask shapes this step's edge
            # set and the resulting link events.  Transitions fire at
            # the post-step clock, matching the link events they cause.
            self.faults.advance(self, self.time + self.dt, positions)
            t1b = perf_counter()
            timer.add("faults", t1b - t1)
            t1 = t1b
        all_active = bool(self.active.all())
        if self._incremental is not None:
            result = self._incremental.step(positions)
            new_edges = self._mask_failed(result.edges)
            t2 = perf_counter()
            # The engine's mask-diff events describe the *unmasked*
            # connectivity; they stand in for diff_edge_sets only while
            # no radio was failed on either side of the diff.
            if (
                result.events is not None
                and all_active
                and self._prev_all_active
            ):
                events = result.events
            else:
                events = diff_edge_sets(self.edges, new_edges)
            t3 = perf_counter()
            # Keep the sub-phases disjoint: "adjacency" is the engine
            # step minus the revalidation portion, which gets its own
            # label so the attribution stays honest.
            timer.add("adjacency", (t2 - t1) - result.revalidate_seconds)
            if not result.rebuilt:
                timer.add(
                    "incremental_revalidate", result.revalidate_seconds
                )
        else:
            new_edges = self._mask_failed(
                compute_edges(
                    self.region,
                    positions,
                    self.params.tx_range,
                    self._index,
                    method=self.connectivity,
                )
            )
            t2 = perf_counter()
            events = diff_edge_sets(self.edges, new_edges)
            t3 = perf_counter()
            timer.add("adjacency", t2 - t1)
        timer.add("link_diff", t3 - t2)
        self._prev_all_active = all_active
        self.edges = new_edges
        self._adjacency_cache = None
        self.time += self.dt
        self.stats.advance_time(self.dt)

        if self._signal_taps:
            s0 = perf_counter()
            for tap in self._signal_taps:
                tap(self, events)
            timer.add("control_signals", perf_counter() - s0)

        tracer = self.tracer
        if tracer.enabled:
            for u, v in events.broken:
                tracer.emit(
                    "link_down", self.time, sim=self.sim_id, u=int(u), v=int(v)
                )
            for u, v in events.generated:
                tracer.emit(
                    "link_up", self.time, sim=self.sim_id, u=int(u), v=int(v)
                )

        track_spans = tracer.enabled
        if track_spans:
            if self._run_span_open:
                self._sync_phase_span()
            # Lazy: the step span only reaches the trace if a handler
            # span materializes inside it, so quiet steps cost nothing.
            self.spans.start_lazy("step", "step", self.time)

        protocols = self._protocols
        if protocols:
            spent = [0.0] * len(protocols)
            for index, protocol in enumerate(protocols):
                h0 = perf_counter()
                protocol.on_step_begin(self, self.time)
                spent[index] += perf_counter() - h0
            for u, v in events.broken:
                u, v = int(u), int(v)
                for index, protocol in enumerate(protocols):
                    h0 = perf_counter()
                    protocol.on_link_down(self, u, v, self.time)
                    spent[index] += perf_counter() - h0
            for u, v in events.generated:
                u, v = int(u), int(v)
                for index, protocol in enumerate(protocols):
                    h0 = perf_counter()
                    protocol.on_link_up(self, u, v, self.time)
                    spent[index] += perf_counter() - h0
            for index, protocol in enumerate(protocols):
                h0 = perf_counter()
                protocol.on_step_end(self, self.time)
                spent[index] += perf_counter() - h0
            for protocol, seconds in zip(protocols, spent):
                timer.add(f"protocol:{protocol.name}", seconds)

        if track_spans:
            self.spans.end(self.time)

        if tracer.enabled:
            tracer.emit(
                "step",
                self.time,
                sim=self.sim_id,
                ups=int(events.generation_count),
                downs=int(events.break_count),
                measuring=self.stats.measuring,
            )
        return events

    def run(self, duration: float, warmup: float = 0.0) -> MessageStats:
        """Run ``warmup`` unmeasured time then ``duration`` measured time.

        Warm-up lets the cluster structure reach steady state so that —
        as in the paper — only the *maintenance* stage is measured.
        Returns the statistics object.
        """
        if duration <= 0.0:
            raise ValueError(f"duration must be positive, got {duration}")
        if warmup < 0.0:
            raise ValueError(f"warmup must be non-negative, got {warmup}")
        warmup_steps = int(round(warmup / self.dt))
        measured_steps = max(1, int(round(duration / self.dt)))
        self.trace_run_begin(duration, warmup)
        logger.info(
            "sim %d: running %d warm-up + %d measured steps (dt=%.4g)",
            self.sim_id,
            warmup_steps,
            measured_steps,
            self.dt,
        )
        wall_start = perf_counter()
        self.stats.stop_measuring()
        for _ in range(warmup_steps):
            self.step()
        self.stats.start_measuring()
        for _ in range(measured_steps):
            self.step()
        self.stats.stop_measuring()
        self.notify_run_end()
        logger.info(
            "sim %d: finished in %.2fs wall-clock",
            self.sim_id,
            perf_counter() - wall_start,
        )
        self.trace_run_end()
        return self.stats
