"""Packet-level data plane: traffic generation and hop-by-hop forwarding.

The paper evaluates the *control* plane only; this module adds the data
plane a downstream user needs to study what the control overhead buys:
constant-bit-rate flows are injected between node pairs, packets move
one hop per simulation step (modelling a per-hop transmission slot),
and delivery ratio / end-to-end latency / path stretch are recorded.

Routing is abstracted behind :class:`NextHopRouter`, with adapters for
the three protocol stacks in :mod:`repro.routing`, so identical traffic
can be replayed against each of them.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from .engine import Protocol, Simulation

__all__ = [
    "Packet",
    "TrafficStats",
    "NextHopRouter",
    "HybridRouterAdapter",
    "DsdvRouterAdapter",
    "AodvRouterAdapter",
    "CbrFlow",
    "TrafficProtocol",
]


@dataclass
class Packet:
    """One data packet in flight."""

    packet_id: int
    source: int
    destination: int
    created: float
    current: int
    hops: int = 0

    @property
    def at_destination(self) -> bool:
        """Whether the packet has reached its destination."""
        return self.current == self.destination


@dataclass
class TrafficStats:
    """Aggregate data-plane outcomes."""

    generated: int = 0
    delivered: int = 0
    dropped: int = 0
    latencies: list[float] = field(default_factory=list)
    hop_counts: list[int] = field(default_factory=list)

    @property
    def in_flight(self) -> int:
        """Packets neither delivered nor dropped yet."""
        return self.generated - self.delivered - self.dropped

    def delivery_ratio(self) -> float:
        """Delivered / completed (delivered + dropped)."""
        completed = self.delivered + self.dropped
        if completed == 0:
            return float("nan")
        return self.delivered / completed

    def mean_latency(self) -> float:
        """Mean end-to-end latency of delivered packets (sim time)."""
        if not self.latencies:
            return float("nan")
        return float(np.mean(self.latencies))

    def mean_hops(self) -> float:
        """Mean hop count of delivered packets."""
        if not self.hop_counts:
            return float("nan")
        return float(np.mean(self.hop_counts))


class NextHopRouter(abc.ABC):
    """Adapter interface: one forwarding decision at a time."""

    @abc.abstractmethod
    def next_hop(self, sim: Simulation, node: int, destination: int) -> int | None:
        """The neighbor ``node`` forwards toward ``destination``, or None."""


class HybridRouterAdapter(NextHopRouter):
    """Forwarding through the clustered hybrid protocol."""

    def __init__(self, hybrid) -> None:
        self.hybrid = hybrid

    def next_hop(self, sim: Simulation, node: int, destination: int) -> int | None:
        path = self.hybrid.route(sim, node, destination)
        if path is None or len(path) < 2:
            return None
        return path[1]


class DsdvRouterAdapter(NextHopRouter):
    """Forwarding from DSDV tables."""

    def __init__(self, dsdv) -> None:
        self.dsdv = dsdv

    def next_hop(self, sim: Simulation, node: int, destination: int) -> int | None:
        hop = self.dsdv.next_hop(node, destination)
        if hop is None or not sim.has_link(node, hop):
            return None
        return hop


class AodvRouterAdapter(NextHopRouter):
    """Forwarding from AODV route state, rediscovering on demand."""

    def __init__(self, aodv) -> None:
        self.aodv = aodv

    def next_hop(self, sim: Simulation, node: int, destination: int) -> int | None:
        path = self.aodv.route(sim, node, destination)
        if path is None or len(path) < 2:
            return None
        return path[1]


@dataclass(frozen=True)
class CbrFlow:
    """A constant-bit-rate flow: one packet every ``interval`` time units."""

    source: int
    destination: int
    interval: float
    start: float = 0.0

    def __post_init__(self) -> None:
        if self.source == self.destination:
            raise ValueError("flow endpoints must differ")
        if self.interval <= 0.0:
            raise ValueError(f"interval must be positive, got {self.interval}")
        if self.start < 0.0:
            raise ValueError(f"start must be non-negative, got {self.start}")


class TrafficProtocol(Protocol):
    """Injects CBR flows and forwards packets one hop per step.

    Parameters
    ----------
    flows:
        The constant-bit-rate flows to run.
    router:
        Forwarding decisions.
    max_hops:
        TTL: packets exceeding this hop count are dropped (guards
        against forwarding loops in stale tables).
    """

    name = "traffic"

    def __init__(
        self,
        flows: list[CbrFlow],
        router: NextHopRouter,
        max_hops: int = 64,
    ) -> None:
        if max_hops < 1:
            raise ValueError(f"max_hops must be positive, got {max_hops}")
        self.flows = list(flows)
        self.router = router
        self.max_hops = max_hops
        self.traffic = TrafficStats()
        self._in_flight: list[Packet] = []
        self._next_emission: list[float] = [
            max(flow.start, 0.0) for flow in self.flows
        ]
        self._next_packet_id = 0

    # ------------------------------------------------------------------
    def _emit_due_packets(self, time: float) -> None:
        for index, flow in enumerate(self.flows):
            while self._next_emission[index] <= time:
                self._in_flight.append(
                    Packet(
                        packet_id=self._next_packet_id,
                        source=flow.source,
                        destination=flow.destination,
                        created=self._next_emission[index],
                        current=flow.source,
                    )
                )
                self._next_packet_id += 1
                self.traffic.generated += 1
                self._next_emission[index] += flow.interval

    def _forward_packets(self, sim: Simulation, time: float) -> None:
        survivors: list[Packet] = []
        for packet in self._in_flight:
            hop = self.router.next_hop(sim, packet.current, packet.destination)
            if hop is None:
                self.traffic.dropped += 1
                continue
            if not sim.has_link(packet.current, hop):
                self.traffic.dropped += 1
                continue
            packet.current = hop
            packet.hops += 1
            if packet.at_destination:
                self.traffic.delivered += 1
                self.traffic.latencies.append(time - packet.created)
                self.traffic.hop_counts.append(packet.hops)
            elif packet.hops >= self.max_hops:
                self.traffic.dropped += 1
            else:
                survivors.append(packet)
        self._in_flight = survivors

    def on_step_end(self, sim: Simulation, time: float) -> None:
        self._emit_due_packets(time)
        self._forward_packets(sim, time)

    # ------------------------------------------------------------------
    @property
    def in_flight_count(self) -> int:
        """Packets currently traversing the network."""
        return len(self._in_flight)
