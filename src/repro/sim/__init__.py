"""Time-stepped MANET simulator (the GloMoSim substitute)."""

from .engine import (
    ENGINE_SCHEMA_VERSION,
    Protocol,
    Simulation,
    recommended_step,
)
from .beacon import HelloProtocol
from .stats import CategoryTotals, MessageStats, RateSeries
from .traffic import (
    AodvRouterAdapter,
    CbrFlow,
    DsdvRouterAdapter,
    HybridRouterAdapter,
    NextHopRouter,
    Packet,
    TrafficProtocol,
    TrafficStats,
)

__all__ = [
    "ENGINE_SCHEMA_VERSION",
    "Protocol",
    "Simulation",
    "recommended_step",
    "HelloProtocol",
    "CategoryTotals",
    "MessageStats",
    "RateSeries",
    "AodvRouterAdapter",
    "CbrFlow",
    "DsdvRouterAdapter",
    "HybridRouterAdapter",
    "NextHopRouter",
    "Packet",
    "TrafficProtocol",
    "TrafficStats",
]
