"""Control-message accounting for simulations.

The paper's evaluation counts three categories of control messages —
HELLO, CLUSTER and ROUTE — and reports *per-node frequencies* (messages
per node per unit time, Figures 1–3) and *overheads* (bits per node per
unit time).  :class:`MessageStats` is the single accounting point every
protocol records into; it supports a warm-up barrier so transient
cluster-formation traffic is excluded, exactly as the paper excludes the
initial cluster formation stage.

Storage is backed by a :class:`~repro.obs.metrics.MetricsRegistry`:
each category owns a ``messages_total`` and a ``bits_total`` counter
(labelled ``category=...`` plus any instance labels), so the same
numbers are available both through the legacy accessor API below and
through a shared registry export (``repro-manet ... --metrics-json``).
Reading an unrecorded category returns zero without creating counters —
a typo'd query can no longer pollute :meth:`frequencies` output.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..obs.metrics import Counter, MetricsRegistry

__all__ = ["MessageStats", "CategoryTotals", "RateSeries"]


@dataclass
class CategoryTotals:
    """Message count and bit total for one message category."""

    messages: int = 0
    bits: float = 0.0


class MessageStats:
    """Per-category message counters over a measurement window.

    Parameters
    ----------
    n_nodes:
        Number of nodes, for per-node normalization.
    registry:
        Metrics registry backing the counters.  Defaults to a private
        registry; pass a shared one (with distinguishing ``labels``)
        to aggregate several runs into one export.
    labels:
        Extra labels stamped on every counter this instance creates
        (e.g. ``{"sim": "3"}`` when sharing a registry across runs).
    """

    def __init__(
        self,
        n_nodes: int,
        registry: MetricsRegistry | None = None,
        labels: dict[str, str] | None = None,
    ) -> None:
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be positive, got {n_nodes}")
        self.n_nodes = n_nodes
        self.registry = MetricsRegistry() if registry is None else registry
        self.labels = dict(labels) if labels else {}
        self.measured_time = 0.0
        self._measuring = False
        self._categories: dict[str, tuple[Counter, Counter]] = {}
        #: Optional ``(category, messages, bits)`` callback fired for
        #: every record inside the measurement window — the hook the
        #: simulation uses to mirror records into a trace as ``msg_tx``
        #: events, guaranteeing trace/stats reconciliation.
        self.on_record = None

    # ------------------------------------------------------------------
    # Measurement window control
    # ------------------------------------------------------------------
    def start_measuring(self) -> None:
        """Open the measurement window (end of warm-up)."""
        self._measuring = True

    def stop_measuring(self) -> None:
        """Close the measurement window."""
        self._measuring = False

    @property
    def measuring(self) -> bool:
        """Whether records are currently being counted."""
        return self._measuring

    def advance_time(self, dt: float) -> None:
        """Accumulate measured wall-clock (simulated) time."""
        if dt < 0.0:
            raise ValueError(f"dt must be non-negative, got {dt}")
        if self._measuring:
            self.measured_time += dt

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _counters(self, category: str) -> tuple[Counter, Counter]:
        pair = self._categories.get(category)
        if pair is None:
            pair = (
                self.registry.counter(
                    "messages_total", category=category, **self.labels
                ),
                self.registry.counter(
                    "bits_total", category=category, **self.labels
                ),
            )
            self._categories[category] = pair
        return pair

    def record(self, category: str, messages: int = 1, bits: float = 0.0) -> None:
        """Record ``messages`` transmissions totalling ``bits`` bits.

        Records outside the measurement window are dropped (warm-up).
        """
        if messages < 0 or bits < 0.0:
            raise ValueError("message and bit counts must be non-negative")
        if not self._measuring:
            return
        message_counter, bit_counter = self._counters(category)
        message_counter.inc(messages)
        bit_counter.inc(bits)
        if self.on_record is not None:
            self.on_record(category, messages, bits)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def totals(self) -> dict[str, CategoryTotals]:
        """Snapshot of every recorded category's totals."""
        return {
            category: CategoryTotals(
                int(message_counter.value), float(bit_counter.value)
            )
            for category, (message_counter, bit_counter) in (
                self._categories.items()
            )
        }

    def message_count(self, category: str) -> int:
        """Total messages recorded in ``category`` (0 when never seen)."""
        pair = self._categories.get(category)
        return 0 if pair is None else int(pair[0].value)

    def bit_count(self, category: str) -> float:
        """Total bits recorded in ``category`` (0 when never seen)."""
        pair = self._categories.get(category)
        return 0.0 if pair is None else float(pair[1].value)

    def per_node_frequency(self, category: str) -> float:
        """Messages per node per unit time — the paper's ``f_*`` metrics."""
        if self.measured_time <= 0.0:
            raise ValueError("no measured time accumulated yet")
        return self.message_count(category) / (self.n_nodes * self.measured_time)

    def per_node_overhead(self, category: str) -> float:
        """Bits per node per unit time — the paper's ``O_*`` metrics."""
        if self.measured_time <= 0.0:
            raise ValueError("no measured time accumulated yet")
        return self.bit_count(category) / (self.n_nodes * self.measured_time)

    def frequencies(self) -> dict[str, float]:
        """Per-node frequencies of all recorded categories."""
        return {
            category: self.per_node_frequency(category)
            for category in sorted(self._categories)
        }

    def overheads(self) -> dict[str, float]:
        """Per-node overheads of all recorded categories."""
        return {
            category: self.per_node_overhead(category)
            for category in sorted(self._categories)
        }

    def total_overhead(self) -> float:
        """Summed per-node overhead across every category."""
        return sum(self.overheads().values())


@dataclass
class RateSeries:
    """Windowed per-node message-rate time series for one category.

    Attach to a simulation loop by calling :meth:`sample` once per step
    (or less often); each completed window of ``window`` simulated time
    yields one rate sample.  Used to observe convergence/steady-state
    of control traffic instead of a single end-of-run average.
    """

    stats: MessageStats
    category: str
    window: float
    times: list[float] = field(default_factory=list)
    rates: list[float] = field(default_factory=list)
    _window_start_time: float = 0.0
    _window_start_count: int = 0
    _started: bool = False

    def __post_init__(self) -> None:
        if self.window <= 0.0:
            raise ValueError(f"window must be positive, got {self.window}")

    def sample(self, time: float) -> None:
        """Record a sample boundary if a full window has elapsed."""
        if not self._started:
            self._window_start_time = time
            self._window_start_count = self.stats.message_count(self.category)
            self._started = True
            return
        elapsed = time - self._window_start_time
        if elapsed + 1e-12 < self.window:
            return
        count = self.stats.message_count(self.category)
        rate = (count - self._window_start_count) / (
            self.stats.n_nodes * elapsed
        )
        self.times.append(time)
        self.rates.append(rate)
        self._window_start_time = time
        self._window_start_count = count

    def steady_state_rate(self, skip_fraction: float = 0.25) -> float:
        """Mean rate after discarding the first ``skip_fraction`` windows."""
        if not self.rates:
            raise ValueError("no completed windows yet")
        skip = int(len(self.rates) * skip_fraction)
        tail = self.rates[skip:] or self.rates
        return float(sum(tail) / len(tail))
