"""HELLO beaconing and neighbor discovery.

Three operating modes, matching the paper's HELLO analysis (Section
3.5.1) and the adaptive control plane built on top of it:

* ``event`` — the paper's lower bound: a node transmits a HELLO exactly
  when it gains a new neighbor (``f_hello = lambda_gen``), and link
  breaks are detected for free by the soft-timer abstraction.  This is
  the mode used to reproduce Figures 1–3.
* ``periodic`` — a realistic beacon: every node broadcasts each
  ``interval`` (with per-node random phase) and removes a neighbor it
  has not heard for ``timeout``.  Used by the detection-latency
  ablation (DESIGN.md item 4) to quantify the gap between the lower
  bound and a deployable beacon.
* ``adaptive`` — the closed-loop mode: a
  :class:`~repro.control.policies.BeaconPolicy` picks each node's next
  interval from measured link dynamics
  (:class:`~repro.control.signals.ControlSignals`, fed by an engine
  signal tap), timers run heterogeneously per node, and each node
  advertises an expiry of ``timeout_multiple x`` its *own* current
  interval.  Under the non-adaptive ``fixed`` policy this path
  reproduces ``periodic`` bit for bit — same RNG draws, same float
  arithmetic, same attribution cause — which is exactly what the
  compare-gated regression test pins.

In every mode the protocol maintains per-node neighbor lists, which
downstream protocols may consume instead of the oracle adjacency.
"""

from __future__ import annotations

import numpy as np

from ..control.policies import POLICIES, BeaconPolicy, build_policy
from ..control.signals import ControlSignals
from ..obs import context as obs_context
from ..obs.attribution import (
    CAUSE_EVENT_HELLO,
    CAUSE_LOSS_RETRANSMIT,
    CAUSE_PERIODIC_HELLO,
    attributed,
)
from .engine import Protocol, Simulation

__all__ = ["HelloProtocol", "hello_from_config"]

#: Histogram bucket bounds for adaptive-beacon telemetry.
INTERVAL_BUCKETS = (0.1, 0.2, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0)
STALENESS_BUCKETS = (0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0)
LATENCY_BUCKETS = (0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 40.0)


class HelloProtocol(Protocol):
    """Neighbor discovery via HELLO beacons.

    Parameters
    ----------
    mode:
        ``"event"`` (paper lower bound), ``"periodic"`` or
        ``"adaptive"``.
    interval:
        Beacon period for periodic mode.  Ignored in adaptive mode,
        where the policy's ``initial_interval()`` seeds the timers.
    timeout:
        Neighbor expiry for periodic mode; defaults to ``2.5 *
        interval`` (a common soft-timer multiple) and must exceed the
        interval — a timeout at or below the beacon period would expire
        every neighbor between consecutive beacons.  In adaptive mode
        the ratio ``timeout / interval`` becomes the per-node expiry
        multiple applied to each node's current interval.
    policy:
        Adaptive mode only: a
        :class:`~repro.control.policies.BeaconPolicy` instance or spec
        dict for :func:`~repro.control.policies.build_policy`.
    signal_window, signal_alpha:
        Adaptive mode only: window length and EWMA weight of the
        :class:`~repro.control.signals.ControlSignals` tap.
    miss_limit:
        Loss-tolerance knob (periodic/adaptive modes): a neighbor is
        evicted after this many *consecutive missed beacons* instead of
        on the first silent timeout.  When set, the default timeout
        stretches to ``(miss_limit + 0.5) * interval`` so the count —
        not a single quiet period — governs loss-driven eviction, while
        the stretched soft timer still reclaims neighbors that moved
        away (no beacons arrive, so no misses are counted).  ``None``
        (the default) keeps the stock single-timeout behavior.  Beacons
        are only ever *missed* when a :mod:`repro.faults` plan with a
        nonzero ``loss_rate`` is attached.
    """

    name = "hello"

    def __init__(
        self,
        mode: str = "event",
        interval: float = 1.0,
        timeout: float | None = None,
        policy: BeaconPolicy | dict | None = None,
        signal_window: float = 1.0,
        signal_alpha: float = 0.5,
        miss_limit: int | None = None,
    ) -> None:
        if mode not in ("event", "periodic", "adaptive"):
            raise ValueError(
                f"mode must be 'event', 'periodic' or 'adaptive', got {mode!r}"
            )
        if policy is not None and mode != "adaptive":
            raise ValueError(
                f"a beacon policy requires mode 'adaptive', got mode {mode!r}"
            )
        self.mode = mode
        self.policy: BeaconPolicy | None = None
        self._beacon_cause = CAUSE_PERIODIC_HELLO
        if mode == "adaptive":
            if policy is None:
                raise ValueError("mode 'adaptive' requires a beacon policy")
            self.policy = build_policy(policy)
            self._beacon_cause = self.policy.cause
            interval = self.policy.initial_interval()
        if interval <= 0.0:
            raise ValueError(f"interval must be positive, got {interval}")
        if miss_limit is not None:
            if mode == "event":
                raise ValueError(
                    "miss_limit applies to beacon modes 'periodic' and "
                    "'adaptive' only; event mode compensates loss with "
                    "announce retransmissions instead"
                )
            if miss_limit < 1:
                raise ValueError(f"miss_limit must be >= 1, got {miss_limit}")
        self.miss_limit = miss_limit
        self.interval = interval
        if timeout is None:
            timeout = (
                (miss_limit + 0.5) * interval
                if miss_limit is not None
                else 2.5 * interval
            )
        self.timeout = timeout
        if self.timeout <= self.interval:
            raise ValueError(
                f"timeout ({self.timeout}) must be greater than the beacon "
                f"interval ({self.interval}); a smaller timeout would expire "
                "every neighbor between consecutive beacons"
            )
        self._timeout_multiple = self.timeout / self.interval
        self.signal_window = signal_window
        self.signal_alpha = signal_alpha
        self.neighbor_lists: list[dict[int, float]] = []
        self._next_beacon: np.ndarray | None = None
        # Loss degradation state: per-receiver consecutive-miss counts
        # (miss_limit modes) and the event-mode announce-retry queue of
        # ``(sender, learner, attempts)`` entries.
        self._miss_counts: list[dict[int, int]] = []
        self._pending_retx: list[tuple[int, int, int]] = []
        # Adaptive-mode state (see on_attach).
        self.signals: ControlSignals | None = None
        self._advertised_timeout: np.ndarray | None = None
        self._interval_hist = None
        self._staleness_hist = None
        self._latency_hist = None
        self._windows_emitted = 0
        self._window_beacons = 0
        self._window_interval_sum = 0.0
        self._window_interval_min = float("inf")
        self._window_interval_max = 0.0

    # ------------------------------------------------------------------
    def on_attach(self, sim: Simulation) -> None:
        n = sim.n_nodes
        # Seed neighbor lists from the initial adjacency: the paper does
        # not measure the initial discovery phase.
        self.neighbor_lists = [
            {int(v): 0.0 for v in sim.neighbors_of(u)} for u in range(n)
        ]
        if self.miss_limit is not None:
            self._miss_counts = [{} for _ in range(n)]
        if self.mode in ("periodic", "adaptive"):
            phases = sim.rng.uniform(0.0, self.interval, size=n)
            self._next_beacon = phases
        if self.mode == "adaptive":
            self._advertised_timeout = np.full(n, self.timeout, dtype=float)
            if self.policy.adaptive:
                # The signal tap, histograms and control_window events
                # exist only for genuinely adaptive policies: the fixed
                # policy takes the byte-identical periodic arithmetic
                # path and must add no telemetry the periodic mode
                # would not.
                self.signals = ControlSignals(
                    sim, window=self.signal_window, alpha=self.signal_alpha
                )
                registry = obs_context.current().registry
                if registry is not None:
                    labels = {
                        "sim": str(sim.sim_id),
                        "policy": self.policy.policy_name,
                    }
                    self._interval_hist = registry.histogram(
                        "beacon_interval", buckets=INTERVAL_BUCKETS, **labels
                    )
                    self._staleness_hist = registry.histogram(
                        "neighbor_staleness",
                        buckets=STALENESS_BUCKETS,
                        **labels,
                    )
                    self._latency_hist = registry.histogram(
                        "detection_latency", buckets=LATENCY_BUCKETS, **labels
                    )

    def _send_hello(self, sim: Simulation, node: int, time: float) -> None:
        with attributed(sim, self._beacon_cause, node=node):
            sim.stats.record("hello", 1, sim.params.messages.p_hello)
        # Every current neighbor of `node` hears the beacon — unless a
        # fault plan's Bernoulli loss eats that reception.  Neighbors
        # iterate in ascending id order, so loss draws are deterministic.
        faults = sim.faults
        lossy = faults is not None and faults.loss_rate > 0.0
        miss_counts = self._miss_counts if self.miss_limit is not None else None
        for neighbor in sim.neighbors_of(node):
            neighbor = int(neighbor)
            if lossy and faults.drop():
                faults.count("hello_losses_total")
                if miss_counts is not None:
                    misses = miss_counts[neighbor]
                    misses[node] = misses.get(node, 0) + 1
                    if misses[node] >= self.miss_limit:
                        # Count-based eviction: the tolerance budget is
                        # spent; forget the neighbor and reset the count
                        # so a re-heard beacon starts a fresh budget.
                        self.neighbor_lists[neighbor].pop(node, None)
                        del misses[node]
                continue
            if miss_counts is not None:
                miss_counts[neighbor].pop(node, None)
            self.neighbor_lists[neighbor][node] = time
        # The beaconing node refreshes nothing about itself; its own
        # neighbor list is refreshed by the beacons it receives.

    # ------------------------------------------------------------------
    # Event mode
    # ------------------------------------------------------------------
    def on_link_up(self, sim: Simulation, u: int, v: int, time: float) -> None:
        if self.mode != "event":
            return
        # Both endpoints announce themselves; each learns the other.
        with attributed(sim, CAUSE_EVENT_HELLO, nodes=(u, v)):
            sim.stats.record("hello", 2, 2 * sim.params.messages.p_hello)
        faults = sim.faults
        if faults is not None and faults.loss_rate > 0.0:
            # Each direction's announce is its own reception; a lost one
            # is retransmitted from on_step_begin until it lands or the
            # link is gone (the sender keeps announcing while unheard).
            for sender, learner in ((u, v), (v, u)):
                if faults.drop():
                    faults.count("hello_losses_total")
                    self._pending_retx.append((sender, learner, 0))
                else:
                    self.neighbor_lists[learner][sender] = time
            return
        self.neighbor_lists[u][v] = time
        self.neighbor_lists[v][u] = time

    def on_step_begin(self, sim: Simulation, time: float) -> None:
        if self.mode != "event" or not self._pending_retx:
            return
        faults = sim.faults
        pending = self._pending_retx
        self._pending_retx = []
        for sender, learner, attempts in pending:
            if (
                not sim.adjacency[sender, learner]
                or sender in self.neighbor_lists[learner]
            ):
                # Link vanished, or a later announce already landed.
                continue
            with attributed(sim, CAUSE_LOSS_RETRANSMIT, node=sender):
                sim.stats.record("hello", 1, sim.params.messages.p_hello)
            faults.count("hello_retransmits_total")
            if faults.drop():
                faults.count("hello_losses_total")
                if attempts + 1 < self._RETX_CAP:
                    self._pending_retx.append((sender, learner, attempts + 1))
            else:
                self.neighbor_lists[learner][sender] = time

    #: Event-mode announce-retransmission budget per lost link-up.
    _RETX_CAP = 8

    def on_link_down(self, sim: Simulation, u: int, v: int, time: float) -> None:
        if self.mode != "event":
            return
        # Soft-timer detection: free, immediate in the lower-bound model.
        self.neighbor_lists[u].pop(v, None)
        self.neighbor_lists[v].pop(u, None)
        if self._pending_retx:
            self._pending_retx = [
                entry
                for entry in self._pending_retx
                if {entry[0], entry[1]} != {u, v}
            ]

    # ------------------------------------------------------------------
    # Crash handling (fault plans)
    # ------------------------------------------------------------------
    def on_node_fail(self, sim: Simulation, node: int, time: float) -> None:
        # State wipe: the crashed node forgets every neighbor it knew.
        # Its former neighbors still hold entries for it; those expire
        # through the ordinary paths (link_down in event mode, the soft
        # timer otherwise) once the engine drops the node's links.
        self.neighbor_lists[node].clear()
        if self._miss_counts:
            self._miss_counts[node].clear()
        if self._pending_retx:
            self._pending_retx = [
                entry
                for entry in self._pending_retx
                if node not in (entry[0], entry[1])
            ]

    # ------------------------------------------------------------------
    # Periodic and adaptive modes
    # ------------------------------------------------------------------
    def on_step_end(self, sim: Simulation, time: float) -> None:
        if self.mode == "periodic":
            silenced = sim.faults is not None
            due = np.flatnonzero(self._next_beacon <= time)
            for node in due:
                node = int(node)
                if silenced and not sim.active[node]:
                    # A crashed/outaged radio keeps its beacon cadence
                    # but transmits nothing while silenced.
                    self._next_beacon[node] += self.interval
                    continue
                self._send_hello(sim, node, time)
                self._next_beacon[node] += self.interval
            # Soft-timer expiry.
            for node in range(sim.n_nodes):
                neighbor_list = self.neighbor_lists[node]
                expired = [
                    other
                    for other, heard in neighbor_list.items()
                    if time - heard > self.timeout
                ]
                for other in expired:
                    del neighbor_list[other]
        elif self.mode == "adaptive":
            self._adaptive_step_end(sim, time)

    def _adaptive_step_end(self, sim: Simulation, time: float) -> None:
        policy = self.policy
        signals = self.signals
        adaptive = policy.adaptive
        silenced = sim.faults is not None
        due = np.flatnonzero(self._next_beacon <= time)
        for node in due:
            node = int(node)
            if silenced and not sim.active[node]:
                self._next_beacon[node] += float(
                    policy.next_interval(node, signals)
                )
                continue
            self._send_hello(sim, node, time)
            interval = float(policy.next_interval(node, signals))
            self._next_beacon[node] += interval
            if adaptive:
                self._advertised_timeout[node] = (
                    self._timeout_multiple * interval
                )
                self._window_beacons += 1
                self._window_interval_sum += interval
                if interval < self._window_interval_min:
                    self._window_interval_min = interval
                if interval > self._window_interval_max:
                    self._window_interval_max = interval
                if self._interval_hist is not None:
                    self._interval_hist.observe(interval)
        # Soft-timer expiry against each neighbor's *advertised*
        # timeout.  Under the fixed policy the array never changes from
        # its `timeout` fill, so the comparison is value-identical to
        # the periodic path's.
        advertised = self._advertised_timeout
        for node in range(sim.n_nodes):
            neighbor_list = self.neighbor_lists[node]
            expired = [
                other
                for other, heard in neighbor_list.items()
                if time - heard > advertised[other]
            ]
            for other in expired:
                del neighbor_list[other]
        if (
            adaptive
            and signals.windows_closed > self._windows_emitted
            and (
                sim.tracer.enabled or self._staleness_hist is not None
            )
        ):
            self._close_control_window(sim, time)

    def _close_control_window(self, sim: Simulation, time: float) -> None:
        """Emit per-window control telemetry (adaptive policies only)."""
        signals = self.signals
        self._windows_emitted = signals.windows_closed
        window = signals.last_window
        errors = self.detection_error_counts(sim)
        staleness = float(errors.mean())
        if self._staleness_hist is not None:
            for value in errors:
                self._staleness_hist.observe(float(value))
            for value in self._advertised_timeout:
                self._latency_hist.observe(float(value))
        beacons = self._window_beacons
        if sim.tracer.enabled:
            sim.tracer.emit(
                "control_window",
                time,
                sim=sim.sim_id,
                policy=self.policy.policy_name,
                window_start=window["start"],
                elapsed=window["elapsed"],
                beacons=beacons,
                mean_interval=(
                    self._window_interval_sum / beacons if beacons else 0.0
                ),
                min_interval=(
                    self._window_interval_min if beacons else 0.0
                ),
                max_interval=(
                    self._window_interval_max if beacons else 0.0
                ),
                mean_rate=window["mean_rate"],
                max_rate=window["max_rate"],
                staleness=staleness,
                mean_timeout=float(self._advertised_timeout.mean()),
            )
        self._window_beacons = 0
        self._window_interval_sum = 0.0
        self._window_interval_min = float("inf")
        self._window_interval_max = 0.0

    # ------------------------------------------------------------------
    def known_neighbors(self, node: int) -> set[int]:
        """The neighbor set node ``node`` currently believes in."""
        return set(self.neighbor_lists[node])

    def detection_error_counts(self, sim: Simulation) -> np.ndarray:
        """Per-node count of neighbor-table discrepancies vs the truth.

        Entry ``i`` is ``|actual_i XOR believed_i|`` — stale neighbors
        still listed plus new neighbors not yet discovered.
        """
        counts = np.zeros(sim.n_nodes, dtype=np.int64)
        for node in range(sim.n_nodes):
            actual = {int(v) for v in sim.neighbors_of(node)}
            believed = self.known_neighbors(node)
            counts[node] = len(actual ^ believed)
        return counts

    def detection_errors(self, sim: Simulation) -> int:
        """Number of (node, neighbor) discrepancies vs the true adjacency.

        Zero in event mode; grows with ``interval`` in periodic mode —
        the quantity the detection-latency ablation reports.
        """
        return int(self.detection_error_counts(sim).sum())


#: Valid keys of a scenario/CLI ``beacon`` block.
BEACON_CONFIG_KEYS = (
    "mode",
    "interval",
    "timeout",
    "policy",
    "window",
    "alpha",
    "miss_limit",
)


def hello_from_config(spec: dict) -> HelloProtocol:
    """Build a :class:`HelloProtocol` from a scenario ``beacon`` block.

    The block supports::

        {"mode": "event"}
        {"mode": "periodic", "interval": 1.0, "timeout": 2.5}
        {"mode": "adaptive", "policy": {"policy": "churn-feedback", ...},
         "timeout": 2.5, "window": 1.0, "alpha": 0.5}

    ``policy`` may also be a bare policy name string (default
    parameters).  Unknown keys — at this level and inside the policy
    spec — are rejected with the list of valid keys.
    """
    if not isinstance(spec, dict):
        raise ValueError(
            f"beacon config must be a dict, got {type(spec).__name__}"
        )
    data = dict(spec)
    unknown = set(data) - set(BEACON_CONFIG_KEYS)
    if unknown:
        raise ValueError(
            f"unknown beacon keys: {sorted(unknown)}; "
            f"valid keys are: {sorted(BEACON_CONFIG_KEYS)}"
        )
    mode = data.get("mode", "event")
    policy_spec = data.get("policy")
    if isinstance(policy_spec, str):
        policy_spec = {"policy": policy_spec}
    if mode == "adaptive":
        if policy_spec is None:
            raise ValueError(
                "beacon mode 'adaptive' requires a 'policy' "
                f"(one of {sorted(POLICIES)})"
            )
        if "interval" in data:
            raise ValueError(
                "beacon mode 'adaptive' takes its interval from the "
                "policy; set it inside the 'policy' block"
            )
        return HelloProtocol(
            "adaptive",
            timeout=data.get("timeout"),
            policy=build_policy(policy_spec),
            signal_window=data.get("window", 1.0),
            signal_alpha=data.get("alpha", 0.5),
            miss_limit=data.get("miss_limit"),
        )
    if policy_spec is not None:
        raise ValueError(
            f"beacon 'policy' requires mode 'adaptive', got mode {mode!r}"
        )
    for key in ("window", "alpha"):
        if key in data:
            raise ValueError(
                f"beacon {key!r} applies only to mode 'adaptive'"
            )
    return HelloProtocol(
        mode,
        interval=data.get("interval", 1.0),
        timeout=data.get("timeout"),
        miss_limit=data.get("miss_limit"),
    )
