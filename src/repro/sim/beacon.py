"""HELLO beaconing and neighbor discovery.

Two operating modes, matching the paper's HELLO analysis (Section 3.5.1):

* ``event`` — the paper's lower bound: a node transmits a HELLO exactly
  when it gains a new neighbor (``f_hello = lambda_gen``), and link
  breaks are detected for free by the soft-timer abstraction.  This is
  the mode used to reproduce Figures 1–3.
* ``periodic`` — a realistic beacon: every node broadcasts each
  ``interval`` (with per-node random phase) and removes a neighbor it
  has not heard for ``timeout``.  Used by the detection-latency
  ablation (DESIGN.md item 4) to quantify the gap between the lower
  bound and a deployable beacon.

In both modes the protocol maintains per-node neighbor lists, which
downstream protocols may consume instead of the oracle adjacency.
"""

from __future__ import annotations

import numpy as np

from ..obs.attribution import (
    CAUSE_EVENT_HELLO,
    CAUSE_PERIODIC_HELLO,
    attributed,
)
from .engine import Protocol, Simulation

__all__ = ["HelloProtocol"]


class HelloProtocol(Protocol):
    """Neighbor discovery via HELLO beacons.

    Parameters
    ----------
    mode:
        ``"event"`` (paper lower bound) or ``"periodic"``.
    interval:
        Beacon period for periodic mode.
    timeout:
        Neighbor expiry for periodic mode; defaults to ``2.5 *
        interval`` (a common soft-timer multiple).
    """

    name = "hello"

    def __init__(
        self,
        mode: str = "event",
        interval: float = 1.0,
        timeout: float | None = None,
    ) -> None:
        if mode not in ("event", "periodic"):
            raise ValueError(f"mode must be 'event' or 'periodic', got {mode!r}")
        if interval <= 0.0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.mode = mode
        self.interval = interval
        self.timeout = 2.5 * interval if timeout is None else timeout
        if self.timeout <= 0.0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")
        self.neighbor_lists: list[dict[int, float]] = []
        self._next_beacon: np.ndarray | None = None

    # ------------------------------------------------------------------
    def on_attach(self, sim: Simulation) -> None:
        n = sim.n_nodes
        # Seed neighbor lists from the initial adjacency: the paper does
        # not measure the initial discovery phase.
        self.neighbor_lists = [
            {int(v): 0.0 for v in sim.neighbors_of(u)} for u in range(n)
        ]
        if self.mode == "periodic":
            phases = sim.rng.uniform(0.0, self.interval, size=n)
            self._next_beacon = phases

    def _send_hello(self, sim: Simulation, node: int, time: float) -> None:
        with attributed(sim, CAUSE_PERIODIC_HELLO, node=node):
            sim.stats.record("hello", 1, sim.params.messages.p_hello)
        # Every current neighbor of `node` hears the beacon.
        for neighbor in sim.neighbors_of(node):
            self.neighbor_lists[int(neighbor)][node] = time
        # The beaconing node refreshes nothing about itself; its own
        # neighbor list is refreshed by the beacons it receives.

    # ------------------------------------------------------------------
    # Event mode
    # ------------------------------------------------------------------
    def on_link_up(self, sim: Simulation, u: int, v: int, time: float) -> None:
        if self.mode != "event":
            return
        # Both endpoints announce themselves; each learns the other.
        with attributed(sim, CAUSE_EVENT_HELLO, nodes=(u, v)):
            sim.stats.record("hello", 2, 2 * sim.params.messages.p_hello)
        self.neighbor_lists[u][v] = time
        self.neighbor_lists[v][u] = time

    def on_link_down(self, sim: Simulation, u: int, v: int, time: float) -> None:
        if self.mode != "event":
            return
        # Soft-timer detection: free, immediate in the lower-bound model.
        self.neighbor_lists[u].pop(v, None)
        self.neighbor_lists[v].pop(u, None)

    # ------------------------------------------------------------------
    # Periodic mode
    # ------------------------------------------------------------------
    def on_step_end(self, sim: Simulation, time: float) -> None:
        if self.mode != "periodic":
            return
        due = np.flatnonzero(self._next_beacon <= time)
        for node in due:
            self._send_hello(sim, int(node), time)
            self._next_beacon[node] += self.interval
        # Soft-timer expiry.
        for node in range(sim.n_nodes):
            neighbor_list = self.neighbor_lists[node]
            expired = [
                other
                for other, heard in neighbor_list.items()
                if time - heard > self.timeout
            ]
            for other in expired:
                del neighbor_list[other]

    # ------------------------------------------------------------------
    def known_neighbors(self, node: int) -> set[int]:
        """The neighbor set node ``node`` currently believes in."""
        return set(self.neighbor_lists[node])

    def detection_errors(self, sim: Simulation) -> int:
        """Number of (node, neighbor) discrepancies vs the true adjacency.

        Zero in event mode; grows with ``interval`` in periodic mode —
        the quantity the detection-latency ablation reports.
        """
        errors = 0
        for node in range(sim.n_nodes):
            actual = {int(v) for v in sim.neighbors_of(node)}
            believed = self.known_neighbors(node)
            errors += len(actual ^ believed)
        return errors
