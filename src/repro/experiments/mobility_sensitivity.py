"""Mobility-pattern sensitivity of the overhead model (future work §7).

The paper's conclusion names "the influence of node mobility patterns"
as the open question its analysis does not cover.  This experiment runs
the standard clustered stack under every implemented mobility model at
matched nominal speed and reports each model's measured rates against
the BCV analysis — quantifying exactly how far the paper's result
transfers beyond its own mobility assumptions.
"""

from __future__ import annotations

from ..analysis import Table
from ..clustering import ClusterMaintenanceProtocol, LowestIdClustering
from ..core import overhead as overhead_model
from ..core.params import NetworkParameters
from ..mobility import (
    ConstantVelocityModel,
    EpochRandomWaypointModel,
    GaussMarkovModel,
    ManhattanModel,
    RandomDirectionModel,
    RandomWalkModel,
    RandomWaypointModel,
    ReferencePointGroupModel,
)
from ..routing import IntraClusterRoutingProtocol
from ..sim import HelloProtocol, Simulation
from .config import scale_for

__all__ = ["run_mobility_sensitivity", "mobility_model_zoo"]


def mobility_model_zoo(speed: float) -> dict[str, object]:
    """Every mobility model configured for the same nominal speed."""
    return {
        "cv": ConstantVelocityModel(speed),
        "epoch-rwp": EpochRandomWaypointModel(speed, epoch=1.0),
        "rwp": RandomWaypointModel((0.5 * speed, 1.5 * speed)),
        "walk": RandomWalkModel((0.5 * speed, 1.5 * speed), interval=1.0),
        "direction": RandomDirectionModel((0.5 * speed, 1.5 * speed)),
        "gauss-markov": GaussMarkovModel(speed, alpha=0.75),
        "manhattan": ManhattanModel((0.5 * speed, 1.5 * speed), blocks=5),
        "rpgm": ReferencePointGroupModel(
            n_groups=6,
            group_radius=0.08,
            member_speed=speed,
            center_speed_range=(0.5 * speed, 1.5 * speed),
        ),
    }


def run_mobility_sensitivity(quick: bool = False) -> Table:
    """Measure the clustered stack under each mobility pattern."""
    scale = scale_for(quick)
    speed_fraction = 0.05
    params = NetworkParameters.from_fractions(
        n_nodes=scale.n_nodes,
        range_fraction=0.15,
        velocity_fraction=speed_fraction,
    )
    f_hello_analysis = overhead_model.hello_frequency(params)
    table = Table(
        title=(
            f"Mobility sensitivity (N={scale.n_nodes}, r=0.15a, "
            f"nominal v={speed_fraction}a/t)"
        ),
        headers=["model", "f_hello", "vs analysis", "f_cluster", "f_route", "P"],
        notes=[
            f"BCV analysis f_hello = {f_hello_analysis:.4g}",
            "'vs analysis' near 1.0 = the BCV overhead model transfers; "
            "rpgm collapses f_cluster (group-coherent motion)",
        ],
    )
    for name, model in mobility_model_zoo(params.velocity).items():
        sim = Simulation(params, model, seed=3)
        sim.attach(HelloProtocol("event"))
        maintenance = ClusterMaintenanceProtocol(LowestIdClustering())
        intra = IntraClusterRoutingProtocol(maintenance)
        sim.attach(intra)
        sim.attach(maintenance)
        stats = sim.run(duration=scale.duration, warmup=scale.warmup)
        f_hello = stats.per_node_frequency("hello")
        table.add_row(
            name,
            f_hello,
            f_hello / f_hello_analysis,
            stats.per_node_frequency("cluster"),
            stats.per_node_frequency("route"),
            maintenance.head_ratio(),
        )
    return table
