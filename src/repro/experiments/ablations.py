"""Ablations of the design choices DESIGN.md §6 calls out.

1. **Counting convention** — the self-consistent event counting vs the
   literal transliteration of the OCR-damaged equations; which one the
   simulation supports.
2. **ROUTE message payload** — per-entry vs full-table updates and the
   resulting overhead split (Section 6's "ROUTE dominates" claim).
3. **Boundary rule** — the paper's wrap-around (torus) vs a reflecting
   boundary; reflection concentrates nodes near walls and shifts the
   measured rates away from the BCV analysis.
4. **HELLO detection** — the event-driven lower bound vs realistic
   periodic beacons with soft timers: beacon traffic and neighbor-table
   staleness as the interval grows.
"""

from __future__ import annotations

from ..analysis import Table, relative_error
from ..clustering import ClusterMaintenanceProtocol, LowestIdClustering
from ..core import overhead as overhead_model
from ..core.lid_analysis import lid_head_probability
from ..core.params import NetworkParameters
from ..mobility import EpochRandomWaypointModel
from ..routing import IntraClusterRoutingProtocol
from ..sim import HelloProtocol, Simulation
from ..spatial import Boundary
from .config import scale_for

__all__ = [
    "run_ablation_conventions",
    "run_ablation_route_payload",
    "run_ablation_boundary",
    "run_ablation_beacon",
]


def _measure_stack(
    params: NetworkParameters,
    boundary: Boundary,
    duration: float,
    warmup: float,
    seed: int,
    hello_mode: str = "event",
    hello_interval: float = 1.0,
):
    """Run the standard stack; returns (stats, maintenance, hello)."""
    sim = Simulation(
        params,
        EpochRandomWaypointModel(params.velocity, epoch=1.0),
        boundary=boundary,
        seed=seed,
    )
    hello = sim.attach(HelloProtocol(hello_mode, interval=hello_interval))
    maintenance = ClusterMaintenanceProtocol(LowestIdClustering())
    intra = IntraClusterRoutingProtocol(maintenance)
    sim.attach(intra)
    sim.attach(maintenance)
    stats = sim.run(duration=duration, warmup=warmup)
    return sim, stats, maintenance, hello


def run_ablation_conventions(quick: bool = False) -> Table:
    """Ablation 1: which equation-counting convention matches simulation."""
    scale = scale_for(quick)
    params = NetworkParameters.from_fractions(
        n_nodes=scale.n_nodes, range_fraction=0.15, velocity_fraction=0.05
    )
    _, stats, maintenance, _ = _measure_stack(
        params, Boundary.TORUS, scale.duration, scale.warmup, seed=1
    )
    head_ratio = maintenance.head_ratio()
    table = Table(
        title="Ablation — counting conventions vs simulation",
        headers=["quantity", "sim", "consistent", "printed", "err cons.", "err print."],
        notes=[f"measured P = {head_ratio:.4f}"],
    )
    rows = {
        "f_cluster": (
            stats.per_node_frequency("cluster"),
            overhead_model.cluster_frequency(params, head_ratio, "consistent"),
            overhead_model.cluster_frequency(params, head_ratio, "printed"),
        ),
        "f_route": (
            stats.per_node_frequency("route"),
            overhead_model.route_frequency(params, head_ratio, "consistent"),
            overhead_model.route_frequency(params, head_ratio, "printed"),
        ),
    }
    for name, (sim_value, consistent, printed) in rows.items():
        table.add_row(
            name,
            sim_value,
            consistent,
            printed,
            relative_error(sim_value, consistent),
            relative_error(sim_value, printed),
        )
    return table


def run_ablation_route_payload(quick: bool = False) -> Table:
    """Ablation 2: ROUTE per-entry vs full-table overhead shares."""
    scale = scale_for(quick)
    table = Table(
        title="Ablation — ROUTE payload reading and overhead dominance",
        headers=[
            "r/a",
            "P (Eqn 18)",
            "O_hello",
            "O_cluster",
            "O_route/entry",
            "O_route/full",
            "route share (full)",
        ],
    )
    for fraction in (0.08, 0.15, 0.25, 0.35):
        params = NetworkParameters.from_fractions(
            n_nodes=scale.n_nodes, range_fraction=fraction, velocity_fraction=0.05
        )
        head_p = float(
            lid_head_probability(params.n_nodes, params.density, params.tx_range)
        )
        o_hello = overhead_model.hello_overhead(params)
        o_cluster = overhead_model.cluster_overhead(params, head_p)
        o_entry = overhead_model.route_overhead(params, head_p, full_table=False)
        o_full = overhead_model.route_overhead(params, head_p, full_table=True)
        share = o_full / (o_hello + o_cluster + o_full)
        table.add_row(fraction, head_p, o_hello, o_cluster, o_entry, o_full, share)
    return table


def run_ablation_boundary(quick: bool = False) -> Table:
    """Ablation 3: torus (paper) vs reflecting boundary fit."""
    scale = scale_for(quick)
    params = NetworkParameters.from_fractions(
        n_nodes=scale.n_nodes, range_fraction=0.15, velocity_fraction=0.05
    )
    table = Table(
        title="Ablation — boundary rule vs analysis fit",
        headers=["boundary", "f_hello sim", "f_hello ana", "rel.err", "P meas"],
    )
    analysis = overhead_model.hello_frequency(params)
    for boundary in (Boundary.TORUS, Boundary.REFLECT):
        _, stats, maintenance, _ = _measure_stack(
            params, boundary, scale.duration, scale.warmup, seed=2
        )
        measured = stats.per_node_frequency("hello")
        table.add_row(
            boundary.value,
            measured,
            analysis,
            relative_error(measured, analysis),
            maintenance.head_ratio(),
        )
    return table


def run_ablation_beacon(quick: bool = False) -> Table:
    """Ablation 4: event-driven lower bound vs periodic beacons."""
    scale = scale_for(quick)
    params = NetworkParameters.from_fractions(
        n_nodes=max(60, scale.n_nodes // 2),
        range_fraction=0.15,
        velocity_fraction=0.05,
    )
    table = Table(
        title="Ablation — HELLO detection: event lower bound vs periodic beacons",
        headers=["mode", "interval", "f_hello", "neighbor errors"],
        notes=["neighbor errors = final count of stale/missing neighbor entries"],
    )
    sim, stats, _, hello = _measure_stack(
        params, Boundary.TORUS, scale.duration / 2, scale.warmup, seed=3
    )
    table.add_row(
        "event", "-", stats.per_node_frequency("hello"), hello.detection_errors(sim)
    )
    for interval in (0.5, 1.0, 2.0):
        sim, stats, _, hello = _measure_stack(
            params,
            Boundary.TORUS,
            scale.duration / 2,
            scale.warmup,
            seed=3,
            hello_mode="periodic",
            hello_interval=interval,
        )
        table.add_row(
            "periodic",
            interval,
            stats.per_node_frequency("hello"),
            hello.detection_errors(sim),
        )
    return table
