"""Section 6: the Θ-notation overhead table, measured from the model.

Fits log–log growth exponents of each overhead component in each
network parameter and tabulates them against the paper's claims.
"""

from __future__ import annotations

from ..analysis import Table
from ..core.asymptotics import (
    PAPER_CLAIMED_EXPONENTS,
    asymptotic_exponent_table,
)

__all__ = ["run_sec6"]


def run_sec6(quick: bool = False) -> Table:
    """Measure the Section 6 exponent table."""
    num = 5 if quick else 9
    measured = asymptotic_exponent_table(num=num)
    table = Table(
        title="Section 6 — overhead growth exponents (measured vs claimed)",
        headers=[
            "overhead",
            "param",
            "claimed",
            "measured",
            "fit R^2",
        ],
        notes=[
            "claimed exponents: HELLO Θ(r)Θ(rho)Θ(v); CLUSTER Θ(1),Θ(sqrt(rho)),Θ(v); "
            "ROUTE per-entry like CLUSTER; ROUTE full-table Θ(r)Θ(rho)Θ(v); all Θ(1) in N",
        ],
    )
    for quantity, claims in PAPER_CLAIMED_EXPONENTS.items():
        for parameter, claimed in claims.items():
            result = measured[quantity][parameter]
            table.add_row(
                quantity, parameter, claimed, result.exponent, result.r_squared
            )
    return table
