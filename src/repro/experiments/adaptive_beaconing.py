"""Adaptive beaconing: the HELLO overhead-vs-staleness frontier.

Fixed-period beaconing spends the same budget at every node and every
instant; the closed-loop policies in :mod:`repro.control` reallocate
that budget — more beacons where (and when) links churn, fewer where
the neighborhood is quiet.  With the *linear* staleness model
``E[stale] ~ lambda * (m + 1/2) * T`` such reallocation is exactly
overhead-neutral, so any empirical win must come from the
nonlinearities the model ignores: link flaps that cancel before the
advertised timeout fires, arrivals that depart before they were ever
announced, and the clamping of per-node intervals.  Those effects make
measured staleness *concave* in the interval, and under a concave cost
a heterogeneous allocation strictly beats the uniform one (Jensen) —
which is the frontier this experiment measures.

The sweep runs the fixed-period baseline and every adaptive policy
across the Figure-2 velocity axis (``r = 0.15 a``), measuring the
per-node HELLO frequency and the mean neighbor-table staleness
(detection errors per node, sampled across the measurement window,
identically for every policy).  A policy *dominates* fixed-period at a
velocity point when it spends strictly less HELLO overhead at
equal-or-lower staleness.
"""

from __future__ import annotations

import numpy as np

from ..analysis import Table
from ..analysis.parallel import run_tasks
from ..analysis.series import summarize
from ..core import overhead as overhead_model
from ..core.params import NetworkParameters
from ..mobility import EpochRandomWaypointModel
from ..sim import Simulation
from ..sim.beacon import hello_from_config
from .config import ExperimentScale, scale_for

__all__ = ["run_adaptive_beaconing", "POLICY_ROSTER", "frontier_table"]

#: The contenders: the fixed-period baseline first, then every adaptive
#: policy.  Specs are beacon blocks (see
#: :func:`repro.sim.beacon.hello_from_config`); they ride inside each
#: task tuple, so the result store fingerprints each policy's runs
#: separately.
POLICY_ROSTER: tuple[tuple[str, dict], ...] = (
    ("fixed", {"mode": "periodic", "interval": 1.0}),
    (
        "analytic-rate",
        {"mode": "adaptive", "policy": {"policy": "analytic-rate"}},
    ),
    (
        "churn-feedback",
        {"mode": "adaptive", "policy": {"policy": "churn-feedback"}},
    ),
    (
        "staleness-bounded",
        {"mode": "adaptive", "policy": {"policy": "staleness-bounded"}},
    ),
)


def _run_beacon_task(task) -> dict[str, float]:
    """Picklable per-(params, seed, policy) worker.

    Runs a HELLO-only stack (no clustering/routing — the frontier is a
    property of the beacon plane alone) and samples the neighbor-table
    staleness across the measurement window the same way for every
    policy, so fixed and adaptive rows are directly comparable.
    """
    params, seed, duration, warmup, epoch, beacon = task
    sim = Simulation(
        params,
        EpochRandomWaypointModel(params.velocity, epoch=epoch),
        seed=seed,
    )
    hello = sim.attach(hello_from_config(beacon))

    warmup_steps = int(round(warmup / sim.dt))
    measured_steps = max(1, int(round(duration / sim.dt)))
    sim.trace_run_begin(duration, warmup)
    sim.stats.stop_measuring()
    for _ in range(warmup_steps):
        sim.step()
    sim.stats.start_measuring()
    sample_every = max(1, measured_steps // 50)
    errors: list[float] = []
    for step_index in range(measured_steps):
        sim.step()
        if step_index % sample_every == 0:
            errors.append(hello.detection_errors(sim) / params.n_nodes)
    sim.stats.stop_measuring()
    sim.notify_run_end()
    sim.trace_run_end()

    return {
        "f_hello": sim.stats.per_node_frequency("hello"),
        "staleness": float(np.mean(errors)),
    }


def _measure_roster(
    params_by_velocity: list[NetworkParameters],
    roster,
    scale: ExperimentScale,
    jobs: int | None,
) -> dict[tuple[int, str], dict[str, float]]:
    """Fan every (velocity, policy, seed) run out through one task list.

    Returns seed-averaged measurements keyed by (velocity index, policy
    name).  One flat :func:`run_tasks` call maximizes parallelism and
    keeps results order-deterministic regardless of ``jobs``.
    """
    tasks = []
    keys: list[tuple[int, str]] = []
    for index, params in enumerate(params_by_velocity):
        for name, beacon in roster:
            for seed in range(scale.seeds):
                tasks.append(
                    (params, seed, scale.duration, scale.warmup, 1.0, beacon)
                )
                keys.append((index, name))
    runs = run_tasks(_run_beacon_task, tasks, jobs=jobs)
    grouped: dict[tuple[int, str], list[dict[str, float]]] = {}
    for key, run in zip(keys, runs):
        grouped.setdefault(key, []).append(run)
    return {
        key: {
            metric: summarize([run[metric] for run in runs_at]).mean
            for metric in ("f_hello", "staleness")
        }
        for key, runs_at in grouped.items()
    }


def frontier_table(
    fractions,
    params_by_velocity: list[NetworkParameters],
    measured: dict[tuple[int, str], dict[str, float]],
    roster,
    title: str,
) -> Table:
    """Tabulate the overhead-vs-staleness frontier with dominance verdicts."""
    table = Table(
        title=title,
        headers=[
            "v/a",
            "policy",
            "f_hello",
            "staleness",
            "eqn4 bound",
            "vs fixed",
        ],
    )
    dominating: list[str] = []
    for index, (fraction, params) in enumerate(
        zip(fractions, params_by_velocity)
    ):
        bound = overhead_model.hello_frequency(params)
        baseline = measured[(index, roster[0][0])]
        for name, _ in roster:
            point = measured[(index, name)]
            if name == roster[0][0]:
                verdict = "baseline"
            else:
                dominates = (
                    point["f_hello"] < baseline["f_hello"]
                    and point["staleness"] <= baseline["staleness"]
                )
                verdict = "dominates" if dominates else "-"
                if dominates:
                    dominating.append(f"{name}@v/a={float(fraction):.3f}")
            table.add_row(
                float(fraction),
                name,
                point["f_hello"],
                point["staleness"],
                bound,
                verdict,
            )
    if dominating:
        table.notes.append(
            "dominance: " + ", ".join(dominating)
            + " (lower HELLO overhead at equal-or-lower staleness)"
        )
    else:
        table.notes.append(
            "dominance: none — no adaptive policy beat fixed-period"
        )
    table.notes.append(
        "staleness = mean neighbor-table detection errors per node, "
        "sampled across the measurement window"
    )
    return table


def run_adaptive_beaconing(
    quick: bool = False, jobs: int | None = None
) -> Table:
    """The frontier experiment: fixed vs adaptive across the Fig-2 axis."""
    scale = scale_for(quick)
    base = NetworkParameters.from_fractions(
        n_nodes=scale.n_nodes, range_fraction=0.15, velocity_fraction=0.05
    )
    fractions = np.linspace(0.01, 0.15, scale.sweep_points)
    params_by_velocity = [
        base.with_(velocity=float(fraction * base.side))
        for fraction in fractions
    ]
    measured = _measure_roster(
        params_by_velocity, POLICY_ROSTER, scale, jobs
    )
    return frontier_table(
        fractions,
        params_by_velocity,
        measured,
        POLICY_ROSTER,
        "Adaptive beaconing — HELLO overhead vs staleness frontier "
        f"(N={scale.n_nodes}, r=0.15a)",
    )
