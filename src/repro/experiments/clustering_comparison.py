"""Clustering algorithm comparison (the paper's related-work set).

Runs every implemented clustering algorithm on identical random
geometric topologies and reports the quantities the paper's overhead
model keys on: the head ratio ``P``, cluster count and mean cluster
size, plus P1 compliance (LCA predates P1 and legitimately violates
it; Max-Min's d-hop clusters satisfy neither one-hop property by
design).  For the one-hop algorithms it additionally measures the
reactive maintenance CLUSTER rate under mobility, showing how the
choice of priority function shifts the overhead the model predicts
through ``P``.
"""

from __future__ import annotations

import numpy as np

from ..analysis import Table
from ..clustering import (
    ClusterMaintenanceProtocol,
    DmacClustering,
    HighestConnectivityClustering,
    LinkedClusterArchitecture,
    LowestIdClustering,
    MaxMinDCluster,
    MobDHopClustering,
    check_properties,
)
from ..core.params import NetworkParameters
from ..mobility import EpochRandomWaypointModel
from ..sim import Simulation
from ..spatial import Boundary, SquareRegion
from .config import scale_for

__all__ = ["run_clustering_comparison", "ONE_HOP_ALGORITHMS", "ALL_ALGORITHMS"]

#: Algorithms compatible with the P1/P2-enforcing reactive maintenance.
ONE_HOP_ALGORITHMS = (
    ("lid", lambda: LowestIdClustering()),
    ("hcc", lambda: HighestConnectivityClustering()),
    ("dmac", lambda: DmacClustering(seed=7)),
)

#: The full formation-comparison set.
ALL_ALGORITHMS = ONE_HOP_ALGORITHMS + (
    ("maxmin(d=2)", lambda: MaxMinDCluster(2)),
    ("lca", lambda: LinkedClusterArchitecture()),
    ("mobdhop(d=2)", lambda: MobDHopClustering(2)),
)


def _maintenance_rate(
    params: NetworkParameters, factory, duration: float, warmup: float, seed: int
) -> float:
    sim = Simulation(
        params, EpochRandomWaypointModel(params.velocity, epoch=1.0), seed=seed
    )
    maintenance = ClusterMaintenanceProtocol(factory())
    sim.attach(maintenance)
    stats = sim.run(duration=duration, warmup=warmup)
    return stats.per_node_frequency("cluster")


def run_clustering_comparison(quick: bool = False) -> Table:
    """Formation metrics for all algorithms; maintenance rate for one-hop."""
    scale = scale_for(quick)
    n_nodes = scale.n_nodes
    range_fraction = 0.15
    region = SquareRegion(1.0, Boundary.OPEN)
    table = Table(
        title=f"Clustering comparison (N={n_nodes}, r={range_fraction}a)",
        headers=[
            "algorithm",
            "P",
            "clusters",
            "mean size",
            "P1 ok",
            "f_cluster (maint)",
        ],
        notes=[
            "P1 violations are inherent to LCA (predates P1) and to d-hop "
            "schemes (Max-Min, MobDHop) whose members sit >1 hop from heads",
            "f_cluster only defined for one-hop algorithms under reactive "
            "maintenance",
        ],
    )
    params = NetworkParameters.from_fractions(
        n_nodes=n_nodes, range_fraction=range_fraction, velocity_fraction=0.04
    )
    maintenance_names = {name for name, _ in ONE_HOP_ALGORITHMS}
    for name, factory in ALL_ALGORITHMS:
        ratios, counts, sizes, p1_ok = [], [], [], True
        for seed in range(scale.seeds + 1):
            positions = region.uniform_positions(n_nodes, seed)
            adjacency = region.adjacency(positions, range_fraction)
            state = factory().form(adjacency)
            violations = check_properties(state, adjacency)
            p1_ok = p1_ok and not violations.adjacent_heads
            ratios.append(state.head_ratio())
            counts.append(state.cluster_count())
            sizes.append(float(np.mean(state.cluster_sizes())))
        rate: float | str = "-"
        if name in maintenance_names:
            rate = _maintenance_rate(
                params,
                factory,
                duration=scale.duration / 2,
                warmup=scale.warmup,
                seed=0,
            )
        table.add_row(
            name,
            float(np.mean(ratios)),
            float(np.mean(counts)),
            float(np.mean(sizes)),
            p1_ok,
            rate,
        )
    return table
