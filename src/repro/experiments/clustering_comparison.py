"""Clustering algorithm comparison (the paper's related-work set).

Runs every implemented clustering algorithm on identical random
geometric topologies and reports the quantities the paper's overhead
model keys on: the head ratio ``P``, cluster count and mean cluster
size, plus P1 compliance (LCA predates P1 and legitimately violates
it; Max-Min's d-hop clusters satisfy neither one-hop property by
design).  For the one-hop algorithms it additionally measures the
reactive maintenance CLUSTER rate under mobility, showing how the
choice of priority function shifts the overhead the model predicts
through ``P``.
"""

from __future__ import annotations

import numpy as np

from ..analysis import Table
from ..analysis.parallel import run_tasks
from ..clustering import (
    ClusterMaintenanceProtocol,
    DmacClustering,
    HighestConnectivityClustering,
    LinkedClusterArchitecture,
    LowestIdClustering,
    MaxMinDCluster,
    MobDHopClustering,
    check_properties,
)
from ..core.params import NetworkParameters
from ..mobility import EpochRandomWaypointModel
from ..sim import Simulation
from ..spatial import Boundary, SquareRegion
from .config import scale_for

__all__ = ["run_clustering_comparison", "ONE_HOP_ALGORITHMS", "ALL_ALGORITHMS"]

#: Algorithms compatible with the P1/P2-enforcing reactive maintenance.
ONE_HOP_ALGORITHMS = (
    ("lid", lambda: LowestIdClustering()),
    ("hcc", lambda: HighestConnectivityClustering()),
    ("dmac", lambda: DmacClustering(seed=7)),
)

#: The full formation-comparison set.
ALL_ALGORITHMS = ONE_HOP_ALGORITHMS + (
    ("maxmin(d=2)", lambda: MaxMinDCluster(2)),
    ("lca", lambda: LinkedClusterArchitecture()),
    ("mobdhop(d=2)", lambda: MobDHopClustering(2)),
)

#: Lookup for worker processes: the lambdas above are not picklable, so
#: tasks carry the algorithm *name* and workers resolve it here.
_FACTORIES = dict(ALL_ALGORITHMS)


def _maintenance_rate(
    params: NetworkParameters, factory, duration: float, warmup: float, seed: int
) -> float:
    sim = Simulation(
        params, EpochRandomWaypointModel(params.velocity, epoch=1.0), seed=seed
    )
    maintenance = ClusterMaintenanceProtocol(factory())
    sim.attach(maintenance)
    stats = sim.run(duration=duration, warmup=warmup)
    return stats.per_node_frequency("cluster")


def _formation_task(task) -> tuple[float, float, float, bool]:
    """Picklable per-(algorithm, seed) worker: one formation's metrics."""
    name, n_nodes, range_fraction, seed = task
    region = SquareRegion(1.0, Boundary.OPEN)
    positions = region.uniform_positions(n_nodes, seed)
    adjacency = region.adjacency(positions, range_fraction)
    state = _FACTORIES[name]().form(adjacency)
    violations = check_properties(state, adjacency)
    return (
        float(state.head_ratio()),
        float(state.cluster_count()),
        float(np.mean(state.cluster_sizes())),
        not violations.adjacent_heads,
    )


def _maintenance_task(task) -> float:
    """Picklable per-algorithm worker: reactive CLUSTER rate under mobility."""
    name, params, duration, warmup, seed = task
    return _maintenance_rate(params, _FACTORIES[name], duration, warmup, seed)


def run_clustering_comparison(
    quick: bool = False, jobs: int | None = None
) -> Table:
    """Formation metrics for all algorithms; maintenance rate for one-hop."""
    scale = scale_for(quick)
    n_nodes = scale.n_nodes
    range_fraction = 0.15
    table = Table(
        title=f"Clustering comparison (N={n_nodes}, r={range_fraction}a)",
        headers=[
            "algorithm",
            "P",
            "clusters",
            "mean size",
            "P1 ok",
            "f_cluster (maint)",
        ],
        notes=[
            "P1 violations are inherent to LCA (predates P1) and to d-hop "
            "schemes (Max-Min, MobDHop) whose members sit >1 hop from heads",
            "f_cluster only defined for one-hop algorithms under reactive "
            "maintenance",
        ],
    )
    params = NetworkParameters.from_fractions(
        n_nodes=n_nodes, range_fraction=range_fraction, velocity_fraction=0.04
    )
    maintenance_names = {name for name, _ in ONE_HOP_ALGORITHMS}
    seeds = scale.seeds + 1
    formation_results = run_tasks(
        _formation_task,
        [
            (name, n_nodes, range_fraction, seed)
            for name, _ in ALL_ALGORITHMS
            for seed in range(seeds)
        ],
        jobs=jobs,
    )
    maintenance_rates = dict(
        zip(
            sorted(maintenance_names),
            run_tasks(
                _maintenance_task,
                [
                    (name, params, scale.duration / 2, scale.warmup, 0)
                    for name in sorted(maintenance_names)
                ],
                jobs=jobs,
            ),
        )
    )
    for index, (name, _) in enumerate(ALL_ALGORITHMS):
        per_seed = formation_results[index * seeds : (index + 1) * seeds]
        ratios = [r[0] for r in per_seed]
        counts = [r[1] for r in per_seed]
        sizes = [r[2] for r in per_seed]
        p1_ok = all(r[3] for r in per_seed)
        rate: float | str = maintenance_rates.get(name, "-")
        table.add_row(
            name,
            float(np.mean(ratios)),
            float(np.mean(counts)),
            float(np.mean(sizes)),
            p1_ok,
            rate,
        )
    return table
