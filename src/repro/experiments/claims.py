"""Validation of Claims 1 and 2 — the model's two load-bearing lemmas.

* **Claim 1** (expected in-region degree): measured by placing Poisson
  fields on a large torus and counting, for nodes of a square window
  ``S``, their neighbors *inside the window* — the exact BCV reading of
  "neighbors outside S are not considered".
* **Claim 2** (CV/BCV link change rates): the CV rate is measured on a
  torus (the realizable stand-in for the unbounded plane) by diffing
  adjacency snapshots; the BCV rate restricts the count to events whose
  endpoints both lie in the window.
"""

from __future__ import annotations

import numpy as np

from ..analysis import Table
from ..analysis.parallel import run_tasks
from ..core.degree import expected_degree
from ..core.linkdynamics import bcv_link_change_rate, cv_link_change_rate
from ..mobility import ConstantVelocityModel
from ..spatial import Boundary, SquareRegion, compute_adjacency, diff_adjacency
from .config import scale_for

__all__ = ["run_claim1", "run_claim2", "measure_window_degree", "measure_cv_rates"]


def _window_degree_task(task) -> float | None:
    """Picklable per-seed worker: mean in-window degree on one field."""
    n_window, tx_range, margin, seed = task
    region = SquareRegion(margin, Boundary.TORUS)
    total_nodes = int(round(n_window * margin * margin))
    positions = region.uniform_positions(total_nodes, seed)
    offset = (margin - 1.0) / 2.0
    in_window = np.all(
        (positions >= offset) & (positions <= offset + 1.0), axis=1
    )
    window_nodes = np.flatnonzero(in_window)
    if not len(window_nodes):
        return None
    adjacency = region.adjacency(positions, tx_range)
    sub = adjacency[np.ix_(window_nodes, window_nodes)]
    return float(sub.sum(axis=1).mean())


def measure_window_degree(
    n_window: int,
    tx_range: float,
    seeds: int = 5,
    margin: float = 3.0,
    jobs: int | None = None,
) -> float:
    """Empirical mean in-window degree for density ``n_window`` per unit².

    Nodes are spread over a ``margin x margin`` torus (so the window has
    natural traffic across its border); only neighbors inside the
    central unit window count, and only window nodes are averaged.
    Per-seed fields run in parallel when ``jobs`` is set.
    """
    degrees = run_tasks(
        _window_degree_task,
        [(n_window, tx_range, margin, seed) for seed in range(seeds)],
        jobs=jobs,
    )
    return float(np.mean([d for d in degrees if d is not None]))


def run_claim1(quick: bool = False, jobs: int | None = None) -> Table:
    """Claim 1: expected degree vs windowed measurement."""
    scale = scale_for(quick)
    n_window = scale.n_nodes
    table = Table(
        title=f"Claim 1 — expected in-region degree (N={n_window} per window)",
        headers=["r", "d analysis (Eqn 1)", "d measured", "rel.err"],
    )
    for tx_range in np.linspace(0.05, 0.3, 4 if quick else 6):
        analysis = float(expected_degree(n_window, float(n_window), tx_range))
        measured = measure_window_degree(
            n_window, float(tx_range), seeds=scale.seeds + 1, jobs=jobs
        )
        table.add_row(
            tx_range,
            analysis,
            measured,
            abs(measured - analysis) / analysis,
        )
    return table


def measure_cv_rates(
    n_nodes: int,
    tx_range: float,
    velocity: float,
    steps: int = 400,
    seed: int = 0,
    window: bool = False,
    margin: float = 1.0,
) -> float:
    """Measured per-node link change rate of the CV model on a torus.

    With ``window=True`` the measurement is restricted to node pairs
    whose endpoints both lie in the central unit window of a
    ``margin``-sized torus — the BCV rate.
    """
    region = SquareRegion(margin, Boundary.TORUS)
    model = ConstantVelocityModel(velocity)
    model.reset(n_nodes, region, seed)
    dt = 0.02 * tx_range / max(velocity, 1e-9)
    adjacency = compute_adjacency(region, model.positions, tx_range)
    changes = 0
    node_time = 0.0
    offset = (margin - 1.0) / 2.0
    for _ in range(steps):
        positions = model.advance(dt)
        new_adjacency = compute_adjacency(region, positions, tx_range)
        events = diff_adjacency(adjacency, new_adjacency)
        if window:
            in_window = np.all(
                (positions >= offset) & (positions <= offset + 1.0), axis=1
            )
            for pairs in (events.generated, events.broken):
                for u, v in pairs:
                    if in_window[u] and in_window[v]:
                        changes += 2  # the event touches both endpoints
            node_time += in_window.sum() * dt
        else:
            changes += 2 * events.change_count
            node_time += n_nodes * dt
        adjacency = new_adjacency
    return changes / node_time


def _cv_rate_task(task) -> float:
    """Picklable per-measurement worker for :func:`run_claim2`."""
    n_nodes, tx_range, velocity, steps, window, margin = task
    return measure_cv_rates(
        n_nodes, tx_range, velocity, steps=steps, window=window, margin=margin
    )


def run_claim2(quick: bool = False, jobs: int | None = None) -> Table:
    """Claim 2: CV and BCV link change rates vs simulation.

    The four (range, model) measurements are independent, so they run
    through :func:`repro.analysis.parallel.run_tasks` — parallel when
    ``jobs`` is set and memoized under an ambient result store.
    """
    scale = scale_for(quick)
    n_nodes = scale.n_nodes
    velocity = 0.02
    steps = 200 if quick else 500
    table = Table(
        title="Claim 2 — link change rates (CV on torus; BCV in window)",
        headers=["r", "model", "rate analysis", "rate measured", "rel.err"],
    )
    ranges = (0.05, 0.1)
    tasks = []
    for tx_range in ranges:
        tasks.append((n_nodes, tx_range, velocity, steps, False, 1.0))
        # BCV: window of a 2x2 torus at the same density.
        margin = 2.0
        total = int(n_nodes * margin * margin)
        tasks.append((total, tx_range, velocity, steps, True, margin))
    measured = run_tasks(_cv_rate_task, tasks, jobs=jobs)
    for index, tx_range in enumerate(ranges):
        analysis_cv = cv_link_change_rate(float(n_nodes), tx_range, velocity)
        measured_cv = measured[2 * index]
        table.add_row(
            tx_range,
            "CV",
            analysis_cv,
            measured_cv,
            abs(measured_cv - analysis_cv) / analysis_cv,
        )
        degree = float(expected_degree(n_nodes, float(n_nodes), tx_range))
        analysis_bcv = bcv_link_change_rate(degree, tx_range, velocity)
        measured_bcv = measured[2 * index + 1]
        table.add_row(
            tx_range,
            "BCV",
            analysis_bcv,
            measured_bcv,
            abs(measured_bcv - analysis_bcv) / analysis_bcv,
        )
    return table
