"""d-hop clustering trade-off: fewer clusters vs costlier maintenance.

The authors' own d-hop algorithm (MobDHop [18]) and companion overhead
analysis [16] motivate this extension experiment: growing the cluster
radius ``d`` shrinks the cluster count (less inter-cluster state) but
every membership now depends on a ``≤ d``-hop path that mobility can cut
anywhere along its length.  The experiment measures both sides of the
trade under identical mobility.
"""

from __future__ import annotations

from ..analysis import Table
from ..clustering import DHopClusterMaintenanceProtocol, MobDHopClustering
from ..core.params import NetworkParameters
from ..mobility import EpochRandomWaypointModel
from ..sim import Simulation
from .config import scale_for

__all__ = ["run_dhop"]


def run_dhop(quick: bool = False) -> Table:
    """Cluster count and CLUSTER maintenance rate vs hop bound d."""
    scale = scale_for(quick)
    params = NetworkParameters.from_fractions(
        n_nodes=scale.n_nodes, range_fraction=0.1, velocity_fraction=0.05
    )
    table = Table(
        title=(
            f"d-hop clustering trade-off (N={scale.n_nodes}, r=0.1a, "
            "v=0.05a/t, MobDHop)"
        ),
        headers=["d", "clusters", "P", "mean size", "f_cluster"],
        notes=[
            "identical seed and mobility per d",
            "f_cluster = CLUSTER maintenance messages per node per unit time",
        ],
    )
    for d in (1, 2, 3):
        sim = Simulation(
            params, EpochRandomWaypointModel(params.velocity, 1.0), seed=13
        )
        maintenance = DHopClusterMaintenanceProtocol(MobDHopClustering(d), d=d)
        sim.attach(maintenance)
        stats = sim.run(duration=scale.duration / 2, warmup=scale.warmup)
        head_ratio = maintenance.head_ratio()
        table.add_row(
            d,
            maintenance.cluster_count(),
            head_ratio,
            1.0 / head_ratio,
            stats.per_node_frequency("cluster"),
        )
    return table
