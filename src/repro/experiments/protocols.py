"""Protocol comparison: clustered hybrid routing vs flat baselines.

The paper's introduction motivates clustering with the claim that flat
proactive protocols (DSDV) become unacceptable as the network grows and
that clustering "significantly reduces" the communication overhead of
maintaining routing state.  This experiment quantifies that claim on
our substrate: the same mobility trace is replayed for three protocol
stacks —

* **hybrid** — LID clusters + proactive intra-cluster routing +
  reactive backbone discovery (plus HELLO and CLUSTER maintenance);
* **dsdv** — flat proactive distance-vector with periodic full dumps;
* **aodv** — flat on-demand discovery with full-network floods;

under an identical Poisson traffic workload, and reports per-node
control overhead (bits per unit time) and delivery ratio.
"""

from __future__ import annotations

import numpy as np

from ..analysis import Table
from ..clustering import ClusterMaintenanceProtocol, LowestIdClustering
from ..core.params import NetworkParameters
from ..mobility import EpochRandomWaypointModel, TraceRecorder, TraceReplayModel
from ..routing import (
    AodvProtocol,
    DsdvProtocol,
    HybridRoutingProtocol,
    IntraClusterRoutingProtocol,
)
from ..sim import HelloProtocol, Simulation
from .config import scale_for

__all__ = ["run_protocol_comparison", "run_traffic_epoch"]


def _record_trace(params: NetworkParameters, duration: float, seed: int):
    """Pre-record one mobility trace so all stacks see identical motion."""
    recorder = TraceRecorder(EpochRandomWaypointModel(params.velocity, epoch=1.0))
    sim = Simulation(params, recorder, seed=seed)
    steps = int(round(duration / sim.dt))
    for _ in range(steps):
        sim.step()
    return recorder.trace, sim.dt


def _traffic_pairs(n_nodes: int, count: int, seed: int) -> list[tuple[int, int]]:
    rng = np.random.default_rng(seed)
    pairs = []
    while len(pairs) < count:
        u, v = rng.integers(0, n_nodes, size=2)
        if u != v:
            pairs.append((int(u), int(v)))
    return pairs


def run_traffic_epoch(
    stack: str,
    params: NetworkParameters,
    trace,
    dt: float,
    pairs: list[tuple[int, int]],
    warmup: float,
) -> dict[str, float]:
    """Run one protocol stack over a replayed trace with traffic.

    Returns per-node control overhead (bits/unit time), per-node control
    message rate, and the fraction of traffic requests that found a
    usable route.
    """
    sim = Simulation(params, TraceReplayModel(trace), dt=dt, seed=0)
    router = None
    if stack == "hybrid":
        sim.attach(HelloProtocol("event"))
        maintenance = ClusterMaintenanceProtocol(LowestIdClustering())
        intra = IntraClusterRoutingProtocol(maintenance)
        sim.attach(intra)
        sim.attach(maintenance)
        router = sim.attach(HybridRoutingProtocol(maintenance, intra))
    elif stack == "dsdv":
        router = sim.attach(DsdvProtocol(periodic_interval=1.0))
    elif stack == "aodv":
        sim.attach(HelloProtocol("event"))  # AODV needs neighborhood sensing
        router = sim.attach(AodvProtocol())
    else:
        raise ValueError(f"unknown stack {stack!r}")

    total_steps = len(trace) - 1
    warmup_steps = int(round(warmup / dt))
    measured_steps = total_steps - warmup_steps
    if measured_steps <= 0:
        raise ValueError("trace too short for the requested warmup")
    sim.stats.stop_measuring()
    for _ in range(warmup_steps):
        sim.step()
    sim.stats.start_measuring()

    # Spread traffic requests uniformly over the measured window.
    request_steps = {
        warmup_steps + int(round(k * measured_steps / len(pairs))): pair
        for k, pair in enumerate(pairs)
    }
    delivered = 0
    for step_index in range(warmup_steps, total_steps):
        sim.step()
        pair = request_steps.get(step_index)
        if pair is None:
            continue
        source, destination = pair
        if stack == "hybrid":
            path = router.route(sim, source, destination)
        elif stack == "dsdv":
            path = router.path(sim, source, destination)
        else:
            path = router.route(sim, source, destination)
        if path is not None:
            delivered += 1
    sim.stats.stop_measuring()
    return {
        "overhead": sim.stats.total_overhead(),
        "messages": sum(
            sim.stats.per_node_frequency(cat) for cat in sim.stats.totals
        ),
        "delivery": delivered / len(pairs) if pairs else float("nan"),
    }


def run_protocol_comparison(quick: bool = False) -> Table:
    """Compare the three stacks across network sizes."""
    scale = scale_for(quick)
    sizes = [60, 120] if quick else [100, 200, 400]
    duration = scale.duration
    table = Table(
        title="Protocol comparison — per-node control overhead (bits/unit time)",
        headers=["N", "stack", "overhead", "msgs/node/t", "delivery"],
        notes=[
            "identical replayed mobility and traffic per N across stacks",
            "hybrid = HELLO + CLUSTER + intra-cluster ROUTE + backbone discovery",
        ],
    )
    for n_nodes in sizes:
        params = NetworkParameters.from_fractions(
            n_nodes=n_nodes, range_fraction=0.18, velocity_fraction=0.03
        )
        trace, dt = _record_trace(params, duration, seed=n_nodes)
        pairs = _traffic_pairs(n_nodes, 30 if quick else 60, seed=n_nodes + 1)
        for stack in ("hybrid", "dsdv", "aodv"):
            metrics = run_traffic_epoch(
                stack, params, trace, dt, pairs, warmup=duration * 0.15
            )
            table.add_row(
                n_nodes,
                stack,
                metrics["overhead"],
                metrics["messages"],
                metrics["delivery"],
            )
    return table
