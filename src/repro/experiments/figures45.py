"""Figures 4–5: the LID cluster-head probability analysis (Section 5).

* **Figure 4(a)** — the term ``1 - (1-P)^{d+1}`` of the Eqn (16)
  fixpoint approaches 1 as the closed neighborhood grows, which
  justifies the Eqn (17) approximation.
* **Figure 4(b)** — the exact Eqn (16) root against the ``1/sqrt(d+1)``
  approximation.
* **Figure 5(a)** — number of clusters vs network size: LID formation
  simulated on static uniform placements vs ``n = N P`` from Eqn (18).
* **Figure 5(b)** — number of clusters vs transmission range at
  ``N = 400``.

The scrape prints Figure 5(a)'s fixed range as ``r=.65a``; at that
range the network is near-fully-connected and clustering is trivial,
so we read it as ``r = 0.065a`` (a dropped zero) and note the
ambiguity.  Both figures' *shape claims* — cluster count grows with
``N``, falls with ``r``, and the analysis and simulation curves cross —
are asserted by the test suite.
"""

from __future__ import annotations

import numpy as np

from ..analysis import Table, crossing_indices
from ..analysis.parallel import run_tasks
from ..clustering import LowestIdClustering
from ..core.degree import expected_degree
from ..core.lid_analysis import (
    lid_head_probability_approx,
    lid_head_probability_exact,
    lid_member_mass,
)
from ..spatial import Boundary, SquareRegion
from .config import scale_for

__all__ = [
    "run_fig4a",
    "run_fig4b",
    "run_fig5a",
    "run_fig5b",
    "measure_lid_head_ratio",
]


def run_fig4a(quick: bool = False) -> Table:
    """Figure 4(a): ``1-(1-P)^{d+1}`` → 1 as the closed neighborhood grows."""
    degrees = np.array([1, 2, 4, 8, 16, 32, 64, 128], dtype=float)
    table = Table(
        title="Figure 4(a) — 1-(1-P)^(d+1) approaches 1 as d+1 increases",
        headers=["d+1", "P (Eqn 16)", "1-(1-P)^(d+1)"],
    )
    for degree in degrees:
        p = lid_head_probability_exact(degree)
        table.add_row(degree + 1, p, lid_member_mass(p, degree))
    return table


def run_fig4b(quick: bool = False) -> Table:
    """Figure 4(b): exact fixpoint vs the 1/sqrt(d+1) approximation."""
    degrees = np.geomspace(1.0, 256.0, 9)
    table = Table(
        title="Figure 4(b) — P from Eqn (16) vs approximation 1/sqrt(d+1)",
        headers=["d+1", "P exact", "P approx", "rel.err"],
    )
    for degree in degrees:
        exact = lid_head_probability_exact(degree)
        approx = lid_head_probability_approx(degree)
        table.add_row(
            degree + 1, exact, approx, abs(exact - approx) / exact
        )
    return table


def _head_ratio_task(task) -> float:
    """Picklable per-seed worker: LID head ratio on one placement."""
    n_nodes, tx_range, side, seed = task
    region = SquareRegion(side, Boundary.OPEN)
    positions = region.uniform_positions(n_nodes, seed)
    adjacency = region.adjacency(positions, tx_range)
    ids = np.random.default_rng(seed + 10_000).permutation(n_nodes)
    state = LowestIdClustering(ids).form(adjacency)
    return float(state.head_ratio())


def measure_lid_head_ratio(
    n_nodes: int,
    tx_range: float,
    side: float = 1.0,
    seeds: int = 5,
    jobs: int | None = None,
) -> float:
    """Mean LID head ratio over random static placements.

    Ids are randomly permuted per seed so they are independent of any
    placement structure, matching the LID uniqueness assumption.
    Per-seed placements run in parallel when ``jobs`` is set.
    """
    ratios = run_tasks(
        _head_ratio_task,
        [(n_nodes, tx_range, side, seed) for seed in range(seeds)],
        jobs=jobs,
    )
    return float(np.mean(ratios))


def run_fig5a(quick: bool = False, jobs: int | None = None) -> Table:
    """Figure 5(a): number of clusters vs N at fixed r = 0.065a."""
    scale = scale_for(quick)
    range_fraction = 0.065
    sizes = [50, 100, 200, 400] if quick else [50, 100, 200, 400, 800]
    table = Table(
        title="Figure 5(a) — number of clusters vs network size (r=0.065a)",
        headers=["N", "d (Claim 1)", "n sim", "n ana (Eqn 16)", "n ana (Eqn 17)"],
        notes=[
            "scrape prints r=.65a; read as r=0.065a (near-full connectivity "
            "otherwise) — see DESIGN.md",
        ],
    )
    sims, anas = [], []
    for n_nodes in sizes:
        degree = float(expected_degree(n_nodes, float(n_nodes), range_fraction))
        measured = measure_lid_head_ratio(
            n_nodes, range_fraction, seeds=scale.seeds + 2, jobs=jobs
        )
        exact = float(lid_head_probability_exact(degree))
        approx = float(lid_head_probability_approx(degree))
        sims.append(measured * n_nodes)
        anas.append(exact * n_nodes)
        table.add_row(
            n_nodes, degree, measured * n_nodes, exact * n_nodes, approx * n_nodes
        )
    crossings = crossing_indices(sims, anas)
    table.notes.append(
        f"sim/analysis curve crossings at indices {crossings}"
        if crossings
        else "curves do not cross on this grid"
    )
    return table


def run_fig5b(quick: bool = False, jobs: int | None = None) -> Table:
    """Figure 5(b): number of clusters vs transmission range at fixed N."""
    scale = scale_for(quick)
    n_nodes = 200 if quick else 400
    fractions = np.linspace(0.03, 0.25, scale.sweep_points)
    table = Table(
        title=f"Figure 5(b) — number of clusters vs r (N={n_nodes})",
        headers=["r/a", "d (Claim 1)", "n sim", "n ana (Eqn 16)", "n ana (Eqn 17)"],
    )
    for fraction in fractions:
        degree = float(expected_degree(n_nodes, float(n_nodes), fraction))
        measured = measure_lid_head_ratio(
            n_nodes, float(fraction), seeds=scale.seeds + 2, jobs=jobs
        )
        exact = float(lid_head_probability_exact(degree))
        approx = float(lid_head_probability_approx(degree))
        table.add_row(
            fraction, degree, measured * n_nodes, exact * n_nodes, approx * n_nodes
        )
    return table
