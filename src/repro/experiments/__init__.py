"""Experiments reproducing every figure and quantitative claim."""

from .config import FULL, QUICK, ExperimentScale, scale_for
from .registry import EXPERIMENTS, experiment_ids, run_experiment

__all__ = [
    "FULL",
    "QUICK",
    "ExperimentScale",
    "scale_for",
    "EXPERIMENTS",
    "experiment_ids",
    "run_experiment",
]
