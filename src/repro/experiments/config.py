"""Experiment scaling presets.

Every experiment runs at two scales: ``full`` approximates the paper's
setup (N = 400 nodes, long measurement windows, several seeds) and is
what EXPERIMENTS.md records; ``quick`` is a minutes-not-hours variant
used by the benchmark suite and CI.  Both exercise identical code
paths — only sizes differ.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ExperimentScale", "QUICK", "FULL", "scale_for"]


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs that trade fidelity for runtime."""

    name: str
    n_nodes: int
    seeds: int
    duration: float
    warmup: float
    sweep_points: int

    def __post_init__(self) -> None:
        if self.n_nodes < 10:
            raise ValueError(f"n_nodes must be at least 10, got {self.n_nodes}")
        if self.seeds < 1:
            raise ValueError(f"seeds must be positive, got {self.seeds}")
        if self.duration <= 0.0 or self.warmup < 0.0:
            raise ValueError("duration must be positive and warmup non-negative")
        if self.sweep_points < 2:
            raise ValueError(
                f"sweep_points must be at least 2, got {self.sweep_points}"
            )


#: Bench/CI scale: small but statistically meaningful.
QUICK = ExperimentScale(
    name="quick", n_nodes=120, seeds=2, duration=10.0, warmup=1.5, sweep_points=5
)

#: Paper scale: N = 400 as in Section 4.
FULL = ExperimentScale(
    name="full", n_nodes=400, seeds=3, duration=25.0, warmup=3.0, sweep_points=8
)


def scale_for(quick: bool) -> ExperimentScale:
    """Select the preset for a boolean ``quick`` flag."""
    return QUICK if quick else FULL
