"""The experiment registry: every paper artifact, one callable each.

``EXPERIMENTS`` maps experiment ids (DESIGN.md §4) to functions of a
single ``quick`` flag returning a renderable
:class:`~repro.analysis.report.Table`.  The CLI and the benchmark suite
both dispatch through :func:`run_experiment`.
"""

from __future__ import annotations

import inspect
import logging
import time
from collections.abc import Callable

from ..analysis import Table
from .ablations import (
    run_ablation_beacon,
    run_ablation_boundary,
    run_ablation_conventions,
    run_ablation_route_payload,
)
from .adaptive_beaconing import run_adaptive_beaconing
from .backbone import run_backbone
from .chaos_overhead import run_chaos_overhead
from .claims import run_claim1, run_claim2
from .clustering_comparison import run_clustering_comparison
from .dhop import run_dhop
from .figures123 import run_fig1, run_fig2, run_fig3
from .figures45 import run_fig4a, run_fig4b, run_fig5a, run_fig5b
from .mobility_sensitivity import run_mobility_sensitivity
from .protocols import run_protocol_comparison
from .sec6 import run_sec6
from .stability import run_stability

__all__ = ["EXPERIMENTS", "run_experiment", "experiment_ids"]

logger = logging.getLogger(__name__)

EXPERIMENTS: dict[str, Callable[[bool], Table]] = {
    "fig1": run_fig1,
    "fig2": run_fig2,
    "fig3": run_fig3,
    "fig4a": run_fig4a,
    "fig4b": run_fig4b,
    "fig5a": run_fig5a,
    "fig5b": run_fig5b,
    "sec6": run_sec6,
    "claim1": run_claim1,
    "claim2": run_claim2,
    "protocols": run_protocol_comparison,
    "clustering": run_clustering_comparison,
    "mobility": run_mobility_sensitivity,
    "backbone": run_backbone,
    "stability": run_stability,
    "dhop": run_dhop,
    "ablation-conventions": run_ablation_conventions,
    "ablation-route-payload": run_ablation_route_payload,
    "ablation-boundary": run_ablation_boundary,
    "ablation-beacon": run_ablation_beacon,
    "adaptive-beaconing": run_adaptive_beaconing,
    "chaos-overhead": run_chaos_overhead,
}


def experiment_ids() -> list[str]:
    """All registered experiment ids, in registry order."""
    return list(EXPERIMENTS)


def run_experiment(
    experiment_id: str, quick: bool = False, jobs: int | None = None
) -> Table:
    """Run one experiment by id.

    ``jobs`` is forwarded to runners that accept it (the seed-parallel
    experiments); purely analytical runners ignore it.
    """
    from ..obs.log import progress

    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(EXPERIMENTS)
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known ids: {known}"
        ) from None
    progress(
        "experiment %s starting (%s)",
        experiment_id,
        "quick" if quick else "full scale",
    )
    kwargs = {}
    if jobs is not None and "jobs" in inspect.signature(runner).parameters:
        kwargs["jobs"] = jobs
    started = time.perf_counter()
    table = runner(quick, **kwargs)
    logger.info(
        "experiment %s finished in %.2fs",
        experiment_id,
        time.perf_counter() - started,
    )
    return table
