"""Figures 1–3: control message frequencies vs r, v and density.

Each experiment reproduces one figure of Section 4: the simulation
stack (paper-variant RWP on a torus, LID clustering with reactive
maintenance, event-mode HELLO, proactive intra-cluster routing) is
swept over one parameter while the others stay fixed, and the three
measured per-node message frequencies are tabulated against the
analysis curves evaluated at the *measured* cluster-head ratio — the
paper's validation methodology.

Parameter anchors (the scrape lost most numeric values; these choices
follow the readable anchors and are recorded in EXPERIMENTS.md):

* Figure 1 — sweep ``r/a`` at fixed ``v = 0.05 a``;
* Figure 2 — sweep ``v/a`` at fixed ``r = 0.15 a``;
* Figure 3 — sweep density at fixed *absolute* ``r`` and ``v`` with
  ``N`` fixed (the area varies), as the paper's axis "number of nodes
  in a unit area" implies.
"""

from __future__ import annotations

import numpy as np

from ..analysis import SweepResult, Table, run_sweep, validate_sweep
from ..core.params import NetworkParameters
from .config import ExperimentScale, scale_for

__all__ = ["run_fig1", "run_fig2", "run_fig3", "sweep_table"]


def sweep_table(result: SweepResult, title: str, value_label: str) -> Table:
    """Render a sweep as the table behind one of Figures 1–3."""
    table = Table(
        title=title,
        headers=[
            value_label,
            "P(meas)",
            "f_hello sim",
            "f_hello ana",
            "f_cluster sim",
            "f_cluster ana",
            "f_route sim",
            "f_route ana",
        ],
    )
    for point in result.points:
        table.add_row(
            point.parameter_value,
            point.measured_head_ratio,
            point.measured["f_hello"],
            point.predicted["f_hello"],
            point.measured["f_cluster"],
            point.predicted["f_cluster"],
            point.measured["f_route"],
            point.predicted["f_route"],
        )
    verdict = validate_sweep(result)
    for key, curve in verdict.curves.items():
        table.notes.append(
            f"{key}: mean rel.err {curve.mean_relative_error:.2f}, "
            f"trend match {curve.same_trend}, corr {curve.correlation:.3f}"
        )
    return table


def _point_kwargs(scale: ExperimentScale, jobs: int | None) -> dict:
    return {
        "seeds": scale.seeds,
        "duration": scale.duration,
        "warmup": scale.warmup,
        "jobs": jobs,
    }


def run_fig1(quick: bool = False, jobs: int | None = None) -> Table:
    """Figure 1: frequencies vs transmission range (fractions of ``a``)."""
    scale = scale_for(quick)
    base = NetworkParameters.from_fractions(
        n_nodes=scale.n_nodes, range_fraction=0.10, velocity_fraction=0.05
    )
    fractions = np.linspace(0.06, 0.35, scale.sweep_points)
    result = run_sweep(
        "tx_range", base, fractions * base.side, **_point_kwargs(scale, jobs)
    )
    # Express the swept value as r/a, like the paper's x-axis.
    for point in result.points:
        object.__setattr__(
            point, "parameter_value", point.parameter_value / base.side
        )
    return sweep_table(
        result,
        f"Figure 1 — control message frequencies vs r (N={scale.n_nodes}, v=0.05a)",
        "r/a",
    )


def run_fig2(quick: bool = False, jobs: int | None = None) -> Table:
    """Figure 2: frequencies vs node velocity (fractions of ``a``)."""
    scale = scale_for(quick)
    base = NetworkParameters.from_fractions(
        n_nodes=scale.n_nodes, range_fraction=0.15, velocity_fraction=0.05
    )
    fractions = np.linspace(0.01, 0.15, scale.sweep_points)
    result = run_sweep(
        "velocity", base, fractions * base.side, **_point_kwargs(scale, jobs)
    )
    for point in result.points:
        object.__setattr__(
            point, "parameter_value", point.parameter_value / base.side
        )
    return sweep_table(
        result,
        f"Figure 2 — control message frequencies vs v (N={scale.n_nodes}, r=0.15a)",
        "v/a",
    )


def run_fig3(quick: bool = False, jobs: int | None = None) -> Table:
    """Figure 3: frequencies vs network density at fixed absolute r, v."""
    scale = scale_for(quick)
    # Fixed absolute range and speed; density varies through the area.
    # r is chosen so that even at the densest point (smallest area) the
    # range stays well below the side at both scales: at rho = 9 and
    # N = 120 the side is ~3.65, so r = 1 keeps r/a <= 0.28.
    tx_range, velocity = 1.0, 0.2
    densities = np.linspace(1.0, 9.0, scale.sweep_points)
    base = NetworkParameters(
        n_nodes=scale.n_nodes,
        density=densities[0],
        tx_range=tx_range,
        velocity=velocity,
    )
    result = run_sweep(
        "density", base, densities, **_point_kwargs(scale, jobs)
    )
    return sweep_table(
        result,
        f"Figure 3 — control message frequencies vs density "
        f"(N={scale.n_nodes}, r={tx_range}, v={velocity})",
        "rho",
    )
