"""Chaos-hardened sweep: control overhead vs crash/loss fault rates.

The paper's overhead analysis assumes a benign network — every node
stays up, every control packet is received.  This experiment measures
how far the three per-node control frequencies drift from that baseline
when a deterministic :mod:`repro.faults` plan injects node crashes
(with recovery and full state wipe) and Bernoulli packet loss, across
the same velocity axis as Figure 2.

Each fault level reuses the sweep worker
(:func:`repro.analysis.sweep._run_once_task`), so faulted runs flow
through the identical measurement path as the paper reproduction —
the fault block simply rides as the task tuple's 8th element, which
also gives every (velocity, fault level, seed) run its own store
fingerprint.  The graceful-degradation knobs (HELLO miss tolerance)
are part of the faulted levels, so the table shows the *hardened*
stack's overhead, not a stack collapsing under loss.
"""

from __future__ import annotations

import numpy as np

from ..analysis import Table
from ..analysis.parallel import run_tasks
from ..analysis.series import summarize
from ..analysis.sweep import _run_once_task
from ..clustering import LowestIdClustering
from ..core.params import NetworkParameters
from .config import ExperimentScale, scale_for

__all__ = ["run_chaos_overhead", "FAULT_ROSTER", "chaos_table"]

#: The fault levels: the unfaulted baseline first, then crash-only,
#: loss-only, and the combined storm.  Specs are ``faults`` blocks (see
#: :func:`repro.faults.fault_config_from_dict`); ``None`` means no plan
#: is attached at all, so the baseline rows are byte-identical to a
#: stock Figure-2 measurement.
FAULT_ROSTER: tuple[tuple[str, dict | None], ...] = (
    ("none", None),
    (
        "crash",
        {"crash_rate": 0.005, "crash_recover_after": 2.0},
    ),
    (
        "loss",
        {"loss_rate": 0.1, "hello_miss_limit": 3},
    ),
    (
        "crash+loss",
        {
            "crash_rate": 0.005,
            "crash_recover_after": 2.0,
            "loss_rate": 0.1,
            "hello_miss_limit": 3,
        },
    ),
)

_FREQUENCY_KEYS = ("f_hello", "f_cluster", "f_route")


def _measure_roster(
    params_by_velocity: list[NetworkParameters],
    roster,
    scale: ExperimentScale,
    jobs: int | None,
) -> dict[tuple[int, str], dict[str, float]]:
    """Fan every (velocity, fault level, seed) run out as one task list.

    Returns seed-averaged frequencies keyed by (velocity index, level
    name).  One flat :func:`run_tasks` call keeps results
    order-deterministic for any ``jobs`` value.
    """
    algorithm = LowestIdClustering()
    tasks = []
    keys: list[tuple[int, str]] = []
    for index, params in enumerate(params_by_velocity):
        for name, faults in roster:
            for seed in range(scale.seeds):
                task = (
                    params,
                    seed,
                    scale.duration,
                    scale.warmup,
                    1.0,
                    algorithm,
                )
                if faults is not None:
                    # Beacon placeholder keeps element positions fixed
                    # (beacon is the optional 7th, faults the 8th).
                    task = task + (None, faults)
                tasks.append(task)
                keys.append((index, name))
    runs = run_tasks(_run_once_task, tasks, jobs=jobs)
    grouped: dict[tuple[int, str], list[dict[str, float]]] = {}
    for key, (frequencies, _ratio) in zip(keys, runs):
        grouped.setdefault(key, []).append(frequencies)
    return {
        key: {
            metric: summarize([run[metric] for run in runs_at]).mean
            for metric in _FREQUENCY_KEYS
        }
        for key, runs_at in grouped.items()
    }


def chaos_table(
    fractions,
    measured: dict[tuple[int, str], dict[str, float]],
    roster,
    title: str,
) -> Table:
    """Tabulate overhead vs fault level with baseline ratios."""
    table = Table(
        title=title,
        headers=[
            "v/a",
            "faults",
            "f_hello",
            "f_cluster",
            "f_route",
            "total/baseline",
        ],
    )
    baseline_name = roster[0][0]
    worst = 0.0
    for index, fraction in enumerate(fractions):
        baseline = measured[(index, baseline_name)]
        baseline_total = sum(baseline[key] for key in _FREQUENCY_KEYS)
        for name, _faults in roster:
            point = measured[(index, name)]
            total = sum(point[key] for key in _FREQUENCY_KEYS)
            ratio = total / baseline_total if baseline_total else float("nan")
            if name != baseline_name and ratio > worst:
                worst = ratio
            table.add_row(
                float(fraction),
                name,
                point["f_hello"],
                point["f_cluster"],
                point["f_route"],
                "baseline" if name == baseline_name else f"{ratio:.3f}x",
            )
    table.notes.append(
        "faulted rows run the hardened stack (HELLO miss tolerance on "
        "lossy levels); plans are deterministic per seed, so rows "
        "reproduce exactly"
    )
    if worst:
        table.notes.append(
            f"worst total-overhead inflation vs baseline: {worst:.3f}x"
        )
    return table


def run_chaos_overhead(
    quick: bool = False, jobs: int | None = None
) -> Table:
    """Overhead vs crash/loss fault rate across the Fig-2 velocity axis."""
    scale = scale_for(quick)
    base = NetworkParameters.from_fractions(
        n_nodes=scale.n_nodes, range_fraction=0.15, velocity_fraction=0.05
    )
    fractions = np.linspace(0.01, 0.15, scale.sweep_points)
    params_by_velocity = [
        base.with_(velocity=float(fraction * base.side))
        for fraction in fractions
    ]
    measured = _measure_roster(params_by_velocity, FAULT_ROSTER, scale, jobs)
    return chaos_table(
        fractions,
        measured,
        FAULT_ROSTER,
        "Chaos sweep — control overhead vs crash/loss faults "
        f"(N={scale.n_nodes}, r=0.15a)",
    )
