"""Backbone structure vs transmission range (scalability future work).

The paper's conclusion lists scalability analysis as future work; the
quantity that governs it is the *backbone*: the heads-plus-gateways
subset that forwards inter-cluster traffic.  This experiment sweeps the
transmission range and reports the backbone's size, its reachability
(does restricting forwarding to it lose connectivity?), and the head
separation guaranteed by property P1.
"""

from __future__ import annotations

import numpy as np

from ..analysis import Table
from ..analysis.topology import summarize_structure
from ..clustering import LowestIdClustering
from ..spatial import Boundary, SquareRegion
from .config import scale_for

__all__ = ["run_backbone"]


def run_backbone(quick: bool = False) -> Table:
    """Structural metrics of LID-clustered topologies across ranges."""
    scale = scale_for(quick)
    n_nodes = scale.n_nodes
    region = SquareRegion(1.0, Boundary.OPEN)
    table = Table(
        title=f"Backbone structure vs transmission range (N={n_nodes}, LID)",
        headers=[
            "r/a",
            "P",
            "gateway ratio",
            "backbone ratio",
            "reachability",
            "max diam",
            "min head sep / r",
        ],
        notes=[
            "backbone = heads + gateways; reachability = fraction of "
            "connected pairs still connected when only the backbone forwards",
            "P1 guarantees min head separation / r > 1",
        ],
    )
    for fraction in np.linspace(0.08, 0.3, scale.sweep_points):
        summaries = []
        for seed in range(scale.seeds):
            positions = region.uniform_positions(n_nodes, seed)
            adjacency = region.adjacency(positions, float(fraction))
            state = LowestIdClustering().form(adjacency)
            summaries.append(
                summarize_structure(
                    state,
                    adjacency,
                    positions,
                    region,
                    samples=120 if quick else 250,
                    rng=seed,
                )
            )
        table.add_row(
            float(fraction),
            float(np.mean([s.head_ratio for s in summaries])),
            float(np.mean([s.gateway_ratio for s in summaries])),
            float(np.mean([s.backbone_ratio for s in summaries])),
            float(np.mean([s.backbone_reachability for s in summaries])),
            float(np.max([s.max_cluster_diameter for s in summaries])),
            float(
                np.min([s.min_head_separation for s in summaries]) / fraction
            ),
        )
    return table
