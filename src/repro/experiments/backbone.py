"""Backbone structure vs transmission range (scalability future work).

The paper's conclusion lists scalability analysis as future work; the
quantity that governs it is the *backbone*: the heads-plus-gateways
subset that forwards inter-cluster traffic.  This experiment sweeps the
transmission range and reports the backbone's size, its reachability
(does restricting forwarding to it lose connectivity?), and the head
separation guaranteed by property P1.
"""

from __future__ import annotations

import numpy as np

from ..analysis import Table
from ..analysis.parallel import run_tasks
from ..analysis.topology import summarize_structure
from ..clustering import LowestIdClustering
from ..spatial import Boundary, SquareRegion
from .config import scale_for

__all__ = ["run_backbone"]


def _structure_task(task):
    """Picklable per-(range, seed) worker: one clustered-topology summary."""
    n_nodes, fraction, samples, seed = task
    region = SquareRegion(1.0, Boundary.OPEN)
    positions = region.uniform_positions(n_nodes, seed)
    adjacency = region.adjacency(positions, fraction)
    state = LowestIdClustering().form(adjacency)
    return summarize_structure(
        state, adjacency, positions, region, samples=samples, rng=seed
    )


def run_backbone(quick: bool = False, jobs: int | None = None) -> Table:
    """Structural metrics of LID-clustered topologies across ranges."""
    scale = scale_for(quick)
    n_nodes = scale.n_nodes
    table = Table(
        title=f"Backbone structure vs transmission range (N={n_nodes}, LID)",
        headers=[
            "r/a",
            "P",
            "gateway ratio",
            "backbone ratio",
            "reachability",
            "max diam",
            "min head sep / r",
        ],
        notes=[
            "backbone = heads + gateways; reachability = fraction of "
            "connected pairs still connected when only the backbone forwards",
            "P1 guarantees min head separation / r > 1",
        ],
    )
    fractions = [float(f) for f in np.linspace(0.08, 0.3, scale.sweep_points)]
    samples = 120 if quick else 250
    # One flat task list over (range, seed) keeps every worker busy even
    # when seeds < jobs; results come back in task order, so slicing by
    # seed count regroups them per fraction.
    results = run_tasks(
        _structure_task,
        [
            (n_nodes, fraction, samples, seed)
            for fraction in fractions
            for seed in range(scale.seeds)
        ],
        jobs=jobs,
    )
    for index, fraction in enumerate(fractions):
        summaries = results[index * scale.seeds : (index + 1) * scale.seeds]
        table.add_row(
            float(fraction),
            float(np.mean([s.head_ratio for s in summaries])),
            float(np.mean([s.gateway_ratio for s in summaries])),
            float(np.mean([s.backbone_ratio for s in summaries])),
            float(np.mean([s.backbone_reachability for s in summaries])),
            float(np.max([s.max_cluster_diameter for s in summaries])),
            float(
                np.min([s.min_head_separation for s in summaries]) / fraction
            ),
        )
    return table
