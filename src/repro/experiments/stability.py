"""Cluster stability comparison (the LCC motivation, quantified).

Section 2 of the paper invokes the Least Clusterhead Change principle;
this experiment measures what it protects: head tenure and
re-affiliation churn under mobility, for each one-hop algorithm
(including HCC with live-degree priorities, whose head set chases the
densest nodes and is therefore expected to churn more than id-based
LID).
"""

from __future__ import annotations

from ..analysis import Table
from ..clustering import (
    ClusterMaintenanceProtocol,
    DmacClustering,
    HighestConnectivityClustering,
    LowestIdClustering,
    StabilityTracker,
)
from ..core.params import NetworkParameters
from ..mobility import EpochRandomWaypointModel
from ..sim import Simulation
from .config import scale_for

__all__ = ["run_stability"]

_VARIANTS = (
    ("lid", lambda: LowestIdClustering(), False),
    ("hcc (static prio)", lambda: HighestConnectivityClustering(), False),
    ("hcc (dynamic prio)", lambda: HighestConnectivityClustering(), True),
    ("dmac", lambda: DmacClustering(seed=5), False),
)


def run_stability(quick: bool = False) -> Table:
    """Stability of each one-hop algorithm under identical mobility."""
    scale = scale_for(quick)
    params = NetworkParameters.from_fractions(
        n_nodes=scale.n_nodes, range_fraction=0.15, velocity_fraction=0.05
    )
    table = Table(
        title=(
            f"Cluster stability under mobility (N={scale.n_nodes}, "
            "r=0.15a, v=0.05a/t)"
        ),
        headers=[
            "algorithm",
            "P",
            "head tenure",
            "affil tenure",
            "head chg/node/t",
            "affil chg/node/t",
        ],
        notes=[
            "identical seed and mobility per variant",
            "affil chg rate == CLUSTER message rate (1 message per change)",
        ],
    )
    for name, factory, dynamic in _VARIANTS:
        sim = Simulation(
            params, EpochRandomWaypointModel(params.velocity, 1.0), seed=8
        )
        maintenance = ClusterMaintenanceProtocol(
            factory(), dynamic_priority=dynamic
        )
        sim.attach(maintenance)
        tracker = sim.attach(StabilityTracker(maintenance))
        sim.run(duration=scale.duration, warmup=0.0)
        summary = tracker.summary()
        table.add_row(
            name,
            maintenance.head_ratio(),
            summary.mean_head_tenure,
            summary.mean_affiliation_tenure,
            summary.head_change_rate,
            summary.affiliation_change_rate,
        )
    return table
