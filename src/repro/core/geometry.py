"""Link-distance geometry for nodes placed uniformly in a square.

The analytical model of the paper rests on the distribution of the
distance between two points placed independently and uniformly at random
in a square region (Miller, *Distribution of Link Distances in a
Wireless Network*, J. Res. NIST 106(2), 2001).  This module provides the
probability density function, cumulative distribution function, moments
and sampling helpers for that distribution (also known as the "square
line picking" distribution).

All functions accept either scalars or NumPy arrays and are vectorized.
Distances may be expressed either normalized to the square side
(``s = x / D`` with support ``[0, sqrt(2)]``) or in absolute units via
the ``side`` keyword.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "SQRT2",
    "link_distance_pdf",
    "link_distance_cdf",
    "link_distance_mean",
    "link_distance_moment",
    "connectivity_probability",
    "torus_connectivity_probability",
    "sample_link_distances",
    "circle_square_overlap_fraction",
]

#: Maximum normalized distance between two points in a unit square.
SQRT2 = math.sqrt(2.0)

# Mean of the square line picking distribution for the unit square:
# (2 + sqrt(2) + 5*asinh(1)) / 15.
_MEAN_UNIT_SQUARE = (2.0 + SQRT2 + 5.0 * math.asinh(1.0)) / 15.0


def _normalize(x, side: float):
    """Return ``x / side`` as a float array, validating ``side``."""
    if side <= 0.0:
        raise ValueError(f"side must be positive, got {side}")
    return np.asarray(x, dtype=float) / side


def link_distance_pdf(x, side: float = 1.0):
    """Density of the distance between two uniform points in a square.

    Parameters
    ----------
    x:
        Distance (scalar or array).  Values outside ``[0, sqrt(2)*side]``
        have zero density.
    side:
        Side length ``D`` of the square.  Defaults to the unit square.

    Returns
    -------
    Density evaluated at ``x`` (same shape as ``x``).  For ``side != 1``
    the density is scaled so it integrates to one over absolute
    distances.
    """
    s = _normalize(x, side)
    out = np.zeros_like(s)

    near = (s >= 0.0) & (s <= 1.0)
    sn = s[near]
    out[near] = 2.0 * sn * (sn * sn - 4.0 * sn + math.pi)

    far = (s > 1.0) & (s <= SQRT2)
    sf = s[far]
    root = np.sqrt(sf * sf - 1.0)
    out[far] = 2.0 * sf * (
        4.0 * root - (sf * sf + 2.0 - math.pi) - 4.0 * np.arctan(root)
    )

    out /= side
    if np.isscalar(x) or np.ndim(x) == 0:
        return float(out)
    return out


def link_distance_cdf(x, side: float = 1.0):
    """CDF of the distance between two uniform points in a square.

    This is the function :math:`F_d` of the paper's Claim 1 (its Eqn (2)
    cites Miller's result for the ``x <= side`` branch):

    .. math::

        F(s) = \\pi s^2 - \\tfrac{8}{3} s^3 + \\tfrac{1}{2} s^4,
        \\qquad 0 \\le s \\le 1,

    with ``s = x / side``.  The ``1 <= s <= sqrt(2)`` branch is the
    closed-form integral of the square line picking density, so the
    function is valid on the full support.
    """
    s = _normalize(x, side)
    out = np.zeros_like(s)

    near = (s >= 0.0) & (s <= 1.0)
    sn = s[near]
    out[near] = math.pi * sn**2 - (8.0 / 3.0) * sn**3 + 0.5 * sn**4

    far = (s > 1.0) & (s < SQRT2)
    sf = s[far]
    root = np.sqrt(sf * sf - 1.0)
    out[far] = (
        1.0 / 3.0
        + (math.pi - 2.0) * sf**2
        - 0.5 * sf**4
        + (8.0 / 3.0) * (sf * sf - 1.0) ** 1.5
        + 4.0 * root
        - 4.0 * sf**2 * np.arctan(root)
    )

    out[s >= SQRT2] = 1.0
    if np.isscalar(x) or np.ndim(x) == 0:
        return float(out)
    return out


def link_distance_mean(side: float = 1.0) -> float:
    """Mean distance between two uniform points in a square of ``side``."""
    if side <= 0.0:
        raise ValueError(f"side must be positive, got {side}")
    return _MEAN_UNIT_SQUARE * side


def link_distance_moment(k: int, side: float = 1.0, num: int = 20001) -> float:
    """k-th raw moment of the link distance, by high-resolution quadrature.

    Closed forms exist for small ``k`` but a Simpson quadrature over the
    closed-form density is exact to well below any tolerance used in this
    project and keeps the code uniform for every ``k``.
    """
    if k < 0:
        raise ValueError(f"moment order must be non-negative, got {k}")
    from scipy.integrate import simpson

    s = np.linspace(0.0, SQRT2, num)
    integrand = s**k * link_distance_pdf(s)
    return float(simpson(integrand, x=s)) * side**k


def connectivity_probability(r: float, side: float) -> float:
    """Probability that two random nodes in the square are within range ``r``.

    Exactly ``link_distance_cdf(r, side)``; named alias matching the
    paper's usage ("F_d(r) gives the probability that two randomly
    selected nodes ... are connected").
    """
    return float(link_distance_cdf(r, side))


def torus_connectivity_probability(r: float, side: float = 1.0) -> float:
    """Probability two uniform points on a square *torus* are within ``r``.

    The simulator wraps its region (the paper's own RWP variant does
    too), so its connectivity follows the torus metric, not the bounded
    square of Claim 1 — this function quantifies that gap.  With
    ``s = r / side``:

    * ``s <= 1/2`` — the disk fits inside the fundamental cell:
      probability is simply ``pi s^2``;
    * ``1/2 < s <= sqrt(2)/2`` — four circular segments poke across the
      cell edges and must not be double counted:
      ``pi s^2 - 4 (s^2 acos(1/(2s)) - (1/2) sqrt(s^2 - 1/4))``;
    * ``s > sqrt(2)/2`` — the disk covers the cell: probability 1.

    (On a torus the distance distribution is the same for every anchor
    point, so this is also the exact per-node degree fraction.)
    """
    if side <= 0.0:
        raise ValueError(f"side must be positive, got {side}")
    if r < 0.0:
        raise ValueError(f"r must be non-negative, got {r}")
    s = r / side
    if s <= 0.5:
        return math.pi * s * s
    if s >= math.sqrt(0.5):
        return 1.0
    segments = 4.0 * (
        s * s * math.acos(1.0 / (2.0 * s))
        - 0.5 * math.sqrt(s * s - 0.25)
    )
    return math.pi * s * s - segments


def sample_link_distances(n: int, side: float = 1.0, rng=None) -> np.ndarray:
    """Draw ``n`` i.i.d. link distances by sampling point pairs.

    Used by tests to cross-check the closed forms against empirical
    distributions.
    """
    if n < 0:
        raise ValueError(f"sample count must be non-negative, got {n}")
    rng = np.random.default_rng(rng)
    p = rng.uniform(0.0, side, size=(n, 2))
    q = rng.uniform(0.0, side, size=(n, 2))
    return np.hypot(p[:, 0] - q[:, 0], p[:, 1] - q[:, 1])


def circle_square_overlap_fraction(r: float, side: float, num: int = 256) -> float:
    """Average fraction of a radius-``r`` disk that lies inside the square.

    For a node placed uniformly in the square, this is the expected
    fraction of its transmission disk that falls inside the region —
    the boundary-effect factor that distinguishes the bounded (BCV)
    model from the infinite-plane (CV) model.  Computed by Monte-Carlo-
    free grid quadrature over the node position using the exact
    circle/half-plane clipping area.
    """
    if r <= 0.0:
        return 1.0
    if side <= 0.0:
        raise ValueError(f"side must be positive, got {side}")
    # Position grid (midpoint rule) over one quadrant by symmetry.
    xs = (np.arange(num) + 0.5) / num * (side / 2.0)
    gx, gy = np.meshgrid(xs, xs, indexing="ij")

    def _clip_area(cx, cy):
        # Area of disk of radius r centred at (cx, cy) inside [0, side]^2,
        # computed by 1-D quadrature over the chord length.
        t = np.linspace(-r, r, 129)
        half = np.sqrt(np.maximum(r * r - t * t, 0.0))
        x = cx[..., None] + t
        inside_x = (x >= 0.0) & (x <= side)
        lo = np.maximum(cy[..., None] - half, 0.0)
        hi = np.minimum(cy[..., None] + half, side)
        chord = np.maximum(hi - lo, 0.0) * inside_x
        return np.trapezoid(chord, t, axis=-1)

    areas = _clip_area(gx, gy)
    return float(np.mean(areas) / (math.pi * r * r))
