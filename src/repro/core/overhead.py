"""Closed-form control overhead model (Sections 3.5 and 6 of the paper).

This module is the paper's primary contribution: lower bounds on the
per-node rate and bandwidth of the three control message categories of a
one-hop clustered MANET running reactive cluster maintenance and hybrid
(proactive intra-cluster) routing.

All frequencies are *per node per unit time*; all overheads are in
*bits per unit time per node* (``frequency * message size``).

The model is parameterized by :class:`~repro.core.params.NetworkParameters`
and the cluster-head ratio ``P`` of the clustering algorithm in use
(obtainable for LID from :mod:`repro.core.lid_analysis`, or measured
from a simulation for any other algorithm — the paper itself plugs the
*measured* ``P`` into the analysis curves of Figures 1–3).

Two conventions
---------------
The only surviving copy of the paper is an OCR scrape that destroyed
the equations' constants, so each formula was re-derived from the
paper's own counting arguments (see DESIGN.md §2).  Two readings exist:

* ``convention="consistent"`` (default) — the self-consistent counting:
  every network-wide event rate is (total link-event rate) × (fraction
  of links of the triggering kind), with each two-endpoint event
  counted once.  This is the version that matches the discrete-event
  simulation — which is the agreement the paper itself reports.
* ``convention="printed"`` — the literal transliteration of the damaged
  equations (Eqns 6, 10, 13 as the glyphs survive).  It double-counts
  member–head breaks by ``2(1-P)`` and head merges by ``2``, and halves
  the route rate; kept as the OCR-fidelity ablation.

Equation map (numbers follow the paper):

====  =============================================================
Eqn   Implementation
====  =============================================================
(4)   :func:`hello_frequency` — ``f_hello = lambda_gen``
(5)   :func:`hello_overhead`
(6)   :func:`member_head_break_frequency` (per cluster-member)
(7)   network total of (6); exposed via :func:`cluster_frequency`
(8)   head-head link generation rate, via Claim 2 applied to heads
(9)   head degree ``d'``, :func:`~repro.core.degree.expected_head_degree`
(10)  network total CLUSTER messages from head-head generations
(11)  :func:`cluster_frequency` — per-node CLUSTER rate
(12)  :func:`cluster_overhead`
(13)  :func:`route_frequency`
(14)  :func:`route_overhead`
====  =============================================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .degree import expected_degree, expected_head_degree
from .linkdynamics import bcv_link_generation_rate
from .params import NetworkParameters

__all__ = [
    "hello_frequency",
    "hello_overhead",
    "member_head_break_frequency",
    "head_merge_cluster_message_rate",
    "cluster_frequency",
    "cluster_overhead",
    "route_frequency",
    "route_overhead",
    "total_overhead",
    "OverheadBreakdown",
    "overhead_breakdown",
]

_PI2 = math.pi**2
_CONVENTIONS = ("consistent", "printed")


def _check_head_probability(p) -> None:
    arr = np.asarray(p, dtype=float)
    if np.any((arr <= 0.0) | (arr > 1.0)):
        raise ValueError(f"head probability must lie in (0, 1], got {p}")


def _check_convention(convention: str) -> None:
    if convention not in _CONVENTIONS:
        raise ValueError(
            f"convention must be one of {_CONVENTIONS}, got {convention!r}"
        )


# ----------------------------------------------------------------------
# HELLO (Eqns 4-5)
# ----------------------------------------------------------------------
def hello_frequency(params: NetworkParameters) -> float:
    """Eqn (4): minimum per-node HELLO rate.

    A node must beacon at least once per new neighbor (link breaks are
    detected by soft timers and need no transmission), so the minimum
    HELLO rate equals the BCV link generation rate
    ``lambda_gen = 8 d v / (pi^2 r)``.  Both conventions agree here.
    """
    degree = expected_degree(params.n_nodes, params.density, params.tx_range)
    return float(
        bcv_link_generation_rate(degree, params.tx_range, params.velocity)
    )


def hello_overhead(params: NetworkParameters) -> float:
    """Eqn (5): per-node HELLO overhead in bits per unit time."""
    return params.messages.p_hello * hello_frequency(params)


# ----------------------------------------------------------------------
# CLUSTER (Eqns 6-12)
# ----------------------------------------------------------------------
def member_head_break_frequency(
    params: NetworkParameters,
    head_probability: float,
    convention: str = "consistent",
) -> float:
    """Eqn (6): CLUSTER rate at each member due to losing its head link.

    Consistent counting: a member has ``d`` links of which exactly one
    is to its head; each of its ``lambda_brk = 8 d v / (pi^2 r)`` breaks
    per unit time hits the head link w.p. ``1/d``, so the per-member
    rate is ``8 v / (pi^2 r)``.

    Printed counting multiplies the per-member break rate by the
    *global* member–head link fraction ``2(1-P)/d``, giving
    ``16 v (1-P) / (pi^2 r)`` — larger by ``2(1-P)``.
    """
    _check_head_probability(head_probability)
    _check_convention(convention)
    base = 8.0 * params.velocity / (_PI2 * params.tx_range)
    if convention == "printed":
        return 2.0 * (1.0 - head_probability) * base
    return base


def head_merge_cluster_message_rate(
    params: NetworkParameters,
    head_probability: float,
    convention: str = "consistent",
) -> float:
    """Eqns (8)-(10): network-wide CLUSTER message rate from head merges.

    When two cluster-heads come into range (violating property P1) one
    resigns and its whole cluster of ``m = 1 / P`` nodes re-affiliates,
    each sending one CLUSTER message.  The per-head generation rate with
    other heads is ``8 d' v / (pi^2 r)`` (Claim 2 on the head
    sub-population, Eqns 8–9).  Consistent counting halves the per-event
    double count (each merge involves two heads):
    ``N P * (8 d' v / (pi^2 r)) / 2 * m = 4 d' v N / (pi^2 r)``;
    the printed form keeps ``8 d' v N / (pi^2 r)``.
    """
    _check_head_probability(head_probability)
    _check_convention(convention)
    d_head = expected_head_degree(
        params.n_nodes, params.density, params.tx_range, head_probability
    )
    coefficient = 8.0 if convention == "printed" else 4.0
    return (
        coefficient
        * float(d_head)
        * params.velocity
        * params.n_nodes
        / (_PI2 * params.tx_range)
    )


def cluster_frequency(
    params: NetworkParameters,
    head_probability: float,
    convention: str = "consistent",
) -> float:
    """Eqn (11): per-node CLUSTER message rate.

    Sum of the member–head break component (per-member rate of Eqn 6
    times the member fraction ``1-P``) and the head-merge component
    (Eqn 10 averaged over ``N`` nodes).
    """
    _check_head_probability(head_probability)
    _check_convention(convention)
    member_component = (1.0 - head_probability) * member_head_break_frequency(
        params, head_probability, convention
    )
    merge_component = (
        head_merge_cluster_message_rate(params, head_probability, convention)
        / params.n_nodes
    )
    return member_component + merge_component


def cluster_overhead(
    params: NetworkParameters,
    head_probability: float,
    convention: str = "consistent",
) -> float:
    """Eqn (12): per-node CLUSTER overhead in bits per unit time."""
    return params.messages.p_cluster * cluster_frequency(
        params, head_probability, convention
    )


# ----------------------------------------------------------------------
# ROUTE (Eqns 13-14)
# ----------------------------------------------------------------------
def route_frequency(
    params: NetworkParameters,
    head_probability: float,
    convention: str = "consistent",
    links: str = "all",
) -> float:
    """Eqn (13): per-node proactive intra-cluster route update rate.

    Every intra-cluster link change triggers one round of route-update
    broadcasting in which each of the cluster's ``m = 1/P`` nodes
    transmits once.  Intra-cluster links comprise the ``N (1-P)``
    member–head links plus member–member links inside a common cluster
    (both endpoints members w.p. ``(1-P)^2`` and co-clustered w.p.
    ``1-P``, i.e. ``N (1-P)^3`` links), a fraction
    ``[2(1-P) + 2(1-P)^3] / d`` of all links.  The network link-event
    rate is ``N lambda / 2`` with ``lambda = 16 d v / (pi^2 r)``, so

    .. math::

        f_{routing} = \\frac{16 v \\left[(1-P) + (1-P)^3\\right]}{\\pi^2 r P}.

    The printed glyphs read ``8 v (1-P)(2-(2-P)P) / (pi^2 r P)`` —
    identical numerator algebra, half the coefficient.

    The ``(1-P)^3`` member–member term ignores spatial correlation
    (co-members share a disk, so far more of their links are
    intra-cluster than a random-graph estimate suggests), which is why
    the model is a *lower bound* whose gap grows with cluster size.
    ``links="member_head"`` drops that term, modelling a star routing
    topology: member–head links only, whose count is exactly ``N(1-P)``
    and which — being guaranteed by property P2 — can only *break*
    (a member is never "newly linked" to its own head), so only the
    break half of the change rate applies.  Paired with the simulator's
    ``topology="star"`` trigger, the remaining analysis/simulation gap
    isolates the one irreducible mean-field approximation: update
    rounds weight clusters by size, so the effective messages-per-event
    exceed the mean cluster size ``1/P`` by the size distribution's
    skew.
    """
    _check_head_probability(head_probability)
    _check_convention(convention)
    if links not in ("all", "member_head"):
        raise ValueError(
            f"links must be 'all' or 'member_head', got {links!r}"
        )
    p = head_probability
    coefficient = 8.0 if convention == "printed" else 16.0
    if links == "member_head":
        # Break-only events: half the link change rate applies.
        link_mass = 0.5 * (1.0 - p)
    else:
        link_mass = (1.0 - p) + (1.0 - p) ** 3
    numerator = coefficient * params.velocity * link_mass
    return numerator / (_PI2 * params.tx_range * p)


def route_overhead(
    params: NetworkParameters,
    head_probability: float,
    full_table: bool = False,
    convention: str = "consistent",
) -> float:
    """Eqn (14): per-node ROUTE overhead in bits per unit time.

    ``p_route`` is the size of a single routing table entry.  With
    ``full_table=False`` each update message carries one changed entry
    (the literal Eqn 14).  With ``full_table=True`` each message carries
    the full intra-cluster table of ``m = 1/P`` entries — the reading
    under which Section 6's claim that ROUTE overhead *grows with r*
    and dominates "because of its ... large message size" holds.
    """
    _check_head_probability(head_probability)
    freq = route_frequency(params, head_probability, convention)
    entries = 1.0 / head_probability if full_table else 1.0
    return params.messages.p_route * entries * freq


# ----------------------------------------------------------------------
# Totals
# ----------------------------------------------------------------------
def total_overhead(
    params: NetworkParameters,
    head_probability: float,
    full_table: bool = False,
    convention: str = "consistent",
) -> float:
    """Per-node total control overhead ``O_hello + O_cluster + O_routing``."""
    return (
        hello_overhead(params)
        + cluster_overhead(params, head_probability, convention)
        + route_overhead(
            params, head_probability, full_table=full_table, convention=convention
        )
    )


@dataclass(frozen=True)
class OverheadBreakdown:
    """All model outputs for one parameter point.

    Frequencies are per node per unit time; overheads are bits per node
    per unit time.  ``degree`` and ``head_degree`` are the Claim 1
    quantities the frequencies were computed from.
    """

    params: NetworkParameters
    head_probability: float
    degree: float
    head_degree: float
    hello_frequency: float
    cluster_frequency: float
    route_frequency: float
    hello_overhead: float
    cluster_overhead: float
    route_overhead: float

    @property
    def total(self) -> float:
        """Total per-node control overhead in bits per unit time."""
        return self.hello_overhead + self.cluster_overhead + self.route_overhead

    @property
    def frequencies(self) -> dict[str, float]:
        """The three message rates keyed like the paper's figure legends."""
        return {
            "f_hello": self.hello_frequency,
            "f_cluster": self.cluster_frequency,
            "f_route": self.route_frequency,
        }


def overhead_breakdown(
    params: NetworkParameters,
    head_probability: float,
    full_table: bool = False,
    convention: str = "consistent",
) -> OverheadBreakdown:
    """Evaluate the complete model at one parameter point."""
    _check_head_probability(head_probability)
    _check_convention(convention)
    degree = float(
        expected_degree(params.n_nodes, params.density, params.tx_range)
    )
    head_degree = float(
        expected_head_degree(
            params.n_nodes, params.density, params.tx_range, head_probability
        )
    )
    return OverheadBreakdown(
        params=params,
        head_probability=head_probability,
        degree=degree,
        head_degree=head_degree,
        hello_frequency=hello_frequency(params),
        cluster_frequency=cluster_frequency(params, head_probability, convention),
        route_frequency=route_frequency(params, head_probability, convention),
        hello_overhead=hello_overhead(params),
        cluster_overhead=cluster_overhead(params, head_probability, convention),
        route_overhead=route_overhead(
            params, head_probability, full_table=full_table, convention=convention
        ),
    )
