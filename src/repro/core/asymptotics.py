"""Knuth Θ-notation scaling of the overhead model (Section 6).

Section 6 of the paper restates the closed-form overheads as growth
rates in the individual parameters ``r`` (transmission range), ``rho``
(density) and ``v`` (speed), holding the others fixed, with the LID
head probability ``P ≈ 1/sqrt(d+1)`` substituted in:

================  =========  ===========  =====
Overhead           in ``r``   in ``rho``   in ``v``
================  =========  ===========  =====
HELLO              Θ(r)       Θ(rho)       Θ(v)
CLUSTER            Θ(1)       Θ(rho^1/2)   Θ(v)
ROUTE (per entry)  Θ(1)       Θ(rho^1/2)   Θ(v)
ROUTE (full table) Θ(r)       Θ(rho)       Θ(v)
================  =========  ===========  =====

and all three are Θ(1) in ``N`` on an unboundedly large area at fixed
density.  ROUTE dominates the total because of its high rate and large
message size (full-table reading).

Rather than hard-coding the exponents, this module *measures* them from
the implemented closed forms by log–log regression over a geometric
parameter ladder, so the Θ table is itself a reproducible experiment
(bench ``sec6``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from . import overhead
from .lid_analysis import lid_head_probability
from .params import NetworkParameters

__all__ = [
    "PAPER_CLAIMED_EXPONENTS",
    "ScalingResult",
    "fit_power_law",
    "measure_exponent",
    "asymptotic_exponent_table",
]

#: Section 6's claims as growth exponents, with ROUTE in both readings.
PAPER_CLAIMED_EXPONENTS: dict[str, dict[str, float]] = {
    "hello": {"r": 1.0, "rho": 1.0, "v": 1.0, "N": 0.0},
    "cluster": {"r": 0.0, "rho": 0.5, "v": 1.0, "N": 0.0},
    "route": {"r": 0.0, "rho": 0.5, "v": 1.0, "N": 0.0},
    "route_full_table": {"r": 1.0, "rho": 1.0, "v": 1.0, "N": 0.0},
}


@dataclass(frozen=True)
class ScalingResult:
    """A fitted power-law exponent with its fit quality.

    ``exponent`` is the slope of ``log(value)`` against
    ``log(parameter)``; ``r_squared`` is the coefficient of
    determination of the linear fit; ``values`` are the raw samples.
    """

    quantity: str
    parameter: str
    exponent: float
    r_squared: float
    grid: np.ndarray
    values: np.ndarray


def fit_power_law(x: np.ndarray, y: np.ndarray) -> tuple[float, float]:
    """Fit ``y = c * x**k`` by least squares in log space.

    Returns ``(k, r_squared)``.  Requires strictly positive samples.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("x and y must be 1-D arrays of equal length")
    if len(x) < 3:
        raise ValueError("need at least 3 samples for a power-law fit")
    if np.any(x <= 0.0) or np.any(y <= 0.0):
        raise ValueError("power-law fit requires positive samples")
    lx, ly = np.log(x), np.log(y)
    slope, intercept = np.polyfit(lx, ly, 1)
    predicted = slope * lx + intercept
    ss_res = float(np.sum((ly - predicted) ** 2))
    ss_tot = float(np.sum((ly - np.mean(ly)) ** 2))
    r_squared = 1.0 if ss_tot == 0.0 else 1.0 - ss_res / ss_tot
    return float(slope), r_squared


def _evaluate(quantity: str, params: NetworkParameters) -> float:
    """Evaluate one overhead component with the LID ``P`` plugged in."""
    p_head = float(
        lid_head_probability(params.n_nodes, params.density, params.tx_range)
    )
    if quantity == "hello":
        return overhead.hello_overhead(params)
    if quantity == "cluster":
        return overhead.cluster_overhead(params, p_head)
    if quantity == "route":
        return overhead.route_overhead(params, p_head, full_table=False)
    if quantity == "route_full_table":
        return overhead.route_overhead(params, p_head, full_table=True)
    if quantity == "total":
        return overhead.total_overhead(params, p_head, full_table=True)
    raise ValueError(f"unknown overhead quantity: {quantity!r}")


def _ladder(parameter: str, base: NetworkParameters, num: int) -> list[NetworkParameters]:
    """Geometric ladder of parameter bundles varying one parameter.

    The asymptotic regime of Section 6 is an unboundedly large area
    (``a -> inf`` at fixed density), so when sweeping ``r`` we keep the
    area enormous relative to the largest range; when sweeping ``rho``
    the node count scales with density at fixed area so the side stays
    constant.
    """
    if parameter == "r":
        factors = np.geomspace(1.0, 16.0, num)
        return [base.with_(tx_range=base.tx_range * f) for f in factors]
    if parameter == "rho":
        factors = np.geomspace(1.0, 16.0, num)
        return [
            base.with_(
                density=base.density * f,
                n_nodes=int(round(base.n_nodes * f)),
            )
            for f in factors
        ]
    if parameter == "v":
        factors = np.geomspace(1.0, 16.0, num)
        return [base.with_(velocity=base.velocity * f) for f in factors]
    if parameter == "N":
        factors = np.geomspace(1.0, 16.0, num)
        # Growing N at fixed density grows the area: the Section 6 limit.
        return [base.with_(n_nodes=int(round(base.n_nodes * f))) for f in factors]
    raise ValueError(f"unknown sweep parameter: {parameter!r}")


def _parameter_value(parameter: str, params: NetworkParameters) -> float:
    return {
        "r": params.tx_range,
        "rho": params.density,
        "v": params.velocity,
        "N": float(params.n_nodes),
    }[parameter]


def measure_exponent(
    quantity: str,
    parameter: str,
    base: NetworkParameters | None = None,
    num: int = 9,
) -> ScalingResult:
    """Measure the growth exponent of one overhead in one parameter.

    The base point is deep in the asymptotic regime (large ``N``, dense
    network, ``r`` far below ``a``) so that the measured slopes are the
    Section 6 limits rather than pre-asymptotic curvature.
    """
    if base is None:
        base = NetworkParameters(
            n_nodes=400_000,
            density=400.0,
            tx_range=0.5,
            velocity=1.0,
        )
    ladder = _ladder(parameter, base, num)
    grid = np.array([_parameter_value(parameter, p) for p in ladder])
    values = np.array([_evaluate(quantity, p) for p in ladder])
    if parameter == "N":
        # Θ(1) claims: fit still runs, but guard against zero variance.
        if np.allclose(values, values[0], rtol=1e-9):
            return ScalingResult(quantity, parameter, 0.0, 1.0, grid, values)
    exponent, r2 = fit_power_law(grid, values)
    return ScalingResult(quantity, parameter, exponent, r2, grid, values)


def asymptotic_exponent_table(
    base: NetworkParameters | None = None, num: int = 9
) -> dict[str, dict[str, ScalingResult]]:
    """Measure the full Section 6 table.

    Returns ``{quantity: {parameter: ScalingResult}}`` for every
    quantity in :data:`PAPER_CLAIMED_EXPONENTS`.
    """
    table: dict[str, dict[str, ScalingResult]] = {}
    for quantity, claims in PAPER_CLAIMED_EXPONENTS.items():
        table[quantity] = {
            parameter: measure_exponent(quantity, parameter, base=base, num=num)
            for parameter in claims
        }
    return table
