"""Link generation and break rates under the CV and BCV mobility models.

Claim 2 of the paper builds on Cho & Hayes (WCNC 2005), who show that in
the Constant Velocity (CV) model — infinitely many nodes of density
``rho`` on an unbounded plane, each moving forever at speed ``v`` in an
independent uniformly random direction — the per-node link generation
and link break rates are each

.. math::

    \\lambda_{gen} = \\lambda_{brk} = \\frac{8 \\rho r v}{\\pi},

so the total per-node link change rate is ``16 rho r v / pi``.

The bounded variant (BCV) restricts attention to the ``d`` (of the CV
model's ``rho pi r^2``) neighbors that lie inside the square ``S``.
Assuming every established link is equally likely to change, the
per-node link change rate with other nodes of ``S`` is (paper Eqn (3))

.. math::

    \\lambda = \\frac{16\\, d\\, v}{\\pi^2 r},

again split evenly between generation and break.

The expected *relative speed* of two independent CV nodes with common
speed ``v`` is ``4 v / pi`` (mean of ``2 v |sin(theta/2)|`` over a
uniform heading difference ``theta``); it is exposed here because the
rate formulas are, at heart, a boundary-crossing flux ``rho * 2 r *
E[v_rel]`` with geometric corrections, and tests exploit this identity.
"""

from __future__ import annotations

import math

import numpy as np

from .degree import expected_degree, infinite_plane_degree
from .params import NetworkParameters

__all__ = [
    "mean_relative_speed",
    "cv_link_generation_rate",
    "cv_link_break_rate",
    "cv_link_change_rate",
    "bcv_link_change_rate",
    "bcv_link_generation_rate",
    "bcv_link_break_rate",
    "bcv_rates_from_params",
    "expected_link_lifetime",
    "LinkRates",
]


def mean_relative_speed(velocity: float) -> float:
    """Expected relative speed of two CV nodes with common speed ``v``.

    With independent uniform headings the relative speed is
    ``2 v sin(theta / 2)`` for heading difference ``theta``; averaging
    over ``theta ~ U[0, 2 pi)`` gives ``4 v / pi``.
    """
    if velocity < 0.0:
        raise ValueError(f"velocity must be non-negative, got {velocity}")
    return 4.0 * velocity / math.pi


def cv_link_generation_rate(density: float, tx_range, velocity: float):
    """Per-node link generation rate of the CV model, ``8 rho r v / pi``."""
    _check(density, velocity)
    r = np.asarray(tx_range, dtype=float)
    result = 8.0 * density * r * velocity / math.pi
    return _maybe_scalar(result, tx_range)


def cv_link_break_rate(density: float, tx_range, velocity: float):
    """Per-node link break rate of the CV model (equals the generation rate)."""
    return cv_link_generation_rate(density, tx_range, velocity)


def cv_link_change_rate(density: float, tx_range, velocity: float):
    """Total per-node link change rate of the CV model, ``16 rho r v / pi``."""
    return 2.0 * cv_link_generation_rate(density, tx_range, velocity)


def bcv_link_change_rate(degree, tx_range, velocity: float):
    """Paper Eqn (3): per-node link change rate inside the square.

    ``degree`` is the expected in-region degree ``d`` of Claim 1.
    """
    _check(1.0, velocity)
    d = np.asarray(degree, dtype=float)
    r = np.asarray(tx_range, dtype=float)
    if np.any(r <= 0.0):
        raise ValueError("tx_range must be positive")
    result = 16.0 * d * velocity / (math.pi**2 * r)
    return _maybe_scalar(result, degree if np.ndim(degree) else tx_range)


def bcv_link_generation_rate(degree, tx_range, velocity: float):
    """Per-node link generation rate inside the square (half of Eqn (3))."""
    return 0.5 * bcv_link_change_rate(degree, tx_range, velocity)


def bcv_link_break_rate(degree, tx_range, velocity: float):
    """Per-node link break rate inside the square (half of Eqn (3))."""
    return bcv_link_generation_rate(degree, tx_range, velocity)


def expected_link_lifetime(tx_range: float, velocity: float) -> float:
    """Mean lifetime of a CV-model link, ``pi^2 r / (8 v)``.

    Little's-law corollary of Claim 2: the standing link population per
    node is the plane degree ``rho pi r^2`` while links break at
    ``lambda_brk = 8 rho r v / pi`` per node, so the mean link lifetime
    is their ratio — independent of density.  Infinite for ``v = 0``.
    """
    if tx_range <= 0.0:
        raise ValueError(f"tx_range must be positive, got {tx_range}")
    if velocity < 0.0:
        raise ValueError(f"velocity must be non-negative, got {velocity}")
    if velocity == 0.0:
        return float("inf")
    return math.pi**2 * tx_range / (8.0 * velocity)


class LinkRates:
    """Bundle of the BCV link dynamics for one parameter point.

    Attributes
    ----------
    degree:
        Expected in-region degree ``d`` (Claim 1).
    change:
        Total per-node link change rate (Eqn 3).
    generation, breakage:
        The two equal halves of ``change``.
    boundary_factor:
        ``d / (rho pi r^2)``, the fraction of a node's plane-model links
        that fall inside ``S`` — the CV→BCV correction.
    """

    def __init__(self, params: NetworkParameters) -> None:
        self.params = params
        self.degree = float(
            expected_degree(params.n_nodes, params.density, params.tx_range)
        )
        plane_degree = infinite_plane_degree(params.density, params.tx_range)
        self.boundary_factor = self.degree / plane_degree if plane_degree else 0.0
        self.change = float(
            bcv_link_change_rate(self.degree, params.tx_range, params.velocity)
        )
        self.generation = 0.5 * self.change
        self.breakage = 0.5 * self.change

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LinkRates(degree={self.degree:.4g}, change={self.change:.4g}, "
            f"boundary_factor={self.boundary_factor:.4g})"
        )


def bcv_rates_from_params(params: NetworkParameters) -> LinkRates:
    """Compute the full :class:`LinkRates` bundle for a parameter set."""
    return LinkRates(params)


def _check(density: float, velocity: float) -> None:
    if density <= 0.0:
        raise ValueError(f"density must be positive, got {density}")
    if velocity < 0.0:
        raise ValueError(f"velocity must be non-negative, got {velocity}")


def _maybe_scalar(result, like):
    if np.ndim(like) == 0:
        return float(result)
    return result
