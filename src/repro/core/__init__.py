"""Closed-form analytical model of clustering and routing overhead.

This package implements the paper's primary contribution: the
lower-bound control-overhead model of Sections 3, 5 and 6.

* :mod:`repro.core.geometry` — link-distance distribution in a square.
* :mod:`repro.core.degree` — expected degree (Claim 1).
* :mod:`repro.core.linkdynamics` — CV/BCV link change rates (Claim 2).
* :mod:`repro.core.overhead` — HELLO/CLUSTER/ROUTE overheads (Eqns 4–14).
* :mod:`repro.core.lid_analysis` — the LID head ratio ``P`` (Eqns 15–18).
* :mod:`repro.core.asymptotics` — the Section 6 Θ-notation table.
"""

from .params import MessageSizes, NetworkParameters
from .geometry import (
    link_distance_cdf,
    link_distance_pdf,
    link_distance_mean,
    connectivity_probability,
)
from .degree import (
    expected_degree,
    expected_degree_eqn1,
    expected_head_degree,
    infinite_plane_degree,
)
from .linkdynamics import (
    LinkRates,
    bcv_link_change_rate,
    bcv_link_generation_rate,
    bcv_link_break_rate,
    cv_link_change_rate,
    cv_link_generation_rate,
    cv_link_break_rate,
    mean_relative_speed,
)
from .overhead import (
    OverheadBreakdown,
    cluster_frequency,
    cluster_overhead,
    hello_frequency,
    hello_overhead,
    overhead_breakdown,
    route_frequency,
    route_overhead,
    total_overhead,
)
from .lid_analysis import (
    expected_cluster_count,
    expected_cluster_size,
    lid_head_probability,
    lid_head_probability_approx,
    lid_head_probability_exact,
)
from .asymptotics import (
    PAPER_CLAIMED_EXPONENTS,
    ScalingResult,
    asymptotic_exponent_table,
    fit_power_law,
    measure_exponent,
)

__all__ = [
    "MessageSizes",
    "NetworkParameters",
    "link_distance_cdf",
    "link_distance_pdf",
    "link_distance_mean",
    "connectivity_probability",
    "expected_degree",
    "expected_degree_eqn1",
    "expected_head_degree",
    "infinite_plane_degree",
    "LinkRates",
    "bcv_link_change_rate",
    "bcv_link_generation_rate",
    "bcv_link_break_rate",
    "cv_link_change_rate",
    "cv_link_generation_rate",
    "cv_link_break_rate",
    "mean_relative_speed",
    "OverheadBreakdown",
    "cluster_frequency",
    "cluster_overhead",
    "hello_frequency",
    "hello_overhead",
    "overhead_breakdown",
    "route_frequency",
    "route_overhead",
    "total_overhead",
    "expected_cluster_count",
    "expected_cluster_size",
    "lid_head_probability",
    "lid_head_probability_approx",
    "lid_head_probability_exact",
    "PAPER_CLAIMED_EXPONENTS",
    "ScalingResult",
    "asymptotic_exponent_table",
    "fit_power_law",
    "measure_exponent",
]
