"""Network parameter bundles shared by the analytical model and simulator.

The paper's model is a function of five primitive quantities — network
size ``N``, node density ``rho``, transmission range ``r``, node speed
``v`` and the cluster-head ratio ``P`` — plus the three control-message
sizes.  :class:`NetworkParameters` packages the primitives with their
derived geometry (area, side length) and validates the regime the
analysis assumes (``r < a``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

__all__ = ["MessageSizes", "NetworkParameters"]


@dataclass(frozen=True)
class MessageSizes:
    """Sizes, in bits, of the three control message categories.

    ``p_route`` is the size of a *single routing table entry*, following
    the paper; whether an update message carries one entry or a full
    table is a knob of the overhead model, not of the sizes.

    The defaults are representative of compact MANET control packets
    (the paper does not publish its values): a HELLO carrying an address
    and a short neighbor digest, a CLUSTER message carrying an address
    pair and role, and a routing entry of destination/next-hop/metric.
    """

    p_hello: float = 256.0
    p_cluster: float = 128.0
    p_route: float = 96.0

    def __post_init__(self) -> None:
        for name in ("p_hello", "p_cluster", "p_route"):
            value = getattr(self, name)
            if value <= 0.0:
                raise ValueError(f"{name} must be positive, got {value}")


@dataclass(frozen=True)
class NetworkParameters:
    """Primitive parameters of the bounded (BCV) network model.

    Parameters
    ----------
    n_nodes:
        Number of nodes ``N`` expected inside the square region ``S``.
    density:
        Node density ``rho`` (nodes per unit area).  The square side is
        derived as ``a = sqrt(N / rho)``.
    tx_range:
        Transmission range ``r``.  The analysis requires ``r < a``.
    velocity:
        Constant node speed ``v`` of the (B)CV mobility model.
    messages:
        Control message sizes in bits.
    """

    n_nodes: int
    density: float
    tx_range: float
    velocity: float
    messages: MessageSizes = field(default_factory=MessageSizes)

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ValueError(f"n_nodes must be at least 2, got {self.n_nodes}")
        if self.density <= 0.0:
            raise ValueError(f"density must be positive, got {self.density}")
        if self.tx_range <= 0.0:
            raise ValueError(f"tx_range must be positive, got {self.tx_range}")
        if self.velocity < 0.0:
            raise ValueError(f"velocity must be non-negative, got {self.velocity}")
        if self.tx_range >= self.side:
            raise ValueError(
                f"the analysis assumes tx_range < side (r < a); got "
                f"r={self.tx_range} and a={self.side:.6g}"
            )

    @property
    def area(self) -> float:
        """Area of the square region ``S`` (``N / rho``)."""
        return self.n_nodes / self.density

    @property
    def side(self) -> float:
        """Border length ``a = sqrt(N / rho)`` of the square region."""
        return math.sqrt(self.area)

    @property
    def range_fraction(self) -> float:
        """Transmission range as a fraction of the side, ``r / a``."""
        return self.tx_range / self.side

    @property
    def velocity_fraction(self) -> float:
        """Node speed as a fraction of the side, ``v / a``."""
        return self.velocity / self.side

    # ------------------------------------------------------------------
    # Convenient constructors and derivations
    # ------------------------------------------------------------------
    @classmethod
    def from_side(
        cls,
        n_nodes: int,
        side: float,
        tx_range: float,
        velocity: float,
        messages: MessageSizes | None = None,
    ) -> "NetworkParameters":
        """Build parameters from an explicit square side instead of density."""
        if side <= 0.0:
            raise ValueError(f"side must be positive, got {side}")
        density = n_nodes / (side * side)
        return cls(
            n_nodes=n_nodes,
            density=density,
            tx_range=tx_range,
            velocity=velocity,
            messages=messages or MessageSizes(),
        )

    @classmethod
    def from_fractions(
        cls,
        n_nodes: int,
        range_fraction: float,
        velocity_fraction: float,
        side: float = 1.0,
        messages: MessageSizes | None = None,
    ) -> "NetworkParameters":
        """Build parameters the way the paper's figures express them.

        Figures 1–2 express ``r`` and ``v`` as fractions of the border
        length ``a``; this constructor accepts those fractions directly.
        """
        return cls.from_side(
            n_nodes=n_nodes,
            side=side,
            tx_range=range_fraction * side,
            velocity=velocity_fraction * side,
            messages=messages,
        )

    def with_(self, **changes) -> "NetworkParameters":
        """Return a copy with the given primitive fields replaced.

        ``density`` interacts with ``n_nodes`` through the derived side;
        the replacement is applied to the primitives verbatim, exactly as
        a parameter sweep expects.
        """
        return replace(self, **changes)
