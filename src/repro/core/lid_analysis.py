"""Cluster-head probability of the Lowest-ID clustering algorithm (Sec. 5).

The paper treats the cluster-head ratio ``P`` — the probability that a
randomly selected node ends cluster formation as a cluster-head — as the
algorithm-dependent knob of its overhead model, and derives it for LID:

A node is a cluster-head iff it has the smallest id among the nodes of
its closed neighborhood that have not yet joined a cluster.  If a node
is the ``i``-th smallest of its ``d + 1`` closed neighbors (each rank
equally likely), it becomes a head exactly when the ``i - 1`` smaller
nodes are all members of other clusters, which the paper approximates as
independent events of probability ``P_MEMBER = 1 - P`` each:

.. math::

    P = \\frac{1}{d+1} \\sum_{i=1}^{d+1} (1-P)^{i-1}
      = \\frac{1 - (1-P)^{d+1}}{(d+1)\\,P}.   \\tag{Eqn 16}

Because ``(1 - P)^{d+1} \\to 0`` as ``d`` grows (paper Fig. 4(a)), the
fixpoint admits the closed approximation

.. math::

    P \\approx \\frac{1}{\\sqrt{d + 1}},   \\tag{Eqn 17}

and substituting Claim 1's degree yields the paper's Eqn (18) giving
``P`` directly in terms of ``N``, ``rho`` and ``r``.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.optimize import brentq

from .degree import expected_degree
from .params import NetworkParameters

__all__ = [
    "lid_fixpoint_residual",
    "lid_head_probability_exact",
    "lid_head_probability_approx",
    "lid_head_probability",
    "lid_member_mass",
    "expected_cluster_count",
    "expected_cluster_size",
]


def lid_fixpoint_residual(p: float, degree: float) -> float:
    """Residual ``(d+1) p^2 - (1 - (1-p)^{d+1})`` of the Eqn (16) fixpoint.

    The fixpoint of Eqn (16) is the root of this residual in ``(0, 1]``.
    ``degree`` need not be an integer — Claim 1 produces real-valued
    expected degrees and the analysis is continuous in ``d``.
    """
    if degree < 0.0:
        raise ValueError(f"degree must be non-negative, got {degree}")
    closed = degree + 1.0
    return closed * p * p - (1.0 - (1.0 - p) ** closed)


def lid_head_probability_exact(degree) -> float:
    """Solve Eqn (16) for ``P`` given the expected degree ``d``.

    The residual vanishes at ``p = 0`` with negative slope and is
    positive at ``p = 1``, so a unique root exists in ``(0, 1]``; it is
    located with Brent's method.  ``degree`` may be an array.
    """
    degrees = np.atleast_1d(np.asarray(degree, dtype=float))
    if np.any(degrees < 0.0):
        raise ValueError("degree must be non-negative")
    out = np.empty_like(degrees)
    for idx, d in np.ndenumerate(degrees):
        if d == 0.0:
            # An isolated node is always its own cluster-head.
            out[idx] = 1.0
            continue
        lo = 1e-12
        # The residual is negative just right of zero; bracket to 1.
        out[idx] = brentq(
            lid_fixpoint_residual, lo, 1.0, args=(float(d),), xtol=1e-14
        )
    if np.ndim(degree) == 0:
        return float(out[0])
    return out


def lid_head_probability_approx(degree):
    """Paper Eqn (17): ``P ≈ 1 / sqrt(d + 1)``."""
    d = np.asarray(degree, dtype=float)
    if np.any(d < 0.0):
        raise ValueError("degree must be non-negative")
    result = 1.0 / np.sqrt(d + 1.0)
    if np.ndim(degree) == 0:
        return float(result)
    return result


def lid_head_probability(
    n_nodes: float, density: float, tx_range, exact: bool = True
):
    """Paper Eqn (18): LID head probability from network parameters.

    Combines Claim 1's expected degree with the Eqn (16) fixpoint
    (``exact=True``, the default) or the Eqn (17) square-root
    approximation (``exact=False``).
    """
    degree = expected_degree(n_nodes, density, tx_range)
    if exact:
        return lid_head_probability_exact(degree)
    return lid_head_probability_approx(degree)


def lid_member_mass(p, degree):
    """The vanishing term ``(1 - P)^{d+1}`` plotted in paper Fig. 4(a).

    Returned as ``1 - (1-P)^{d+1}`` — the quantity the figure shows
    approaching one as the closed neighborhood ``d + 1`` grows.
    """
    p_arr = np.asarray(p, dtype=float)
    d_arr = np.asarray(degree, dtype=float)
    if np.any((p_arr < 0.0) | (p_arr > 1.0)):
        raise ValueError("p must lie in [0, 1]")
    result = 1.0 - (1.0 - p_arr) ** (d_arr + 1.0)
    if np.ndim(p) == 0 and np.ndim(degree) == 0:
        return float(result)
    return result


def expected_cluster_count(params: NetworkParameters, exact: bool = True) -> float:
    """Expected number of clusters ``n = N P`` under LID (paper Fig. 5)."""
    p = lid_head_probability(
        params.n_nodes, params.density, params.tx_range, exact=exact
    )
    return params.n_nodes * float(p)


def expected_cluster_size(params: NetworkParameters, exact: bool = True) -> float:
    """Expected cluster size ``m = 1 / P`` under LID."""
    p = lid_head_probability(
        params.n_nodes, params.density, params.tx_range, exact=exact
    )
    return 1.0 / float(p)
