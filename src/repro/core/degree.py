"""Expected node degree in the bounded network model (Claim 1).

Claim 1 of the paper: for ``N`` nodes uniformly distributed in a square
of side ``a = sqrt(N / rho)``, the expected number of neighbors of a
randomly selected node with transmission range ``r < a`` is

.. math::

    d = (N - 1)\\, F\\!\\left(\\tfrac{r}{a}\\right)

where ``F`` is the link-distance CDF of :mod:`repro.core.geometry`.
Expanding ``F`` for ``r <= a`` gives the paper's printed Eqn (1):

.. math::

    d = (N-1)\\left[\\frac{\\pi r^2 \\rho}{N}
        - \\frac{8}{3} r^3 \\left(\\frac{\\rho}{N}\\right)^{3/2}
        + \\frac{1}{2} r^4 \\left(\\frac{\\rho}{N}\\right)^{2}\\right].

The same formula with the cluster-head population substituted in (count
``N P``, same square) gives the expected number of *neighboring
cluster-heads* of a cluster-head, the quantity ``d'`` of Eqn (9).
"""

from __future__ import annotations

import math

import numpy as np

from .geometry import link_distance_cdf, torus_connectivity_probability
from .params import NetworkParameters

__all__ = [
    "expected_degree",
    "expected_degree_eqn1",
    "expected_head_degree",
    "expected_torus_degree",
    "infinite_plane_degree",
    "degree_from_params",
]


def _validate(n_nodes: float, density: float, tx_range: float) -> float:
    if n_nodes < 1:
        raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
    if density <= 0.0:
        raise ValueError(f"density must be positive, got {density}")
    if tx_range < 0.0:
        raise ValueError(f"tx_range must be non-negative, got {tx_range}")
    return math.sqrt(n_nodes / density)


def expected_degree(n_nodes: float, density: float, tx_range) -> float:
    """Expected degree ``d`` of a random node in the square (Claim 1).

    Uses the exact link-distance CDF, hence remains valid on the whole
    support ``r <= sqrt(2) a`` (the paper's expansion assumes ``r <= a``).

    ``tx_range`` may be an array for vectorized sweeps.
    """
    side = _validate(n_nodes, density, np.max(np.atleast_1d(tx_range)))
    cdf = link_distance_cdf(tx_range, side=side)
    return (n_nodes - 1) * cdf


def expected_degree_eqn1(n_nodes: float, density: float, tx_range) -> float:
    """Paper's Eqn (1), the polynomial expansion of :func:`expected_degree`.

    Identical to :func:`expected_degree` for ``r <= a``; provided
    separately so tests can assert the printed form agrees with the
    exact CDF form.
    """
    _validate(n_nodes, density, np.max(np.atleast_1d(tx_range)))
    r = np.asarray(tx_range, dtype=float)
    q = density / n_nodes  # = 1 / a^2
    term = (
        math.pi * r**2 * q
        - (8.0 / 3.0) * r**3 * q**1.5
        + 0.5 * r**4 * q**2
    )
    result = (n_nodes - 1) * term
    if np.ndim(tx_range) == 0:
        return float(result)
    return result


def expected_head_degree(
    n_nodes: float, density: float, tx_range, head_probability: float
) -> float:
    """Expected number of neighboring cluster-heads of a head, ``d'`` (Eqn 9).

    Cluster-heads form a sub-population of expected size ``N P`` in the
    same square, so Claim 1 applies with the head count substituted:
    ``d' = (N P - 1) F(r / a)``.
    """
    if not 0.0 < head_probability <= 1.0:
        raise ValueError(
            f"head_probability must be in (0, 1], got {head_probability}"
        )
    side = _validate(n_nodes, density, np.max(np.atleast_1d(tx_range)))
    cdf = link_distance_cdf(tx_range, side=side)
    return np.maximum(n_nodes * head_probability - 1.0, 0.0) * cdf


def expected_torus_degree(n_nodes: float, density: float, tx_range: float) -> float:
    """Expected degree when the square region *wraps* (torus metric).

    The paper's simulation region wraps, so its degrees follow the
    torus metric while Claim 1's analysis assumes a bounded window —
    the torus degree exceeds the window degree by the boundary factor.
    Comparing the two quantifies the systematic part of the
    analysis-vs-simulation residual in Figures 1–3.
    """
    side = _validate(n_nodes, density, tx_range)
    return (n_nodes - 1) * torus_connectivity_probability(tx_range, side)


def infinite_plane_degree(density: float, tx_range) -> float:
    """Expected degree on the unbounded plane, ``rho * pi * r**2``.

    This is the degree the CV model sees; the ratio
    ``expected_degree / infinite_plane_degree`` is the boundary-effect
    correction that turns CV rates into BCV rates (Claim 2).
    """
    if density <= 0.0:
        raise ValueError(f"density must be positive, got {density}")
    r = np.asarray(tx_range, dtype=float)
    result = density * math.pi * r**2
    if np.ndim(tx_range) == 0:
        return float(result)
    return result


def degree_from_params(params: NetworkParameters) -> float:
    """Expected degree for a :class:`NetworkParameters` bundle."""
    return float(
        expected_degree(params.n_nodes, params.density, params.tx_range)
    )
