"""Per-node capacity and the control-overhead budget (Gupta & Kumar).

The paper's introduction motivates overhead analysis with the transport
capacity result it cites as [1]: in a random ad hoc network of ``N``
nodes the per-node throughput capacity is

.. math::

    \\Theta\\!\\left(\\frac{W}{\\sqrt{N \\log N}}\\right)

for channel bandwidth ``W`` — a *decreasing* function of ``N``, so "as
the network size increases, the utilization of bandwidth becomes a very
critical factor".  This module makes that argument quantitative: it
combines the capacity scaling law with the overhead model to compute
the fraction of each node's usable bandwidth consumed by control
traffic, and the network size at which control traffic alone would
saturate the medium.
"""

from __future__ import annotations

import math

import numpy as np

from .lid_analysis import lid_head_probability
from .overhead import total_overhead
from .params import NetworkParameters

__all__ = [
    "per_node_capacity",
    "control_overhead_fraction",
    "saturation_network_size",
]


def per_node_capacity(
    n_nodes: float, bandwidth: float, constant: float = 1.0
) -> float:
    """Gupta–Kumar random-network per-node capacity ``c W / sqrt(N log N)``.

    ``constant`` is the unspecified Θ-constant; the default 1 makes the
    function a pure scaling law.  ``N`` must be at least 2 so the
    logarithm is positive.
    """
    if n_nodes < 2:
        raise ValueError(f"n_nodes must be at least 2, got {n_nodes}")
    if bandwidth <= 0.0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth}")
    if constant <= 0.0:
        raise ValueError(f"constant must be positive, got {constant}")
    return constant * bandwidth / math.sqrt(n_nodes * math.log(n_nodes))


def control_overhead_fraction(
    params: NetworkParameters,
    bandwidth: float,
    head_probability: float | None = None,
    full_table: bool = True,
    constant: float = 1.0,
) -> float:
    """Fraction of per-node capacity consumed by control traffic.

    ``head_probability`` defaults to the LID value at the given
    parameters.  Values above 1 mean control traffic alone exceeds the
    node's share of the medium.
    """
    if head_probability is None:
        head_probability = float(
            lid_head_probability(params.n_nodes, params.density, params.tx_range)
        )
    overhead = total_overhead(
        params, head_probability, full_table=full_table
    )
    capacity = per_node_capacity(params.n_nodes, bandwidth, constant)
    return overhead / capacity


def saturation_network_size(
    base: NetworkParameters,
    bandwidth: float,
    max_nodes: int = 10_000_000,
    full_table: bool = True,
    constant: float = 1.0,
) -> int | None:
    """Smallest ``N`` at which control traffic saturates the capacity.

    The network grows at fixed density (the area expands with ``N``),
    which holds the per-node overhead constant (Section 6: Θ(1) in
    ``N``) while the per-node capacity falls as ``1/sqrt(N log N)`` —
    so a saturation point always exists; ``None`` is returned only when
    it lies beyond ``max_nodes``.

    The search is a bisection over ``N`` on the monotone fraction.
    """
    def fraction(n_nodes: int) -> float:
        params = base.with_(n_nodes=int(n_nodes))
        return control_overhead_fraction(
            params,
            bandwidth,
            full_table=full_table,
            constant=constant,
        )

    if fraction(max_nodes) < 1.0:
        return None
    low = base.n_nodes
    if fraction(low) >= 1.0:
        return low
    high = max_nodes
    while high - low > 1:
        mid = (low + high) // 2
        if fraction(mid) >= 1.0:
            high = mid
        else:
            low = mid
    return high
