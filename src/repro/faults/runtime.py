"""The engine-side fault injector: applies a compiled plan step by step.

A :class:`FaultInjector` owns the simulation's radio mask while
attached: every step the engine's fault phase calls :meth:`advance`
*before* connectivity is recomputed, so crash/recover events and outage
membership changes take effect in the same step's edge set and are
delivered to protocols as ordinary link events.  On top of the mask it
provides the two services the degradation paths consume:

* :meth:`drop` — one Bernoulli draw from the plan's dedicated loss
  stream (HELLO receptions, RREQ flood hops).  With ``loss_rate == 0``
  callers skip the draw entirely, so a zero-loss plan replays
  bit-identically to running without one.
* :meth:`is_fault_transition` — whether a link event delivered this
  step was caused by a fault transition (either endpoint crashed,
  recovered, or crossed an outage boundary during this step's fault
  phase), which is what lets repair sites attribute their messages to
  the ``crash-recovery`` cause instead of the mobility-driven default.

Every injection/clearance emits a ``fault_inject`` / ``fault_clear``
trace event (annotated with the innermost open span) and increments a
``fault_*`` counter, mirrored into the ambient metrics registry when
one is configured.
"""

from __future__ import annotations

import numpy as np

from ..obs import context as obs_context
from .plan import FaultPlan

__all__ = ["FaultInjector", "attach_faults"]

#: Counter attribute -> registry metric name.
_COUNTERS = (
    ("crashes_total", "fault_crashes"),
    ("recoveries_total", "fault_recoveries"),
    ("outage_enters_total", "fault_outage_enters"),
    ("outage_exits_total", "fault_outage_exits"),
    ("hello_losses_total", "fault_hello_losses"),
    ("hello_retransmits_total", "fault_hello_retransmits"),
    ("route_retries_total", "fault_route_retries"),
)


class FaultInjector:
    """Applies one :class:`~repro.faults.plan.FaultPlan` to one simulation."""

    def __init__(self, sim, plan: FaultPlan) -> None:
        self.plan = plan
        self.sim_id = sim.sim_id
        n = sim.n_nodes
        self.crashed = np.zeros(n, dtype=bool)
        self.outaged = np.zeros(n, dtype=bool)
        self._cursor = 0
        self._transitions: set[int] = set()
        self.loss_rate = plan.config.loss_rate
        self._loss_rng = (
            np.random.default_rng(np.random.SeedSequence(plan.loss_entropy))
            if self.loss_rate > 0.0
            else None
        )
        for attribute, _metric in _COUNTERS:
            setattr(self, attribute, 0)
        registry = obs_context.current().registry
        self._metrics = {}
        if registry is not None:
            labels = {"sim": str(self.sim_id)}
            self._metrics = {
                attribute: registry.counter(metric, **labels)
                for attribute, metric in _COUNTERS
            }

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def count(self, attribute: str, amount: int = 1) -> None:
        """Increment one ``fault_*`` counter (attribute + registry)."""
        setattr(self, attribute, getattr(self, attribute) + amount)
        metric = self._metrics.get(attribute)
        if metric is not None:
            metric.inc(amount)

    def _emit(self, sim, event: str, time: float, **fields) -> None:
        if not sim.tracer.enabled:
            return
        span = sim.spans.current
        if span is not None:
            fields["span"] = span
        sim.tracer.emit(event, time, sim=sim.sim_id, **fields)

    # ------------------------------------------------------------------
    # Loss service
    # ------------------------------------------------------------------
    def drop(self) -> bool:
        """One Bernoulli draw: True when the packet is lost.

        Call sites must guard with ``loss_rate > 0`` so a zero-loss
        plan consumes no randomness at all.
        """
        return bool(self._loss_rng.random() < self.loss_rate)

    # ------------------------------------------------------------------
    # Transition service
    # ------------------------------------------------------------------
    def is_fault_transition(self, u: int, v: int) -> bool:
        """Whether this step's fault phase touched either endpoint."""
        transitions = self._transitions
        return u in transitions or v in transitions

    # ------------------------------------------------------------------
    # The fault phase
    # ------------------------------------------------------------------
    def advance(self, sim, now: float, positions: np.ndarray) -> None:
        """Apply every fault transition due by ``now``.

        Called by the engine after mobility advanced but before the edge
        set is recomputed, so the updated radio mask shapes this step's
        connectivity and the resulting link events.
        """
        transitions = self._transitions
        transitions.clear()
        events = self.plan.events
        cursor = self._cursor
        while cursor < len(events) and events[cursor][0] <= now:
            _time, kind, node = events[cursor]
            cursor += 1
            if kind == "crash":
                if self.crashed[node]:
                    continue
                self.crashed[node] = True
                transitions.add(node)
                self.count("crashes_total")
                self._emit(sim, "fault_inject", now, kind="crash", node=node)
                # State wipe: a crashed node loses its protocol state
                # (neighbor tables, routes), not just its radio.
                sim.notify_node_fail(node)
            else:
                if not self.crashed[node]:
                    continue
                self.crashed[node] = False
                transitions.add(node)
                self.count("recoveries_total")
                self._emit(sim, "fault_clear", now, kind="crash", node=node)
                sim.notify_node_recover(node)
        self._cursor = cursor

        outages = self.plan.config.outages
        if outages:
            mask = np.zeros(sim.n_nodes, dtype=bool)
            side = sim.region.side
            for outage in outages:
                if not outage.active_at(now):
                    continue
                center = outage.center_at(now, side)
                inside = sim.region.distance(positions, center) <= (
                    outage.radius * side
                )
                mask |= inside
            for node in np.flatnonzero(mask & ~self.outaged):
                node = int(node)
                transitions.add(node)
                self.count("outage_enters_total")
                self._emit(sim, "fault_inject", now, kind="outage", node=node)
            for node in np.flatnonzero(self.outaged & ~mask):
                node = int(node)
                transitions.add(node)
                self.count("outage_exits_total")
                self._emit(sim, "fault_clear", now, kind="outage", node=node)
            self.outaged = mask

        if transitions:
            effective = ~(self.crashed | self.outaged)
            if not np.array_equal(effective, sim.active):
                sim.active[:] = effective
                if sim._incremental is not None:
                    sim._incremental.invalidate()


def attach_faults(sim, plan: FaultPlan) -> FaultInjector:
    """Install ``plan`` on ``sim``; returns the injector for inspection.

    The injector owns ``sim.active`` from here on — manual
    ``fail_node`` / ``recover_node`` calls alongside an attached plan
    will be overwritten at the next fault transition.
    """
    if sim.faults is not None:
        raise ValueError("a fault plan is already attached to this simulation")
    injector = FaultInjector(sim, plan)
    sim.faults = injector
    if injector.loss_rate > 0.0:
        # One greppable activation marker per run: loss is continuous,
        # not an event, so it is announced once at attach time.
        injector._emit(
            sim, "fault_inject", sim.time, kind="loss", rate=injector.loss_rate
        )
    return injector
