"""Deterministic fault injection for simulation runs.

The package adds the failure axis the paper's lossless/immortal
simulations lack: node crashes (with protocol-state wipe and optional
recovery), per-link Bernoulli packet loss, and moving spatial outage
regions that silence every radio inside them.  Faults are declared as a
:class:`~repro.faults.plan.FaultConfig` (the JSON-able ``faults`` block
of a scenario or sweep), compiled once into a concrete
:class:`~repro.faults.plan.FaultPlan` by
:func:`~repro.faults.plan.build_plan` — all randomness drawn up front
from a seed-derived stream, so runs stay deterministic and
store-fingerprintable — and applied by a
:class:`~repro.faults.runtime.FaultInjector` through the engine's fault
phase (see :meth:`repro.sim.engine.Simulation.step`).
"""

from .plan import (
    FAULT_CONFIG_KEYS,
    FaultConfig,
    FaultPlan,
    OutageSpec,
    build_plan,
    fault_config_from_dict,
)
from .runtime import FaultInjector, attach_faults

__all__ = [
    "FAULT_CONFIG_KEYS",
    "FaultConfig",
    "FaultPlan",
    "OutageSpec",
    "FaultInjector",
    "attach_faults",
    "build_plan",
    "fault_config_from_dict",
]
