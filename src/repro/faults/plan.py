"""Declarative fault configuration and the compiled fault schedule.

Two layers, mirroring the scenario/params split used everywhere else:

* :class:`FaultConfig` — the *declarative* description (the ``faults``
  block of a scenario JSON or a sweep's ``faults=`` kwarg): crash rate
  and recovery delay, per-link loss probability, outage-region specs,
  and the graceful-degradation knobs the protocols consume.  Plain
  frozen dataclass, so it canonicalizes into store fingerprints.
* :class:`FaultPlan` — the *compiled* schedule: a sorted tuple of
  ``(time, kind, node)`` crash/recover events plus the loss stream's
  seed material.  :func:`build_plan` draws the whole schedule up front
  from a stream derived as ``SeedSequence([seed, _FAULT_STREAM_SALT])``
  — independent of the simulation's own RNG, so attaching a fault plan
  never perturbs mobility or beacon phases, and the same
  ``(config, params, horizon, seed)`` always compiles to the same plan.

Per-packet Bernoulli loss cannot be pre-scheduled (it depends on which
packets the run sends), so the plan instead pins the *seed* of a
dedicated loss stream; a run replays identical draws, which is what
makes jobs=N sweeps and store replays with faults deterministic.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

import numpy as np

__all__ = [
    "FAULT_CONFIG_KEYS",
    "FaultConfig",
    "FaultPlan",
    "OutageSpec",
    "build_plan",
    "fault_config_from_dict",
]

#: Salt separating the fault streams from every other consumer of the
#: scenario seed (mobility resets with the bare seed; protocols draw
#: from the simulation RNG).
_FAULT_STREAM_SALT = 0xFA17
#: Child-stream indices under the salted sequence.
_SCHEDULE_STREAM = 0
_LOSS_STREAM = 1


@dataclass(frozen=True)
class OutageSpec:
    """A moving circular outage region silencing all nodes inside it.

    Geometry is expressed in *fractions of the region side* so one spec
    scales across sweep points: ``center`` and ``velocity`` are
    side-relative, ``radius`` is a side fraction.  The region is active
    on ``[start, start + duration)`` (``duration=None`` — to the end of
    the run) and its center moves linearly, wrapping on the torus.
    """

    center: tuple[float, float] = (0.5, 0.5)
    radius: float = 0.25
    velocity: tuple[float, float] = (0.0, 0.0)
    start: float = 0.0
    duration: float | None = None

    def __post_init__(self) -> None:
        if self.radius <= 0.0:
            raise ValueError(f"outage radius must be positive, got {self.radius}")
        if self.start < 0.0:
            raise ValueError(f"outage start must be non-negative, got {self.start}")
        if self.duration is not None and self.duration <= 0.0:
            raise ValueError(
                f"outage duration must be positive, got {self.duration}"
            )
        object.__setattr__(self, "center", tuple(float(c) for c in self.center))
        object.__setattr__(
            self, "velocity", tuple(float(v) for v in self.velocity)
        )
        if len(self.center) != 2 or len(self.velocity) != 2:
            raise ValueError("outage center/velocity must be (x, y) pairs")

    def active_at(self, time: float) -> bool:
        """Whether the region silences nodes at simulated ``time``."""
        if time < self.start:
            return False
        return self.duration is None or time < self.start + self.duration

    def center_at(self, time: float, side: float) -> np.ndarray:
        """Absolute region center at ``time`` (torus-wrapped)."""
        elapsed = max(0.0, time - self.start)
        center = np.asarray(self.center) + np.asarray(self.velocity) * elapsed
        return np.mod(center * side, side)


#: Valid keys of a scenario/CLI ``faults`` block.
FAULT_CONFIG_KEYS = (
    "crash_rate",
    "crash_recover_after",
    "loss_rate",
    "outages",
    "hello_miss_limit",
    "route_retries",
    "route_retry_backoff",
    "route_retry_cap",
)


@dataclass(frozen=True)
class FaultConfig:
    """Declarative fault description (the scenario ``faults`` block).

    Parameters
    ----------
    crash_rate:
        Expected crashes *per node per unit time* (a Poisson process
        over ``n_nodes * horizon``).  0 disables crashes.
    crash_recover_after:
        Delay until a crashed node's radio comes back (its protocol
        state was wiped at crash time); ``None`` makes crashes
        permanent.
    loss_rate:
        Per-link Bernoulli loss probability applied to HELLO receptions
        and RREQ flood hops.  0 disables loss (and draws no randomness,
        so a zero-loss plan is bit-identical to running without one).
    outages:
        Moving spatial outage regions (:class:`OutageSpec` or dicts).
    hello_miss_limit:
        Graceful-degradation knob: consecutive missed beacons a
        periodic/adaptive HELLO tolerates before evicting a neighbor
        (``None`` keeps the stock single-timeout eviction).
    route_retries:
        Graceful-degradation knob: failed AODV route discoveries are
        retried up to this many times with capped exponential backoff
        (0 keeps the stock fail-fast behavior).
    route_retry_backoff / route_retry_cap:
        Base delay and cap of that backoff (``min(base * 2**attempt,
        cap)``).
    """

    crash_rate: float = 0.0
    crash_recover_after: float | None = None
    loss_rate: float = 0.0
    outages: tuple[OutageSpec, ...] = ()
    hello_miss_limit: int | None = None
    route_retries: int = 0
    route_retry_backoff: float = 0.5
    route_retry_cap: float = 4.0

    def __post_init__(self) -> None:
        if self.crash_rate < 0.0:
            raise ValueError(f"crash_rate must be >= 0, got {self.crash_rate}")
        if self.crash_recover_after is not None and self.crash_recover_after <= 0.0:
            raise ValueError(
                "crash_recover_after must be positive (or null for "
                f"permanent crashes), got {self.crash_recover_after}"
            )
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(
                f"loss_rate must be in [0, 1), got {self.loss_rate}"
            )
        outages = tuple(
            o if isinstance(o, OutageSpec) else OutageSpec(**o)
            for o in self.outages
        )
        object.__setattr__(self, "outages", outages)
        if self.hello_miss_limit is not None and self.hello_miss_limit < 1:
            raise ValueError(
                f"hello_miss_limit must be >= 1, got {self.hello_miss_limit}"
            )
        if self.route_retries < 0:
            raise ValueError(
                f"route_retries must be >= 0, got {self.route_retries}"
            )
        if self.route_retry_backoff <= 0.0 or self.route_retry_cap <= 0.0:
            raise ValueError("route retry backoff and cap must be positive")

    @property
    def inert(self) -> bool:
        """True when the config injects nothing (no crash/loss/outage)."""
        return (
            self.crash_rate == 0.0
            and self.loss_rate == 0.0
            and not self.outages
        )

    def to_dict(self) -> dict:
        """JSON-serializable view; :func:`fault_config_from_dict` round-trips it."""
        data = asdict(self)
        data["outages"] = [
            {
                "center": list(o.center),
                "radius": o.radius,
                "velocity": list(o.velocity),
                "start": o.start,
                "duration": o.duration,
            }
            for o in self.outages
        ]
        return data


def fault_config_from_dict(spec: dict | FaultConfig) -> FaultConfig:
    """Build (and validate) a :class:`FaultConfig` from a ``faults`` block.

    Unknown keys — here and inside each outage spec — are rejected with
    the list of valid keys, matching the scenario loader's contract.
    """
    if isinstance(spec, FaultConfig):
        return spec
    if not isinstance(spec, dict):
        raise ValueError(
            f"faults config must be a dict, got {type(spec).__name__}"
        )
    data = dict(spec)
    unknown = set(data) - set(FAULT_CONFIG_KEYS)
    if unknown:
        raise ValueError(
            f"unknown faults keys: {sorted(unknown)}; "
            f"valid keys are: {sorted(FAULT_CONFIG_KEYS)}"
        )
    outages = []
    outage_keys = ("center", "radius", "velocity", "start", "duration")
    for outage in data.get("outages", ()):
        if isinstance(outage, OutageSpec):
            outages.append(outage)
            continue
        if not isinstance(outage, dict):
            raise ValueError(
                f"each outage must be a dict, got {type(outage).__name__}"
            )
        bad = set(outage) - set(outage_keys)
        if bad:
            raise ValueError(
                f"unknown outage keys: {sorted(bad)}; "
                f"valid keys are: {sorted(outage_keys)}"
            )
        fields = dict(outage)
        for key in ("center", "velocity"):
            if key in fields:
                fields[key] = tuple(fields[key])
        outages.append(OutageSpec(**fields))
    data["outages"] = tuple(outages)
    return FaultConfig(**data)


@dataclass(frozen=True)
class FaultPlan:
    """The compiled, fully deterministic fault schedule of one run.

    ``events`` is sorted by ``(time, kind, node)``; kinds are
    ``"crash"`` and ``"recover"``.  ``loss_entropy`` seeds the run's
    dedicated Bernoulli loss stream.  Plain data throughout, so a plan
    (like the config it came from) is picklable and fingerprintable.
    """

    config: FaultConfig
    horizon: float
    events: tuple[tuple[float, str, int], ...] = ()
    loss_entropy: tuple[int, ...] = field(
        default=(0, _FAULT_STREAM_SALT, _LOSS_STREAM)
    )

    @property
    def loss_rate(self) -> float:
        """Per-link Bernoulli loss probability of the plan."""
        return self.config.loss_rate

    @property
    def inert(self) -> bool:
        """True when applying the plan can never change a run."""
        return not self.events and self.config.loss_rate == 0.0 and (
            not self.config.outages
        )


def build_plan(
    config: dict | FaultConfig,
    n_nodes: int,
    horizon: float,
    seed: int | None,
) -> FaultPlan:
    """Compile ``config`` into the concrete schedule for one run.

    ``horizon`` is the total stepped time (warmup + measured duration);
    crash times are drawn uniformly over it.  All randomness comes from
    ``SeedSequence([seed, salt, stream])``, so the schedule is a pure
    function of its arguments — building a plan consumes nothing from
    the simulation's own RNG.
    """
    config = fault_config_from_dict(config)
    if n_nodes < 1:
        raise ValueError(f"n_nodes must be positive, got {n_nodes}")
    if horizon <= 0.0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    base = 0 if seed is None else int(seed)
    events: list[tuple[float, str, int]] = []
    if config.crash_rate > 0.0:
        rng = np.random.default_rng(
            np.random.SeedSequence(
                [base, _FAULT_STREAM_SALT, _SCHEDULE_STREAM]
            )
        )
        count = int(rng.poisson(config.crash_rate * n_nodes * horizon))
        times = np.sort(rng.uniform(0.0, horizon, size=count))
        victims = rng.integers(0, n_nodes, size=count)
        for time, victim in zip(times, victims):
            events.append((float(time), "crash", int(victim)))
            if config.crash_recover_after is not None:
                events.append(
                    (
                        float(time) + config.crash_recover_after,
                        "recover",
                        int(victim),
                    )
                )
    events.sort()
    return FaultPlan(
        config=config,
        horizon=float(horizon),
        events=tuple(events),
        loss_entropy=(base, _FAULT_STREAM_SALT, _LOSS_STREAM),
    )
