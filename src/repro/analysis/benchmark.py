"""Engine performance benchmark: edge-set core vs the dense baseline.

``repro-manet bench`` drives this module and writes ``BENCH_engine.json``.
It answers three questions about the simulation substrate:

* **How much faster is each connectivity kernel?**  The dense baseline
  re-implements the pre-edge-set kernel inline — per-step dense
  ``O(N^2)`` adjacency recomputation plus matrix diffing, exactly the
  work the seed engine did.  The edge engine runs the batch edge-set
  core, and the incremental engine runs the temporal-coherence kernel
  (:mod:`repro.spatial.incremental`).  All paths run the same mobility
  model with the same seeds, so the steps/sec ratios isolate the
  connectivity representation.  Each incremental row is preceded by an
  **equivalence check** — a short dual-engine run asserting identical
  per-step edge sets and link events — so a speedup number is never
  reported for a kernel that silently diverged.
* **Where is the dense/grid crossover?**  ``--crossover`` times
  :func:`~repro.spatial.neighbors.compute_edges` under both methods
  across sizes; the measured ratio table is the evidence behind
  ``GRID_CROSSOVER_NODES``.
* **Does process parallelism pay?**  ``--sweep-jobs`` times an
  identical small sweep point at several ``jobs`` values; numbers are
  whatever the current machine supports (a single-core container shows
  overhead, not speedup — the report records ``cpu_count`` so readers
  can judge).

Peak RSS is read from ``getrusage`` and is monotone over the process
lifetime; modes are benchmarked smallest-N-first so the per-mode
snapshot is still a usable upper bound for that mode.  A background
:class:`~repro.obs.resources.ResourceSampler` additionally records the
*current* RSS and CPU utilisation over the whole benchmark
(``resources`` in the report).

**Bench history** (``repro-manet bench --history FILE``) turns a
one-off report into a perf-regression tracker: each run appends one
compact JSONL entry (machine, config, steps/sec per benchmark point) to
the history file, and :func:`update_bench_history` flags every point
whose steps/sec fell more than the threshold (default 20%) below the
best prior entry — the CLI exits non-zero on any flagged point, which
is how CI gates engine performance.
"""

from __future__ import annotations

import json
import logging
import platform
import resource
import sys
from datetime import datetime, timezone
from pathlib import Path
from time import perf_counter

import numpy as np

from ..core.params import NetworkParameters
from ..mobility import EpochRandomWaypointModel
from ..obs.resources import ResourceSampler
from ..obs.timing import PhaseTimer
from ..sim import Simulation, recommended_step
from ..spatial import Boundary, SquareRegion, compute_edges, diff_adjacency

__all__ = [
    "DEFAULT_SIZES",
    "DEFAULT_MODES",
    "DEFAULT_REGRESSION_THRESHOLD",
    "bench_step_modes",
    "check_equivalence",
    "measure_crossover",
    "bench_parallel_sweep",
    "run_bench",
    "write_bench",
    "history_entry",
    "update_bench_history",
]

logger = logging.getLogger(__name__)

#: Fractional steps/sec drop vs the best prior history entry that
#: counts as a regression.
DEFAULT_REGRESSION_THRESHOLD = 0.20

#: Network sizes the step benchmark reports on.
DEFAULT_SIZES = (100, 500, 2000, 5000)

#: Dense baseline is skipped above this size by default: the O(N^2)
#: kernel needs ~minutes per point there, and the trend is long clear.
DEFAULT_DENSE_LIMIT = 2000

#: Kernel modes the step benchmark runs, in reporting order.  Tokens
#: are the ``--modes`` CLI vocabulary; labels are the ``mode`` field in
#: result rows and history points.
DEFAULT_MODES = ("edge", "incremental", "dense")

_MODE_LABELS = {
    "edge": "edge-engine",
    "incremental": "incremental-engine",
    "dense": "dense-baseline",
}

#: speedup-table marker: the point was skipped on purpose, not lost.
SKIPPED_DENSE_LIMIT = "skipped (dense_limit)"
SKIPPED_MODE = "skipped (mode not run)"


def _peak_rss_kb() -> int:
    """Peak resident set size of this process so far, in kilobytes."""
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _params_for(n_nodes: int) -> NetworkParameters:
    return NetworkParameters.from_fractions(
        n_nodes=n_nodes, range_fraction=0.1, velocity_fraction=0.05
    )


def _phase_dict(timer: PhaseTimer) -> dict[str, float]:
    return {p.phase: p.seconds for p in timer.report().phases}


def _bench_dense_baseline(
    params: NetworkParameters, steps: int, seed: int = 0
) -> dict:
    """Per-step dense adjacency + matrix diff — the pre-edge-set kernel."""
    region = SquareRegion(params.side, Boundary.TORUS)
    mobility = EpochRandomWaypointModel(params.velocity, epoch=1.0)
    mobility.reset(params.n_nodes, region, seed)
    dt = recommended_step(params.tx_range, params.velocity)
    adjacency = region.adjacency(mobility.positions, params.tx_range)
    timer = PhaseTimer()
    start = perf_counter()
    for _ in range(steps):
        t0 = perf_counter()
        positions = mobility.advance(dt)
        t1 = perf_counter()
        new_adjacency = region.adjacency(positions, params.tx_range)
        t2 = perf_counter()
        diff_adjacency(adjacency, new_adjacency)
        t3 = perf_counter()
        timer.add("mobility", t1 - t0)
        timer.add("adjacency", t2 - t1)
        timer.add("link_diff", t3 - t2)
        adjacency = new_adjacency
    elapsed = perf_counter() - start
    return {
        "mode": "dense-baseline",
        "n_nodes": params.n_nodes,
        "steps": steps,
        "elapsed_s": elapsed,
        "steps_per_sec": steps / elapsed,
        "phases_s": _phase_dict(timer),
        "peak_rss_kb": _peak_rss_kb(),
    }


def _bench_edge_engine(
    params: NetworkParameters,
    steps: int,
    seed: int = 0,
    connectivity: str | None = None,
) -> dict:
    """The batch edge-set engine through :meth:`Simulation.step`.

    Pinned to the mobility-blind dense/grid selection (``auto`` would
    resolve to the incremental engine for large sparse networks, which
    has its own benchmark mode).
    """
    from ..spatial import select_connectivity_method

    if connectivity is None:
        connectivity = select_connectivity_method(
            params.n_nodes, params.tx_range, params.side
        )
    timer = PhaseTimer()
    sim = Simulation(
        params,
        EpochRandomWaypointModel(params.velocity, epoch=1.0),
        seed=seed,
        timer=timer,
        connectivity=connectivity,
    )
    start = perf_counter()
    for _ in range(steps):
        sim.step()
    elapsed = perf_counter() - start
    return {
        "mode": "edge-engine",
        "n_nodes": params.n_nodes,
        "connectivity": sim.connectivity,
        "steps": steps,
        "elapsed_s": elapsed,
        "steps_per_sec": steps / elapsed,
        "phases_s": _phase_dict(timer),
        "peak_rss_kb": _peak_rss_kb(),
    }


def _bench_incremental_engine(
    params: NetworkParameters, steps: int, seed: int = 0
) -> dict:
    """The temporal-coherence kernel, forced on regardless of auto."""
    timer = PhaseTimer()
    sim = Simulation(
        params,
        EpochRandomWaypointModel(params.velocity, epoch=1.0),
        seed=seed,
        timer=timer,
        connectivity="incremental",
    )
    start = perf_counter()
    for _ in range(steps):
        sim.step()
    elapsed = perf_counter() - start
    engine = sim._incremental
    return {
        "mode": "incremental-engine",
        "n_nodes": params.n_nodes,
        "connectivity": sim.connectivity,
        "steps": steps,
        "elapsed_s": elapsed,
        "steps_per_sec": steps / elapsed,
        "phases_s": _phase_dict(timer),
        "peak_rss_kb": _peak_rss_kb(),
        "engine_stats": {
            "full_rebuilds": engine.full_rebuilds,
            "incremental_steps": engine.incremental_steps,
            "mean_at_risk": (
                engine.at_risk_total / engine.incremental_steps
                if engine.incremental_steps
                else 0.0
            ),
        },
    }


def check_equivalence(
    params: NetworkParameters, steps: int = 10, seed: int = 0
) -> str:
    """Run the incremental engine against a reference engine in lockstep.

    The reference is whatever the mobility-blind selection (dense or
    grid) picks for this size — both of those are themselves pinned
    equal by the test suite.  Compares the sorted edge set and the link
    events after every step; returns ``"ok"`` or a description of the
    first mismatch.
    """
    from ..spatial import select_connectivity_method

    reference = select_connectivity_method(
        params.n_nodes, params.tx_range, params.side
    )
    sims = [
        Simulation(
            params,
            EpochRandomWaypointModel(params.velocity, epoch=1.0),
            seed=seed,
            connectivity=connectivity,
        )
        for connectivity in ("incremental", reference)
    ]
    if not np.array_equal(sims[0].edges, sims[1].edges):
        return f"initial edge sets differ (vs {reference})"
    for step in range(1, steps + 1):
        events = [sim.step() for sim in sims]
        if not np.array_equal(sims[0].edges, sims[1].edges):
            return f"edge sets differ at step {step} (vs {reference})"
        for field in ("generated", "broken"):
            if not np.array_equal(
                getattr(events[0], field), getattr(events[1], field)
            ):
                return (
                    f"{field} link events differ at step {step} "
                    f"(vs {reference})"
                )
    return "ok"


def bench_step_modes(
    sizes=DEFAULT_SIZES,
    steps: int = 30,
    dense_limit: int = DEFAULT_DENSE_LIMIT,
    modes=DEFAULT_MODES,
) -> tuple[list[dict], dict[str, dict]]:
    """Benchmark the requested kernels across ``sizes``.

    Returns ``(results, tables)``.  ``tables`` holds three per-size
    maps keyed by ``str(N)``:

    * ``"speedup_vs_dense"`` — mode steps/sec over the dense
      baseline's, per mode label; skipped points carry an explicit
      string marker (:data:`SKIPPED_DENSE_LIMIT` above ``dense_limit``,
      :data:`SKIPPED_MODE` when the mode wasn't requested) so no row is
      ever silently ``null``.
    * ``"speedup_vs_edge"`` — same shape relative to the edge engine;
      defined at every size the edge engine ran, which is how large-N
      rows keep a numeric speedup even where dense is skipped.
    * ``"equivalence"`` — the :func:`check_equivalence` verdict for the
      incremental engine at that size (``"ok"`` or a mismatch string).
    """
    unknown = [m for m in modes if m not in _MODE_LABELS]
    if unknown:
        raise ValueError(
            f"unknown bench modes {unknown}; "
            f"choose from {sorted(_MODE_LABELS)}"
        )
    results: list[dict] = []
    speedup_vs_dense: dict[str, dict[str, float | str]] = {}
    speedup_vs_edge: dict[str, dict[str, float | str]] = {}
    equivalence: dict[str, str] = {}
    for n_nodes in sorted(sizes):
        params = _params_for(n_nodes)
        per_size: dict[str, dict] = {}
        if "edge" in modes:
            per_size["edge"] = _bench_edge_engine(params, steps)
        if "incremental" in modes:
            equivalence[str(n_nodes)] = check_equivalence(params)
            per_size["incremental"] = _bench_incremental_engine(
                params, steps
            )
        dense_skipped = n_nodes > dense_limit
        if "dense" in modes and not dense_skipped:
            per_size["dense"] = _bench_dense_baseline(params, steps)
        results.extend(
            per_size[m] for m in DEFAULT_MODES if m in per_size
        )

        def _ratios(baseline_token: str, skip_marker: str) -> dict:
            baseline = per_size.get(baseline_token)
            table: dict[str, float | str] = {}
            for token in modes:
                if token == baseline_token:
                    continue
                label = _MODE_LABELS[token]
                row = per_size.get(token)
                if row is None:
                    table[label] = SKIPPED_MODE
                elif baseline is None:
                    table[label] = skip_marker
                else:
                    table[label] = (
                        row["steps_per_sec"] / baseline["steps_per_sec"]
                    )
            return table

        if "dense" in modes:
            speedup_vs_dense[str(n_nodes)] = _ratios(
                "dense", SKIPPED_DENSE_LIMIT
            )
        if "edge" in modes:
            speedup_vs_edge[str(n_nodes)] = _ratios("edge", SKIPPED_MODE)
    tables = {
        "speedup_vs_dense": speedup_vs_dense,
        "speedup_vs_edge": speedup_vs_edge,
        "equivalence": equivalence,
    }
    return results, tables


def measure_crossover(
    sizes=(32, 64, 100, 128, 256, 512), repeats: int = 3
) -> list[dict]:
    """Time ``compute_edges`` dense vs grid per size (min over repeats).

    ``ratio > 1`` means the grid wins; this table is the measurement
    behind :data:`~repro.spatial.neighbors.GRID_CROSSOVER_NODES`.
    """
    rows = []
    for n_nodes in sizes:
        params = _params_for(n_nodes)
        region = SquareRegion(params.side, Boundary.TORUS)
        positions = region.uniform_positions(n_nodes, 0)
        timings = {}
        for method in ("dense", "grid"):
            best = np.inf
            for _ in range(repeats):
                start = perf_counter()
                compute_edges(region, positions, params.tx_range, method=method)
                best = min(best, perf_counter() - start)
            timings[method] = best
        rows.append(
            {
                "n_nodes": n_nodes,
                "dense_s": timings["dense"],
                "grid_s": timings["grid"],
                "ratio": timings["dense"] / timings["grid"],
            }
        )
    return rows


def bench_parallel_sweep(
    jobs_values=(1, 4),
    n_nodes: int = 120,
    seeds: int = 4,
    duration: float = 4.0,
) -> dict:
    """Wall-clock one sweep point at each ``jobs`` value.

    The per-seed work and results are identical across rows (the runner
    is deterministic), so the wall-clock ratio is pure scheduling.
    ``chunk_size`` records how many tasks each worker dispatch carried
    (the amortization knob of :func:`repro.analysis.parallel.run_tasks`).
    """
    from .parallel import task_chunk_size
    from .sweep import measure_point

    params = _params_for(n_nodes)
    rows = []
    serial_s: float | None = None
    for jobs in jobs_values:
        start = perf_counter()
        measure_point(
            params,
            params.tx_range,
            seeds=seeds,
            duration=duration,
            warmup=duration * 0.15,
            jobs=jobs,
        )
        elapsed = perf_counter() - start
        if jobs == 1:
            serial_s = elapsed
        rows.append(
            {
                "jobs": jobs,
                "chunk_size": task_chunk_size(seeds, jobs),
                "wall_s": elapsed,
                "vs_serial": None if serial_s is None else elapsed / serial_s,
            }
        )
    return {
        "n_nodes": n_nodes,
        "seeds": seeds,
        "duration": duration,
        "rows": rows,
    }


def run_bench(
    sizes=DEFAULT_SIZES,
    steps: int = 30,
    dense_limit: int = DEFAULT_DENSE_LIMIT,
    crossover: bool = False,
    sweep_jobs=None,
    modes=DEFAULT_MODES,
) -> dict:
    """Run the requested benchmark stages and assemble the report."""
    import os

    from ..sim.engine import ENGINE_SCHEMA_VERSION

    payload: dict = {
        "schema_version": 2,
        "engine_schema_version": ENGINE_SCHEMA_VERSION,
        "machine": {
            "platform": platform.platform(),
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
        },
        "config": {
            "sizes": list(sizes),
            "steps": steps,
            "dense_limit": dense_limit,
            "modes": list(modes),
        },
        "notes": [
            "dense-baseline re-implements the pre-edge-set kernel "
            "(per-step O(N^2) adjacency + matrix diff) inline",
            "incremental-engine rows are preceded by a dual-engine "
            "equivalence check (see the equivalence table)",
            "peak_rss_kb is process-monotone (getrusage); modes run "
            "smallest-N-first",
        ],
    }
    sampler = ResourceSampler(interval=0.2)
    with sampler:
        results, tables = bench_step_modes(
            sizes, steps, dense_limit, modes
        )
        payload["step_benchmarks"] = results
        payload.update(tables)
        if crossover:
            payload["crossover"] = measure_crossover()
        if sweep_jobs:
            payload["parallel_sweep"] = bench_parallel_sweep(
                tuple(sweep_jobs)
            )
    payload["resources"] = sampler.summary()
    return payload


def write_bench(payload: dict, path: str | Path) -> Path:
    """Write a benchmark report as indented JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


# ----------------------------------------------------------------------
# Bench history: perf-regression tracking across runs
# ----------------------------------------------------------------------
def history_entry(payload: dict) -> dict:
    """Compact JSONL history record for one benchmark report.

    ``points`` maps ``"<mode>:N<size>"`` to steps/sec, so entries from
    differently-configured runs only gate against each other where
    they measured the same point.  ``phases`` carries each point's
    per-phase *seconds per step*, which is what lets a later regression
    be attributed to the phase whose cost moved
    (:func:`repro.obs.compare.diff_phases`).
    """
    points: dict[str, float] = {}
    phases: dict[str, dict[str, float]] = {}
    for row in payload.get("step_benchmarks", []):
        key = f"{row['mode']}:N{row['n_nodes']}"
        points[key] = row["steps_per_sec"]
        steps = row.get("steps") or 0
        if steps and row.get("phases_s"):
            phases[key] = {
                phase: seconds / steps
                for phase, seconds in row["phases_s"].items()
            }
    return {
        "schema": 1,
        "recorded_at": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "machine": payload.get("machine", {}),
        "config": payload.get("config", {}),
        "points": points,
        "phases": phases,
    }


def _read_history(path: Path) -> list[dict]:
    """Prior history entries; malformed lines are skipped with a warning."""
    entries: list[dict] = []
    if not path.exists():
        return entries
    for line_number, line in enumerate(
        path.read_text().splitlines(), start=1
    ):
        line = line.strip()
        if not line:
            continue
        try:
            entries.append(json.loads(line))
        except json.JSONDecodeError:
            logger.warning(
                "%s:%d: skipping malformed bench-history line",
                path,
                line_number,
            )
    return entries


def update_bench_history(
    payload: dict,
    path: str | Path,
    threshold: float = DEFAULT_REGRESSION_THRESHOLD,
) -> tuple[dict, list[str]]:
    """Append this run to the history and flag steps/sec regressions.

    Every benchmark point is compared against the *best* prior entry
    for the same point; a drop of more than ``threshold`` (fraction) is
    a regression.  The new entry is appended regardless, so a
    regression is recorded evidence, not a write failure.  Returns
    ``(entry, regressions)``; an empty regression list means the gate
    passes (including the very first run, which has nothing to gate
    against).  When both the best prior entry and this run recorded
    per-phase timings for a regressed point, the regression line is
    followed by an attribution of the phases whose per-step cost moved
    most.
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError(
            f"threshold must lie in (0, 1), got {threshold}"
        )
    from ..obs.compare import diff_phases

    path = Path(path)
    entry = history_entry(payload)
    best_prior: dict[str, float] = {}
    best_phases: dict[str, dict[str, float]] = {}
    for prior in _read_history(path):
        for key, value in (prior.get("points") or {}).items():
            try:
                value = float(value)
            except (TypeError, ValueError):
                continue
            if value > best_prior.get(key, 0.0):
                best_prior[key] = value
                phases = (prior.get("phases") or {}).get(key)
                if phases:
                    best_phases[key] = phases
                else:
                    best_phases.pop(key, None)
    regressions: list[str] = []
    for key, current in sorted(entry["points"].items()):
        best = best_prior.get(key)
        if best is None or best <= 0.0:
            continue
        if current < (1.0 - threshold) * best:
            regressions.append(
                f"{key}: {current:.1f} steps/s is "
                f"{1.0 - current / best:.1%} below the best prior "
                f"{best:.1f} steps/s (threshold {threshold:.0%})"
            )
            prior_phases = best_phases.get(key)
            current_phases = entry["phases"].get(key)
            if prior_phases and current_phases:
                regressions.extend(
                    f"{key}:   phase {line} s/step"
                    for line in diff_phases(prior_phases, current_phases)
                )
    with path.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, separators=(",", ":")) + "\n")
    return entry, regressions
