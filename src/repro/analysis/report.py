"""Plain-text table rendering for experiment output.

The benches regenerate the paper's figures as *series tables* (the
numbers behind each curve).  This module renders them in aligned ASCII,
which is what ``bench_output.txt`` and EXPERIMENTS.md embed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Table", "format_table"]


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: list[str], rows: list[list]) -> str:
    """Render rows under headers with right-aligned columns."""
    cells = [[_format_cell(v) for v in row] for row in rows]
    widths = [
        max(len(header), *(len(row[i]) for row in cells)) if cells else len(header)
        for i, header in enumerate(headers)
    ]
    lines = [
        "  ".join(header.rjust(width) for header, width in zip(headers, widths)),
        "  ".join("-" * width for width in widths),
    ]
    for row in cells:
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


@dataclass
class Table:
    """A titled result table with optional footnotes."""

    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values) -> None:
        """Append one row (must match the header count)."""
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(list(values))

    def render(self) -> str:
        """Render title, table body and notes as one text block."""
        parts = [self.title, "=" * len(self.title)]
        parts.append(format_table(self.headers, self.rows))
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)

    def to_csv(self) -> str:
        """Serialize headers and rows as RFC-4180 CSV (notes excluded)."""
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(self.headers)
        writer.writerows(self.rows)
        return buffer.getvalue()

    def save_csv(self, path) -> None:
        """Write :meth:`to_csv` output to ``path``."""
        from pathlib import Path

        Path(path).write_text(self.to_csv())
