"""Parameter sweeps of the clustered-MANET simulation vs. the analysis.

This is the engine behind Figures 1–3: for each value of the swept
parameter it runs the full simulation stack (paper-variant RWP mobility,
event-mode HELLO, LID clustering with reactive maintenance, proactive
intra-cluster routing), measures the three per-node control message
frequencies, and evaluates the closed-form model *with the measured
cluster-head ratio plugged in* — the paper's own methodology ("P for
LID is measured in real time during the simulation").
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

import numpy as np

from ..clustering import ClusterMaintenanceProtocol, LowestIdClustering
from ..clustering.base import ClusteringAlgorithm
from ..clustering.stability import attach_cluster_dynamics
from ..core import overhead as overhead_model
from ..core.params import MessageSizes, NetworkParameters
from ..mobility import EpochRandomWaypointModel
from ..obs.attribution import attach_attribution
from ..obs.health import attach_run_health
from ..routing import IntraClusterRoutingProtocol
from ..sim import HelloProtocol, Simulation
from .parallel import run_tasks
from .series import summarize

__all__ = ["SweepPoint", "SweepResult", "measure_point", "run_sweep"]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class SweepPoint:
    """One sweep sample: measured and predicted frequencies."""

    parameter_value: float
    params: NetworkParameters
    measured_head_ratio: float
    measured: dict[str, float]
    predicted: dict[str, float]
    seeds: int

    def to_dict(self) -> dict:
        """JSON-serializable view (round-trips via :meth:`from_dict`)."""
        return {
            "parameter_value": self.parameter_value,
            "params": {
                "n_nodes": self.params.n_nodes,
                "density": self.params.density,
                "tx_range": self.params.tx_range,
                "velocity": self.params.velocity,
                "messages": {
                    "p_hello": self.params.messages.p_hello,
                    "p_cluster": self.params.messages.p_cluster,
                    "p_route": self.params.messages.p_route,
                },
            },
            "measured_head_ratio": self.measured_head_ratio,
            "measured": dict(self.measured),
            "predicted": dict(self.predicted),
            "seeds": self.seeds,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SweepPoint":
        """Rebuild a point from its :meth:`to_dict` form."""
        params_data = dict(data["params"])
        messages = MessageSizes(**params_data.pop("messages"))
        return cls(
            parameter_value=data["parameter_value"],
            params=NetworkParameters(messages=messages, **params_data),
            measured_head_ratio=data["measured_head_ratio"],
            measured=dict(data["measured"]),
            predicted=dict(data["predicted"]),
            seeds=data["seeds"],
        )


@dataclass
class SweepResult:
    """A full sweep: the paper's three-curves-per-figure data."""

    parameter: str
    points: list[SweepPoint] = field(default_factory=list)

    def values(self) -> list[float]:
        """Swept parameter values."""
        return [p.parameter_value for p in self.points]

    def measured_series(self, key: str) -> list[float]:
        """Measured series for ``f_hello`` / ``f_cluster`` / ``f_route``."""
        return [p.measured[key] for p in self.points]

    def predicted_series(self, key: str) -> list[float]:
        """Analysis series for the same keys."""
        return [p.predicted[key] for p in self.points]

    def to_dict(self) -> dict:
        """JSON-serializable view — the unit stored in sweep manifests."""
        return {
            "parameter": self.parameter,
            "points": [point.to_dict() for point in self.points],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SweepResult":
        """Rebuild a result from its :meth:`to_dict` form."""
        return cls(
            parameter=data["parameter"],
            points=[SweepPoint.from_dict(p) for p in data["points"]],
        )


def _run_once(
    params: NetworkParameters,
    seed: int,
    duration: float,
    warmup: float,
    epoch: float,
    algorithm: ClusteringAlgorithm,
    beacon: dict | None = None,
    faults: dict | None = None,
) -> tuple[dict[str, float], float]:
    """One simulation run; returns (frequencies, measured head ratio)."""
    sim = Simulation(
        params,
        EpochRandomWaypointModel(params.velocity, epoch=epoch),
        seed=seed,
    )
    miss_limit = None
    if faults is not None:
        from ..faults import attach_faults, build_plan, fault_config_from_dict

        fault_config = fault_config_from_dict(faults)
        # Compiled inside the worker, from plain-data task elements, so
        # the task tuple (and its store fingerprint) stays declarative.
        attach_faults(
            sim,
            build_plan(
                fault_config,
                params.n_nodes,
                horizon=warmup + duration,
                seed=seed,
            ),
        )
        miss_limit = fault_config.hello_miss_limit
    if beacon is not None:
        from ..sim.beacon import hello_from_config

        beacon_spec = dict(beacon)
        if (
            miss_limit is not None
            and beacon_spec.get("mode", "event") != "event"
            and "miss_limit" not in beacon_spec
        ):
            beacon_spec["miss_limit"] = miss_limit
        sim.attach(hello_from_config(beacon_spec))
    else:
        sim.attach(HelloProtocol(mode="event"))
    maintenance = ClusterMaintenanceProtocol(algorithm)
    intra = IntraClusterRoutingProtocol(maintenance)
    sim.attach(intra)  # before maintenance: pre-repair membership view
    sim.attach(maintenance)
    # Run-health protocols (invariant auditor + residual monitor) when
    # the ambient context carries a RunHealthConfig; no-op otherwise.
    attach_run_health(sim, maintenance)
    # Cluster-dynamics time series when the run is traced; no-op
    # otherwise.  Attached before stepping so its window sums reconcile
    # with trace event counts.
    attach_cluster_dynamics(sim, maintenance)
    # Overhead attribution when traced or exporting metrics; no-op
    # otherwise.  Attached last so every message-producing protocol is
    # already in place when the ledger hooks the stats stream.
    attach_attribution(sim, maintenance)

    # Sample the head ratio across the measurement window, like the
    # paper's real-time P measurement.
    ratios: list[float] = []
    warmup_steps = int(round(warmup / sim.dt))
    measured_steps = max(1, int(round(duration / sim.dt)))
    sim.trace_run_begin(duration, warmup)
    sim.stats.stop_measuring()
    for _ in range(warmup_steps):
        sim.step()
    sim.stats.start_measuring()
    sample_every = max(1, measured_steps // 50)
    for step_index in range(measured_steps):
        sim.step()
        if step_index % sample_every == 0:
            ratios.append(maintenance.head_ratio())
    sim.stats.stop_measuring()
    sim.notify_run_end()
    sim.trace_run_end()

    frequencies = {
        "f_hello": sim.stats.per_node_frequency("hello"),
        "f_cluster": sim.stats.per_node_frequency("cluster"),
        "f_route": sim.stats.per_node_frequency("route"),
    }
    return frequencies, float(np.mean(ratios))


def _run_once_task(task) -> tuple[dict[str, float], float]:
    """Picklable per-seed worker for :func:`measure_point`.

    Tasks are 6-tuples historically; a beacon/control spec rides as an
    optional 7th element and a faults block as an optional 8th, so
    classic tasks keep their pre-existing store fingerprints while
    beacon- or fault-configured runs get distinct ones.
    """
    params, seed, duration, warmup, epoch, algorithm = task[:6]
    beacon = task[6] if len(task) > 6 else None
    faults = task[7] if len(task) > 7 else None
    return _run_once(
        params, seed, duration, warmup, epoch, algorithm, beacon, faults
    )


def measure_point(
    params: NetworkParameters,
    parameter_value: float,
    seeds: int = 3,
    duration: float = 20.0,
    warmup: float = 2.0,
    epoch: float = 1.0,
    algorithm: ClusteringAlgorithm | None = None,
    convention: str = "consistent",
    jobs: int | None = None,
    store=None,
    beacon: dict | None = None,
    faults: dict | None = None,
) -> SweepPoint:
    """Measure one parameter point (averaged over ``seeds`` runs).

    ``jobs`` fans the per-seed runs out to worker processes (see
    :func:`repro.analysis.parallel.run_tasks`); results are seed-order
    deterministic, so any ``jobs`` value yields the identical point.
    ``store`` (default: the ambient :func:`repro.store.use_store`)
    memoizes each per-seed run by content address, so repeating a point
    — or resuming an interrupted sweep — skips completed simulations.
    ``beacon`` is an optional beacon/control block (see
    :func:`repro.sim.beacon.hello_from_config`) replacing the default
    event-mode HELLO; it becomes part of each task's store identity, so
    cached event-mode results are never served for a policy run.
    ``faults`` is an optional fault-injection block (see
    :func:`repro.faults.fault_config_from_dict`); the per-seed plan is
    compiled inside each worker from ``(faults, n_nodes, horizon,
    seed)``, and the declarative block joins the task's store identity
    the same way ``beacon`` does.
    """
    if seeds < 1:
        raise ValueError(f"seeds must be positive, got {seeds}")
    algorithm = algorithm or LowestIdClustering()
    if beacon is not None:
        # Validate the block once, up front, instead of once per worker.
        from ..sim.beacon import hello_from_config

        hello_from_config(beacon)
    if faults is not None:
        from ..faults import fault_config_from_dict

        fault_config_from_dict(faults)
    logger.debug(
        "measuring point value=%g over %d seeds (N=%d, jobs=%s)",
        parameter_value,
        seeds,
        params.n_nodes,
        jobs,
    )

    def _task(seed: int) -> tuple:
        # Back-compatible task identity: classic 6-tuples, beacon as the
        # 7th element, faults as the 8th (with an explicit None beacon
        # placeholder so element positions stay fixed).
        task = (params, seed, duration, warmup, epoch, algorithm)
        if faults is not None:
            return task + (beacon, faults)
        if beacon is not None:
            return task + (beacon,)
        return task

    runs = run_tasks(
        _run_once_task,
        [_task(seed) for seed in range(seeds)],
        jobs=jobs,
        store=store,
    )
    measured = {
        key: summarize([freqs[key] for freqs, _ in runs]).mean
        for key in ("f_hello", "f_cluster", "f_route")
    }
    head_ratio = summarize([ratio for _, ratio in runs]).mean
    predicted = {
        "f_hello": overhead_model.hello_frequency(params),
        "f_cluster": overhead_model.cluster_frequency(
            params, head_ratio, convention
        ),
        "f_route": overhead_model.route_frequency(
            params, head_ratio, convention
        ),
    }
    return SweepPoint(
        parameter_value=parameter_value,
        params=params,
        measured_head_ratio=head_ratio,
        measured=measured,
        predicted=predicted,
        seeds=seeds,
    )


def _sweep_identity(
    parameter: str, base: NetworkParameters, values, point_kwargs: dict
) -> dict:
    """Canonical identity of a whole sweep, for the run manifest.

    Execution-only knobs (``jobs``, ``store``) are excluded: they never
    change results, so they must not change the manifest address.
    """
    from .. import __version__
    from ..sim import engine
    from ..store import canonicalize

    options = {
        key: value
        for key, value in point_kwargs.items()
        if key not in ("jobs", "store")
    }
    return {
        "kind": "sweep",
        "parameter": parameter,
        "base": canonicalize(base),
        "values": [float(v) for v in values],
        "options": canonicalize(options),
        "engine_schema": engine.ENGINE_SCHEMA_VERSION,
        "version": __version__,
    }


def run_sweep(
    parameter: str,
    base: NetworkParameters,
    values,
    **point_kwargs,
) -> SweepResult:
    """Sweep one of ``"tx_range"``, ``"velocity"`` or ``"density"``.

    ``values`` are absolute parameter values.  A density sweep keeps
    ``N`` and the transmission range fixed and varies the area
    (``rho = N / a^2``), which is how the paper's Figure 3 varies
    density.  A ``jobs`` keyword is forwarded to :func:`measure_point`
    to parallelize each point's per-seed runs; a ``store`` keyword (or
    an ambient :func:`repro.store.use_store`) makes the sweep
    incremental — per-seed tasks are memoized as they complete, so an
    interrupted sweep resumes and a repeated one is pure cache hits —
    and records a sweep-level run manifest (the full
    :meth:`SweepResult.to_dict` plus cache accounting) on completion.
    """
    from ..obs.log import progress
    from ..store import context as store_context

    store = point_kwargs.get("store")
    if store is None:
        store = store_context.current_store()
    hits_before = store.hits if store is not None else 0
    misses_before = store.misses if store is not None else 0
    result = SweepResult(parameter=parameter)
    values = list(values)
    for index, value in enumerate(values):
        progress(
            "sweep %s: point %d/%d (%s=%g)",
            parameter,
            index + 1,
            len(values),
            parameter,
            float(value),
        )
        if parameter == "tx_range":
            params = base.with_(tx_range=float(value))
        elif parameter == "velocity":
            params = base.with_(velocity=float(value))
        elif parameter == "density":
            params = base.with_(density=float(value))
        else:
            raise ValueError(
                "parameter must be 'tx_range', 'velocity' or 'density', "
                f"got {parameter!r}"
            )
        result.points.append(
            measure_point(params, float(value), **point_kwargs)
        )
    if store is not None:
        from ..store import fingerprint

        identity = _sweep_identity(parameter, base, values, point_kwargs)
        key = fingerprint(identity)
        store.put_manifest(
            key,
            identity,
            {
                "parameter": parameter,
                "points": len(result.points),
                "tasks": {
                    "hits": store.hits - hits_before,
                    "misses": store.misses - misses_before,
                },
                "result": result.to_dict(),
            },
        )
        logger.info("sweep manifest %s written to %s", key[:12], store.root)
    return result
