"""Simulation-vs-analysis validation verdicts.

The reproduction's acceptance criterion mirrors the paper's: the
analysis should *closely approximate* the simulated control message
frequencies, and in particular reproduce their shape — the direction of
every trend and the rough magnitudes.  :func:`validate_sweep` turns a
:class:`~repro.analysis.sweep.SweepResult` into a structured verdict
that the tests, benches and EXPERIMENTS.md all consume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .series import is_monotonic, relative_error
from .sweep import SweepResult

__all__ = ["CurveVerdict", "SweepVerdict", "validate_sweep"]


@dataclass(frozen=True)
class CurveVerdict:
    """Agreement between one measured curve and its analysis curve."""

    key: str
    mean_relative_error: float
    max_relative_error: float
    same_trend: bool
    correlation: float

    def agrees(
        self, max_mean_error: float = 1.0, min_correlation: float = 0.9
    ) -> bool:
        """Loose shape-level agreement check.

        The default tolerances accept a constant-factor offset (the
        analysis is a lower bound built from independence
        approximations) but require the curves to move together.
        """
        return (
            self.mean_relative_error <= max_mean_error
            and self.same_trend
            and self.correlation >= min_correlation
        )


@dataclass(frozen=True)
class SweepVerdict:
    """Verdicts for all three frequency curves of a sweep."""

    parameter: str
    curves: dict[str, CurveVerdict]

    def all_agree(self, **kwargs) -> bool:
        """Whether every curve passes :meth:`CurveVerdict.agrees`."""
        return all(curve.agrees(**kwargs) for curve in self.curves.values())


def _trend_matches(measured, predicted) -> bool:
    """Do the two series trend the same way (or are both flat-ish)?"""
    measured = np.asarray(measured, dtype=float)
    predicted = np.asarray(predicted, dtype=float)
    if len(measured) < 2:
        return True
    increasing = predicted[-1] >= predicted[0]
    return is_monotonic(measured, increasing=increasing, tolerance=0.35)


def validate_sweep(result: SweepResult) -> SweepVerdict:
    """Compare measured and predicted curves of one sweep."""
    curves: dict[str, CurveVerdict] = {}
    for key in ("f_hello", "f_cluster", "f_route"):
        measured = np.asarray(result.measured_series(key), dtype=float)
        predicted = np.asarray(result.predicted_series(key), dtype=float)
        errors = [
            relative_error(m, p) for m, p in zip(measured, predicted)
        ]
        if len(measured) >= 3 and np.std(measured) > 0 and np.std(predicted) > 0:
            correlation = float(np.corrcoef(measured, predicted)[0, 1])
        else:
            correlation = 1.0
        curves[key] = CurveVerdict(
            key=key,
            mean_relative_error=float(np.mean(errors)),
            max_relative_error=float(np.max(errors)),
            same_trend=_trend_matches(measured, predicted),
            correlation=correlation,
        )
    return SweepVerdict(parameter=result.parameter, curves=curves)
