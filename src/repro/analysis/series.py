"""Small numeric utilities for experiment series.

Multi-seed aggregation, relative error, and the shape checks the
reproduction asserts (the paper's figures are judged on *shape*:
monotonic trends, who-beats-whom, and crossing points — not absolute
values, since our substrate is a reimplementation, not the authors'
GloMoSim testbed).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "SeriesSummary",
    "summarize",
    "relative_error",
    "is_monotonic",
    "crossing_indices",
]


@dataclass(frozen=True)
class SeriesSummary:
    """Mean and spread of repeated measurements."""

    mean: float
    std: float
    count: int

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        if self.count <= 1:
            return float("nan")
        return self.std / math.sqrt(self.count)

    def ci95(self) -> tuple[float, float]:
        """Normal-approximation 95% confidence interval for the mean."""
        if self.count <= 1:
            return (self.mean, self.mean)
        half = 1.96 * self.stderr
        return (self.mean - half, self.mean + half)


def summarize(samples) -> SeriesSummary:
    """Summarize repeated measurements of one quantity."""
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample set")
    return SeriesSummary(
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        count=int(arr.size),
    )


def relative_error(measured: float, predicted: float) -> float:
    """``|measured - predicted| / |predicted|`` (inf when predicted is 0)."""
    if predicted == 0.0:
        return float("inf") if measured != 0.0 else 0.0
    return abs(measured - predicted) / abs(predicted)


def is_monotonic(values, increasing: bool = True, tolerance: float = 0.0) -> bool:
    """Whether a series is (weakly) monotonic up to a relative tolerance.

    ``tolerance`` forgives counter-movements smaller than that fraction
    of the local scale — simulation series are noisy.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size < 2:
        return True
    diffs = np.diff(arr)
    if not increasing:
        diffs = -diffs
    scale = np.maximum(np.abs(arr[:-1]), np.abs(arr[1:]))
    slack = tolerance * np.where(scale > 0.0, scale, 1.0)
    return bool(np.all(diffs >= -slack))


def crossing_indices(a, b) -> list[int]:
    """Indices ``i`` where series ``a - b`` changes sign between i and i+1.

    Used to locate crossover points (e.g. where the analysis curve
    crosses the simulation curve, paper Fig. 5).
    """
    diff = np.asarray(list(a), dtype=float) - np.asarray(list(b), dtype=float)
    if diff.size < 2:
        return []
    signs = np.sign(diff)
    crossings = []
    for i in range(len(signs) - 1):
        if signs[i] != 0 and signs[i + 1] != 0 and signs[i] != signs[i + 1]:
            crossings.append(i)
    return crossings
