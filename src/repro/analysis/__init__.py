"""Experiment harness: sweeps, validation verdicts, reporting."""

from .series import (
    SeriesSummary,
    crossing_indices,
    is_monotonic,
    relative_error,
    summarize,
)
from .parallel import TaskTelemetry, resolve_jobs, run_tasks
from .sweep import SweepPoint, SweepResult, measure_point, run_sweep
from .validation import CurveVerdict, SweepVerdict, validate_sweep
from .report import Table, format_table

__all__ = [
    "SeriesSummary",
    "crossing_indices",
    "is_monotonic",
    "relative_error",
    "summarize",
    "TaskTelemetry",
    "resolve_jobs",
    "run_tasks",
    "SweepPoint",
    "SweepResult",
    "measure_point",
    "run_sweep",
    "CurveVerdict",
    "SweepVerdict",
    "validate_sweep",
    "Table",
    "format_table",
]
