"""Parallel execution of independent simulation tasks.

Sweeps and experiments are embarrassingly parallel at the seed level:
every run is a pure function of its task tuple (parameters + seed), so
runs can be farmed out to worker processes without changing any result.
:func:`run_tasks` is the single entry point — experiments build a list
of task tuples, point it at a module-level worker function, and get
results back *in task order* regardless of worker scheduling, so a
``jobs=1`` and a ``jobs=8`` run aggregate bitwise-identical numbers.

Telemetry still has to close end-to-end (the PR-1 reconciliation
invariant): a worker process cannot write into the parent's JSONL
tracer, shared metrics registry or phase timer, so each worker captures
its own telemetry locally (an in-memory tracer, a private registry and
timer pushed as the ambient observability context) and ships it back
with the result.  The parent then merges: trace records are replayed
into the ambient tracer with simulation ids remapped through the
parent's id counter (so concurrent workers never collide), registry
instruments are folded in under the same remapping, and phase timings
are added to the shared timer.  ``repro-manet trace-summary`` on a
traced parallel run therefore reconciles exactly as a serial run does.

Determinism: tasks carry explicit seeds and workers derive *all*
randomness from them, so scheduling cannot leak into results.  The only
parallel/serial difference is telemetry interleaving (merged per task,
in task order) — never the task results themselves.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from ..obs import context as obs_context
from ..obs.metrics import MetricsRegistry
from ..obs.timing import PhaseTimer
from ..obs.tracer import NULL_TRACER, CollectingTracer

__all__ = ["TaskTelemetry", "resolve_jobs", "run_tasks"]


@dataclass
class TaskTelemetry:
    """Telemetry captured by one worker task, to be merged by the parent."""

    #: Trace records as emitted (with the worker's local sim ids).
    records: list[dict] = field(default_factory=list)
    #: Phase timing rows: ``(phase, seconds, calls)``.
    phases: list[tuple[str, float, int]] = field(default_factory=list)
    #: Metrics registry snapshot (:meth:`MetricsRegistry.to_dict`).
    metrics: dict = field(default_factory=dict)


def resolve_jobs(jobs: int | None, n_tasks: int) -> int:
    """Number of worker processes to use for ``n_tasks`` tasks.

    ``None`` and ``1`` mean serial in-process execution; ``0`` means
    one worker per CPU.  The result is capped at the task count.
    """
    if jobs is None:
        return 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        jobs = os.cpu_count() or 1
    return max(1, min(jobs, n_tasks))


def _run_captured(payload: tuple[Callable[[Any], Any], Any, bool, Any]):
    """Worker entry: run one task under a local observability context."""
    fn, task, capture_trace, health = payload
    tracer = CollectingTracer() if capture_trace else NULL_TRACER
    registry = MetricsRegistry()
    timer = PhaseTimer()
    # The parent's run-health configuration rides along so a --jobs > 1
    # traced run carries the same invariant_audit/residual events (and
    # the same strict-mode behavior) as a serial one.
    with obs_context.observe(
        tracer=tracer, registry=registry, timer=timer, health=health
    ):
        result = fn(task)
    report = timer.report()
    telemetry = TaskTelemetry(
        records=tracer.records if capture_trace else [],
        phases=[(p.phase, p.seconds, p.calls) for p in report.phases],
        metrics=registry.to_dict(),
    )
    return result, telemetry


def _fresh_sim_id() -> int:
    # The parent's Simulation counter is the authority for sim ids in
    # shared traces/registries; drawing remapped ids from it keeps
    # parallel runs collision-free with sims the parent creates itself.
    from ..sim.engine import Simulation

    return next(Simulation._instance_ids)


def _remap_sim(value, sim_map: dict) -> int:
    key = int(value)
    if key not in sim_map:
        sim_map[key] = _fresh_sim_id()
    return sim_map[key]


def merge_telemetry(
    telemetry: TaskTelemetry, context: obs_context.ObsContext
) -> None:
    """Fold one worker's captured telemetry into the ambient context."""
    sim_map: dict[int, int] = {}
    tracer = context.tracer
    if tracer.enabled:
        for record in telemetry.records:
            fields = {
                k: v for k, v in record.items() if k not in ("event", "t")
            }
            if "sim" in fields:
                fields["sim"] = _remap_sim(fields["sim"], sim_map)
            tracer.emit(record["event"], record["t"], **fields)
    if context.timer is not None:
        for phase, seconds, calls in telemetry.phases:
            context.timer.add(phase, seconds, calls=calls)
    if context.registry is not None:
        registry = context.registry
        for row in telemetry.metrics.get("counters", ()):
            labels = dict(row["labels"])
            if "sim" in labels:
                labels["sim"] = str(_remap_sim(labels["sim"], sim_map))
            registry.counter(row["name"], **labels).inc(row["value"])
        for row in telemetry.metrics.get("gauges", ()):
            labels = dict(row["labels"])
            if "sim" in labels:
                labels["sim"] = str(_remap_sim(labels["sim"], sim_map))
            registry.gauge(row["name"], **labels).set(row["value"])
        for row in telemetry.metrics.get("histograms", ()):
            labels = dict(row["labels"])
            if "sim" in labels:
                labels["sim"] = str(_remap_sim(labels["sim"], sim_map))
            histogram = registry.histogram(
                row["name"], buckets=tuple(row["bounds"]), **labels
            )
            histogram.count += row["count"]
            histogram.sum += row["sum"]
            if row.get("min") is not None:
                histogram.min_value = min(histogram.min_value, row["min"])
            if row.get("max") is not None:
                histogram.max_value = max(histogram.max_value, row["max"])
            for position, count in enumerate(row["bucket_counts"]):
                histogram.bucket_counts[position] += count


def run_tasks(
    fn: Callable[[Any], Any],
    tasks: Iterable[Any],
    jobs: int | None = None,
) -> list[Any]:
    """Run ``fn`` over ``tasks``, optionally across worker processes.

    ``fn`` must be a module-level (picklable) function of one task
    argument, and each task must be picklable and carry every input the
    run needs (including its seed).  Results are returned in task
    order.  With ``jobs in (None, 1)`` — or a single task — execution
    is serial and in-process, with telemetry flowing directly into the
    ambient observability context; with ``jobs > 1`` (or ``jobs=0`` for
    one worker per CPU) tasks run in a :class:`ProcessPoolExecutor` and
    captured telemetry is merged back afterwards.
    """
    task_list: Sequence[Any] = list(tasks)
    jobs = resolve_jobs(jobs, len(task_list))
    if jobs <= 1:
        return [fn(task) for task in task_list]
    context = obs_context.current()
    capture_trace = context.tracer.enabled
    payloads = [
        (fn, task, capture_trace, context.health) for task in task_list
    ]
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        outcomes = list(pool.map(_run_captured, payloads))
    results = []
    for result, telemetry in outcomes:
        merge_telemetry(telemetry, context)
        results.append(result)
    return results
