"""Parallel execution of independent simulation tasks.

Sweeps and experiments are embarrassingly parallel at the seed level:
every run is a pure function of its task tuple (parameters + seed), so
runs can be farmed out to worker processes without changing any result.
:func:`run_tasks` is the single entry point — experiments build a list
of task tuples, point it at a module-level worker function, and get
results back *in task order* regardless of worker scheduling, so a
``jobs=1`` and a ``jobs=8`` run aggregate bitwise-identical numbers.

Telemetry still has to close end-to-end (the PR-1 reconciliation
invariant): a worker process cannot write into the parent's JSONL
tracer, shared metrics registry or phase timer, so each worker captures
its own telemetry locally (an in-memory tracer, a private registry and
timer pushed as the ambient observability context) and ships it back
with the result.  The parent then merges: trace records are replayed
into the ambient tracer with simulation ids — and span ids, through
the global span counter of :mod:`repro.obs.spans` — remapped through
the parent's id counters (so concurrent workers never collide), registry
instruments are folded in under the same remapping, and phase timings
are added to the shared timer.  ``repro-manet trace-summary`` on a
traced parallel run therefore reconciles exactly as a serial run does.
The overhead-attribution ledger rides the same path for free: its
run-end ``attribution`` event carries a ``sim`` field and its
``overhead_*_total`` counters a ``sim`` label, both remapped by the
merge, so ``--jobs N`` attribution output is byte-identical to serial.

Determinism: tasks carry explicit seeds and workers derive *all*
randomness from them, so scheduling cannot leak into results.  The only
parallel/serial difference is telemetry interleaving (merged per task,
in task order) — never the task results themselves.

Because every task is such a pure function, its result can be memoized:
when a :class:`~repro.store.disk.ResultStore` is active (passed
explicitly or ambient via :func:`repro.store.use_store`), each task is
fingerprinted (:mod:`repro.store.fingerprint`) and the store is
consulted *before* simulating — hits return the stored result, misses
run and write their record back (in ``--jobs > 1`` runs the *workers*
write, as soon as each task finishes, so an interrupted sweep resumes
from every completed task; the parent only merges telemetry).  Cache
outcomes surface as ``cache_hit`` / ``cache_miss`` / ``cache_write``
counters in the ambient metrics registry and as trace events of the
same names (emitted off the simulated clock, at ``t=0``).  Tasks whose
payload cannot be fingerprinted (for example one carrying an open RNG)
are silently run uncached — the store can never break a run.
"""

from __future__ import annotations

import atexit
import logging
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from time import perf_counter, sleep
from typing import Any, Callable, Iterable, Sequence

from ..obs import context as obs_context
from ..obs.metrics import MetricsRegistry
from ..obs.timing import PhaseTimer
from ..obs.tracer import NULL_TRACER, CollectingTracer
from ..store import MISS, FingerprintError, fingerprint, task_identity
from ..store import context as store_context

__all__ = ["TaskTelemetry", "resolve_jobs", "run_tasks", "task_chunk_size"]

logger = logging.getLogger(__name__)


@dataclass
class TaskTelemetry:
    """Telemetry captured by one worker task, to be merged by the parent."""

    #: Trace records as emitted (with the worker's local sim ids).
    records: list[dict] = field(default_factory=list)
    #: Phase timing rows: ``(phase, seconds, calls)``.
    phases: list[tuple[str, float, int]] = field(default_factory=list)
    #: Metrics registry snapshot (:meth:`MetricsRegistry.to_dict`).
    metrics: dict = field(default_factory=dict)
    #: How many tasks rode in the worker submission that ran this task
    #: (1 for serial runs); surfaced so sweeps can verify that worker
    #: batching actually amortized the spawn/IPC overhead.
    chunk_size: int = 1


def resolve_jobs(jobs: int | None, n_tasks: int) -> int:
    """Number of worker processes to use for ``n_tasks`` tasks.

    ``None`` and ``1`` mean serial in-process execution; ``0`` means
    one worker per CPU.  The result is capped at the task count.
    """
    if jobs is None:
        return 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        jobs = os.cpu_count() or 1
    return max(1, min(jobs, n_tasks))


def task_chunk_size(n_tasks: int, jobs: int) -> int:
    """Tasks batched per worker submission.

    ~4 chunks per worker keeps the pool load-balanced while amortizing
    the pickle/dispatch overhead that made fine-grained submissions
    slower than serial execution on small sweeps.
    """
    return max(1, n_tasks // (4 * jobs))


def _emit_cache_event(
    context: obs_context.ObsContext, outcome: str, key: str, fn_path: str
) -> None:
    """Record one cache outcome in the ambient registry and trace.

    Cache events happen outside any simulation run, so they carry
    ``t=0`` and no ``sim`` field (readers treat them as runless, like
    ``resource_sample``).
    """
    if context.registry is not None:
        context.registry.counter(outcome).inc()
    if context.tracer.enabled:
        context.tracer.emit(outcome, 0.0, key=key, fn=fn_path)


def _fn_path(fn: Callable) -> str:
    return f"{getattr(fn, '__module__', '?')}:{getattr(fn, '__qualname__', '?')}"


def _run_captured(
    payload: tuple[Callable[[Any], Any], Sequence[Any], bool, Any, Sequence[Any]]
):
    """Worker entry: run one *chunk* of tasks, each under a local context.

    Tasks are batched per submission so the process spawn and pickle
    round-trip amortize over ``chunk_size`` tasks instead of being paid
    per task (the dominant cost of small sweeps).  Each task still gets
    its own observability context, so the per-task telemetry the parent
    merges is identical to what single-task submissions produced.
    """
    fn, chunk, capture_trace, health, stored_entries = payload
    outcomes = []
    for task, stored in zip(chunk, stored_entries):
        tracer = CollectingTracer() if capture_trace else NULL_TRACER
        registry = MetricsRegistry()
        timer = PhaseTimer()
        # The parent's run-health configuration rides along so a
        # --jobs > 1 traced run carries the same invariant_audit/residual
        # events (and the same strict-mode behavior) as a serial one.
        with obs_context.observe(
            tracer=tracer, registry=registry, timer=timer, health=health
        ) as context:
            started = perf_counter()
            result = fn(task)
            if stored is not None:
                # Workers write their own records the moment the task
                # completes: an interrupted parent loses nothing already
                # simulated, and the atomic rename makes concurrent
                # writers of the same key harmless.
                store, key, identity = stored
                store.put(key, identity, result, perf_counter() - started)
                _emit_cache_event(context, "cache_write", key, _fn_path(fn))
        report = timer.report()
        telemetry = TaskTelemetry(
            records=tracer.records if capture_trace else [],
            phases=[(p.phase, p.seconds, p.calls) for p in report.phases],
            metrics=registry.to_dict(),
            chunk_size=len(chunk),
        )
        outcomes.append((result, telemetry))
    return outcomes


# ---------------------------------------------------------------------
# One process pool is reused across run_tasks calls (and therefore
# across the points of a sweep): worker startup re-imports numpy and the
# package, which dominated small sweeps when a fresh pool was created
# per call.  The pool is keyed by worker count and torn down at exit.
_POOL: ProcessPoolExecutor | None = None
_POOL_WORKERS = 0


def _shared_pool(max_workers: int) -> ProcessPoolExecutor:
    global _POOL, _POOL_WORKERS
    if _POOL is not None and _POOL_WORKERS != max_workers:
        _POOL.shutdown(wait=False)
        _POOL = None
    if _POOL is None:
        _POOL = ProcessPoolExecutor(max_workers=max_workers)
        _POOL_WORKERS = max_workers
    return _POOL


def _discard_pool() -> None:
    global _POOL
    if _POOL is not None:
        _POOL.shutdown(wait=False)
        _POOL = None


atexit.register(_discard_pool)


# A worker killed mid-run (OOM, SIGKILL, a chaos test) poisons the whole
# executor: every unfinished future raises BrokenProcessPool.  Because
# tasks are pure functions of their tuples, resubmitting the failed
# chunks on a fresh pool is always safe — results cannot differ, and any
# store records the dead round already wrote are simply rewritten to the
# same keys.  One retry round with a bounded backoff turns a transient
# worker death into a warning instead of a lost sweep; a second failure
# propagates, since it points at something systematic (e.g. the task
# itself crashing the interpreter).  Module-level knobs so tests can
# shrink the delay.
_POOL_ATTEMPTS = 2
_POOL_RETRY_BACKOFF = 0.5
_POOL_RETRY_BACKOFF_CAP = 4.0


def _run_chunks(payloads: Sequence[Any], jobs: int) -> tuple[list[Any], int]:
    """Run chunk payloads on the shared pool, retrying broken-pool losses.

    Returns ``(outcomes, retried)`` where ``outcomes`` is in payload
    order (so downstream merging stays order-deterministic for any
    ``jobs``) and ``retried`` counts chunks that needed resubmission.
    """
    outcomes: list[Any] = [None] * len(payloads)
    pending = list(range(len(payloads)))
    retried = 0
    for attempt in range(_POOL_ATTEMPTS):
        pool = _shared_pool(jobs)
        futures: list[tuple[int, Any]] = []
        failed: list[int] = []
        error: BrokenProcessPool | None = None
        for position, index in enumerate(pending):
            try:
                futures.append((index, pool.submit(_run_captured, payloads[index])))
            except BrokenProcessPool as exc:
                # A worker died while we were still submitting: the
                # executor rejects everything from here on, so the rest
                # of the round goes straight to the retry list.
                failed.extend(pending[position:])
                error = exc
                break
        for index, future in futures:
            try:
                outcomes[index] = future.result()
            except BrokenProcessPool as exc:
                failed.append(index)
                error = exc
        failed.sort()
        if not failed:
            return outcomes, retried
        # The broken executor is unusable from here on; discard it so
        # the retry (and any later run_tasks call) starts healthy.
        _discard_pool()
        if attempt + 1 >= _POOL_ATTEMPTS:
            assert error is not None
            raise error
        retried += len(failed)
        delay = min(
            _POOL_RETRY_BACKOFF * 2.0**attempt, _POOL_RETRY_BACKOFF_CAP
        )
        logger.warning(
            "worker pool broke under %d chunk(s); resubmitting on a "
            "fresh pool in %.1fs",
            len(failed),
            delay,
        )
        sleep(delay)
        pending = failed
    return outcomes, retried


def _fresh_sim_id() -> int:
    # The parent's Simulation counter is the authority for sim ids in
    # shared traces/registries; drawing remapped ids from it keeps
    # parallel runs collision-free with sims the parent creates itself.
    from ..sim.engine import Simulation

    return next(Simulation._instance_ids)


def _remap_sim(value, sim_map: dict) -> int:
    key = int(value)
    if key not in sim_map:
        sim_map[key] = _fresh_sim_id()
    return sim_map[key]


def _fresh_span_id() -> int:
    # Same authority principle as sim ids: span ids in merged records
    # are redrawn from the parent's global span counter so they can
    # never collide with spans the parent's own simulations emit.
    from ..obs.spans import next_span_id

    return next_span_id()


#: Record fields carrying span ids (see repro.obs.spans): the span's
#: own id, its parent, and the two endpoints of a ``span_link``.
_SPAN_FIELDS = ("span", "parent", "src_span", "dst_span")


def _remap_span(value, span_map: dict) -> int:
    key = int(value)
    if key not in span_map:
        span_map[key] = _fresh_span_id()
    return span_map[key]


def merge_telemetry(
    telemetry: TaskTelemetry, context: obs_context.ObsContext
) -> None:
    """Fold one worker's captured telemetry into the ambient context."""
    sim_map: dict[int, int] = {}
    span_map: dict[int, int] = {}
    tracer = context.tracer
    if tracer.enabled:
        for record in telemetry.records:
            fields = {
                k: v for k, v in record.items() if k not in ("event", "t")
            }
            if "sim" in fields:
                fields["sim"] = _remap_sim(fields["sim"], sim_map)
            for name in _SPAN_FIELDS:
                if fields.get(name) is not None:
                    fields[name] = _remap_span(fields[name], span_map)
            tracer.emit(record["event"], record["t"], **fields)
    if context.timer is not None:
        for phase, seconds, calls in telemetry.phases:
            context.timer.add(phase, seconds, calls=calls)
    if context.registry is not None:
        registry = context.registry
        # Surface the worker batching factor so traced sweeps can check
        # that chunking engaged (1 = unbatched/serial-equivalent).
        registry.gauge("worker_chunk_size").set(telemetry.chunk_size)
        for row in telemetry.metrics.get("counters", ()):
            labels = dict(row["labels"])
            if "sim" in labels:
                labels["sim"] = str(_remap_sim(labels["sim"], sim_map))
            registry.counter(row["name"], **labels).inc(row["value"])
        for row in telemetry.metrics.get("gauges", ()):
            labels = dict(row["labels"])
            if "sim" in labels:
                labels["sim"] = str(_remap_sim(labels["sim"], sim_map))
            registry.gauge(row["name"], **labels).set(row["value"])
        for row in telemetry.metrics.get("histograms", ()):
            labels = dict(row["labels"])
            if "sim" in labels:
                labels["sim"] = str(_remap_sim(labels["sim"], sim_map))
            histogram = registry.histogram(
                row["name"], buckets=tuple(row["bounds"]), **labels
            )
            histogram.count += row["count"]
            histogram.sum += row["sum"]
            if row.get("min") is not None:
                histogram.min_value = min(histogram.min_value, row["min"])
            if row.get("max") is not None:
                histogram.max_value = max(histogram.max_value, row["max"])
            for position, count in enumerate(row["bucket_counts"]):
                histogram.bucket_counts[position] += count


def _fingerprint_tasks(
    fn: Callable, task_list: Sequence[Any], store
) -> list[tuple[str, dict] | None]:
    """``(key, identity)`` per task, or ``None`` when uncacheable."""
    keyed: list[tuple[str, dict] | None] = []
    for task in task_list:
        if store is None:
            keyed.append(None)
            continue
        try:
            identity = task_identity(fn, task)
            keyed.append((fingerprint(identity), identity))
        except FingerprintError as error:
            logger.debug(
                "store: task of %s not cacheable (%s)", _fn_path(fn), error
            )
            keyed.append(None)
    return keyed


def run_tasks(
    fn: Callable[[Any], Any],
    tasks: Iterable[Any],
    jobs: int | None = None,
    store=None,
) -> list[Any]:
    """Run ``fn`` over ``tasks``, optionally across worker processes.

    ``fn`` must be a module-level (picklable) function of one task
    argument, and each task must be picklable and carry every input the
    run needs (including its seed).  Results are returned in task
    order.  With ``jobs in (None, 1)`` — or a single task — execution
    is serial and in-process, with telemetry flowing directly into the
    ambient observability context; with ``jobs > 1`` (or ``jobs=0`` for
    one worker per CPU) tasks run in a :class:`ProcessPoolExecutor` and
    captured telemetry is merged back afterwards.

    ``store`` (a :class:`~repro.store.disk.ResultStore`; default: the
    ambient one from :func:`repro.store.use_store`, if any) memoizes
    per-task results by content address: hits skip execution entirely
    and return the stored result, misses execute and write back.  The
    cache is transparent — for any hit/miss mix the returned list is
    equal to an uncached run's, and ``jobs`` still never changes any
    result.
    """
    task_list: Sequence[Any] = list(tasks)
    if store is None:
        store = store_context.current_store()
    context = obs_context.current()
    keyed = _fingerprint_tasks(fn, task_list, store)
    results: list[Any] = [MISS] * len(task_list)
    if store is not None and not store.refresh:
        for index, entry in enumerate(keyed):
            if entry is None:
                continue
            hit = store.get(entry[0])
            if hit is not MISS:
                results[index] = hit
                store.hits += 1
                _emit_cache_event(context, "cache_hit", entry[0], _fn_path(fn))
    pending = [i for i in range(len(task_list)) if results[i] is MISS]
    if store is not None:
        for index in pending:
            if keyed[index] is not None:
                store.misses += 1
                _emit_cache_event(
                    context, "cache_miss", keyed[index][0], _fn_path(fn)
                )
    jobs = resolve_jobs(jobs, len(pending))
    if jobs <= 1:
        for index in pending:
            started = perf_counter()
            result = fn(task_list[index])
            results[index] = result
            entry = keyed[index]
            if store is not None and entry is not None:
                store.put(
                    entry[0], entry[1], result, perf_counter() - started
                )
                store.writes += 1
                _emit_cache_event(
                    context, "cache_write", entry[0], _fn_path(fn)
                )
        return results
    capture_trace = context.tracer.enabled
    chunk_size = task_chunk_size(len(pending), jobs)
    chunks = [
        pending[at : at + chunk_size]
        for at in range(0, len(pending), chunk_size)
    ]
    payloads = [
        (
            fn,
            [task_list[index] for index in chunk],
            capture_trace,
            context.health,
            [
                (store, *keyed[index]) if keyed[index] is not None else None
                for index in chunk
            ],
        )
        for chunk in chunks
    ]
    chunk_outcomes, retried = _run_chunks(payloads, jobs)
    if context.registry is not None:
        # 0 on clean runs; chaos tests and flaky hosts read this to see
        # that the broken-pool recovery path actually engaged.
        context.registry.gauge("worker_retries").set(retried)
    # Chunks preserve pending order, so merging chunk by chunk keeps
    # telemetry in task order exactly as unchunked submission did.
    for chunk, outcomes in zip(chunks, chunk_outcomes):
        for index, (result, telemetry) in zip(chunk, outcomes):
            merge_telemetry(telemetry, context)
            results[index] = result
            if store is not None and keyed[index] is not None:
                store.writes += 1
    return results
