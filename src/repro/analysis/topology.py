"""Structural metrics of a clustered topology.

The paper motivates clustering by the logical hierarchy it creates:
cluster-heads plus gateways form a *backbone* that carries inter-cluster
control traffic, and the flooding reduction equals the fraction of
nodes on that backbone.  This module quantifies the structures the
routing layer relies on — gateway population, backbone connectivity,
cluster diameters, head separation — for use in the scalability
experiments and the test suite's structural assertions.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from ..clustering.base import ClusterState, Role
from ..routing.inter_cluster import is_gateway

__all__ = [
    "gateway_nodes",
    "backbone_nodes",
    "backbone_graph",
    "backbone_reachability",
    "cluster_diameters",
    "head_separations",
    "StructureSummary",
    "summarize_structure",
]


def gateway_nodes(state: ClusterState, adjacency: np.ndarray) -> np.ndarray:
    """Indices of all gateways (members with out-of-cluster neighbors)."""
    adjacency = np.asarray(adjacency, dtype=bool)
    return np.array(
        [
            node
            for node in range(state.n_nodes)
            if is_gateway(state, adjacency, node)
        ],
        dtype=int,
    )


def backbone_nodes(state: ClusterState, adjacency: np.ndarray) -> np.ndarray:
    """Heads plus gateways — the nodes that forward inter-cluster floods."""
    gateways = gateway_nodes(state, adjacency)
    return np.union1d(state.heads(), gateways)


def backbone_graph(state: ClusterState, adjacency: np.ndarray) -> nx.Graph:
    """The subgraph induced by the backbone nodes."""
    adjacency = np.asarray(adjacency, dtype=bool)
    nodes = backbone_nodes(state, adjacency)
    graph = nx.Graph()
    graph.add_nodes_from(int(n) for n in nodes)
    node_set = set(int(n) for n in nodes)
    for u in node_set:
        for v in np.flatnonzero(adjacency[u]):
            v = int(v)
            if v in node_set and u < v:
                graph.add_edge(u, v)
    return graph


def backbone_reachability(
    state: ClusterState, adjacency: np.ndarray, samples: int = 200, rng=None
) -> float:
    """Fraction of connected node pairs also connected via the backbone.

    A pair counts as backbone-connected when a path exists whose
    interior nodes are all heads or gateways (the pair's endpoints may
    be interior members).  This is exactly the reachability of the
    cluster-based flood, so values near 1 certify that restricting
    forwarding to the backbone loses (almost) nothing.
    """
    adjacency = np.asarray(adjacency, dtype=bool)
    full = nx.from_numpy_array(adjacency)
    node_set = set(int(n) for n in backbone_nodes(state, adjacency))
    rng = np.random.default_rng(rng)
    n = state.n_nodes
    connected = reachable = 0
    for _ in range(samples):
        u, v = (int(x) for x in rng.integers(0, n, 2))
        if u == v or not nx.has_path(full, u, v):
            continue
        connected += 1
        allowed = node_set | {u, v}
        sub = full.subgraph(allowed)
        if nx.has_path(sub, u, v):
            reachable += 1
    if connected == 0:
        return float("nan")
    return reachable / connected


def cluster_diameters(state: ClusterState, adjacency: np.ndarray) -> np.ndarray:
    """Hop diameter of each cluster's induced subgraph (head order).

    For a valid one-hop structure every member is adjacent to the head,
    so diameters are at most 2; d-hop schemes produce larger values.
    Disconnected cluster subgraphs (possible for d-hop schemes whose
    members route through other clusters) report ``inf``.
    """
    adjacency = np.asarray(adjacency, dtype=bool)
    graph = nx.from_numpy_array(adjacency)
    diameters = []
    for head in state.heads():
        nodes = [int(x) for x in state.cluster_nodes(int(head))]
        sub = graph.subgraph(nodes)
        if len(nodes) == 1:
            diameters.append(0.0)
        elif nx.is_connected(sub):
            diameters.append(float(nx.diameter(sub)))
        else:
            diameters.append(float("inf"))
    return np.array(diameters)


def head_separations(
    state: ClusterState, positions: np.ndarray, region
) -> np.ndarray:
    """Pairwise distances between cluster-heads under the region metric.

    Property P1 (no two heads adjacent) implies every separation
    exceeds the transmission range in a valid one-hop structure.
    """
    heads = state.heads()
    if len(heads) < 2:
        return np.empty(0)
    head_positions = np.asarray(positions)[heads]
    matrix = region.distance_matrix(head_positions)
    upper = matrix[np.triu_indices(len(heads), k=1)]
    return upper


@dataclass(frozen=True)
class StructureSummary:
    """Aggregate structural metrics of one clustered topology."""

    n_nodes: int
    cluster_count: int
    head_ratio: float
    gateway_ratio: float
    backbone_ratio: float
    backbone_reachability: float
    max_cluster_diameter: float
    min_head_separation: float


def summarize_structure(
    state: ClusterState,
    adjacency: np.ndarray,
    positions: np.ndarray,
    region,
    samples: int = 200,
    rng=None,
) -> StructureSummary:
    """Compute the full structural summary for one snapshot."""
    n = state.n_nodes
    gateways = gateway_nodes(state, adjacency)
    backbone = backbone_nodes(state, adjacency)
    diameters = cluster_diameters(state, adjacency)
    separations = head_separations(state, positions, region)
    return StructureSummary(
        n_nodes=n,
        cluster_count=state.cluster_count(),
        head_ratio=state.head_ratio(),
        gateway_ratio=len(gateways) / n,
        backbone_ratio=len(backbone) / n,
        backbone_reachability=backbone_reachability(
            state, adjacency, samples=samples, rng=rng
        ),
        max_cluster_diameter=float(np.max(diameters)) if len(diameters) else 0.0,
        min_head_separation=(
            float(np.min(separations)) if len(separations) else float("inf")
        ),
    )
