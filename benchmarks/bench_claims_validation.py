"""Claims 1 and 2 — expected degree and link change rates vs simulation."""

from __future__ import annotations


def test_claim1_expected_degree(run_quick):
    table = run_quick("claim1")
    for _r, _analysis, _measured, rel_err in table.rows:
        assert rel_err < 0.12


def test_claim2_link_change_rates(run_quick):
    table = run_quick("claim2")
    for _r, model, _analysis, _measured, rel_err in table.rows:
        assert rel_err < 0.25, model
