"""Figure 1 — control message frequencies vs transmission range.

Regenerates the three curves of the paper's Figure 1 (simulation and
analysis) over an ``r/a`` sweep and asserts the figure's shape claims:
``f_hello`` and ``f_route`` increase with ``r`` while ``f_cluster``
decreases once the network leaves the sparse regime, and the analysis
tracks the simulation.
"""

from __future__ import annotations

from repro.analysis import is_monotonic


def test_fig1_range_sweep(run_quick):
    table = run_quick("fig1")
    r_values = [row[0] for row in table.rows]
    hello_sim = [row[2] for row in table.rows]
    hello_ana = [row[3] for row in table.rows]
    route_sim = [row[6] for row in table.rows]
    route_ana = [row[7] for row in table.rows]

    assert r_values == sorted(r_values)
    # f_hello grows with r, in both simulation and analysis.
    assert is_monotonic(hello_sim, tolerance=0.1)
    assert is_monotonic(hello_ana, tolerance=0.02)
    # f_route grows with r (clusters grow, more intra-cluster churn).
    assert is_monotonic(route_sim, tolerance=0.15)
    assert is_monotonic(route_ana, tolerance=0.05)
    # Hello analysis within a constant factor of simulation everywhere.
    for sim_value, ana_value in zip(hello_sim, hello_ana):
        assert 0.5 * ana_value <= sim_value <= 2.0 * ana_value
