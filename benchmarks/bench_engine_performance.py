"""Kernel micro-benchmarks: simulator step cost and formation cost.

Not a paper artifact — these track the substrate's own performance so
regressions in the hot paths (adjacency recomputation, event diffing,
LID formation) are visible.
"""

from __future__ import annotations

import numpy as np

from repro.clustering import LowestIdClustering
from repro.core.params import NetworkParameters
from repro.mobility import EpochRandomWaypointModel
from repro.sim import Simulation
from repro.spatial import (
    Boundary,
    SquareRegion,
    UniformGridIndex,
    compute_edges,
    diff_edge_sets,
)


def test_simulation_step_cost(benchmark):
    params = NetworkParameters.from_fractions(
        n_nodes=400, range_fraction=0.1, velocity_fraction=0.05
    )
    sim = Simulation(
        params, EpochRandomWaypointModel(params.velocity, 1.0), seed=0
    )
    benchmark(sim.step)


def test_simulation_step_cost_large_grid(benchmark):
    """Edge-set engine at N=2000 — the grid path the cost model picks."""
    params = NetworkParameters.from_fractions(
        n_nodes=2000, range_fraction=0.05, velocity_fraction=0.05
    )
    sim = Simulation(
        params, EpochRandomWaypointModel(params.velocity, 1.0), seed=0
    )
    assert sim.connectivity == "grid"
    benchmark(sim.step)


def test_compute_edges_grid_cost(benchmark):
    region = SquareRegion(1.0, Boundary.TORUS)
    positions = region.uniform_positions(2000, 0)
    edges = benchmark(compute_edges, region, positions, 0.05, method="grid")
    assert len(edges) > 0


def test_diff_edge_sets_cost(benchmark):
    region = SquareRegion(1.0, Boundary.TORUS)
    edges_a = compute_edges(
        region, region.uniform_positions(2000, 0), 0.05, method="grid"
    )
    edges_b = compute_edges(
        region, region.uniform_positions(2000, 1), 0.05, method="grid"
    )
    events = benchmark(diff_edge_sets, edges_a, edges_b)
    assert events.change_count > 0


def test_lid_formation_cost(benchmark):
    region = SquareRegion(1.0, Boundary.OPEN)
    positions = region.uniform_positions(400, 0)
    adjacency = region.adjacency(positions, 0.1)
    algorithm = LowestIdClustering()
    state = benchmark(algorithm.form, adjacency)
    assert state.cluster_count() > 0


def test_grid_index_rebuild_cost(benchmark):
    region = SquareRegion(1.0, Boundary.TORUS)
    positions = region.uniform_positions(2000, 0)
    index = UniformGridIndex(region, 0.05)

    def rebuild_and_pair():
        index.rebuild(positions)
        return index.neighbor_pairs()

    pairs = benchmark(rebuild_and_pair)
    assert len(pairs) > 0


def test_dense_adjacency_cost(benchmark):
    region = SquareRegion(1.0, Boundary.TORUS)
    positions = region.uniform_positions(400, 0)
    result = benchmark(region.adjacency, positions, 0.1)
    assert result.shape == (400, 400)
