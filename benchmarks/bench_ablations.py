"""Ablation benches for the design choices DESIGN.md §6 calls out."""

from __future__ import annotations


def test_ablation_conventions(run_quick):
    """The self-consistent counting must beat the printed glyphs."""
    table = run_quick("ablation-conventions")
    rows = {row[0]: row[1:] for row in table.rows}
    _sim, _cons, _printed, err_cons, err_printed = rows["f_cluster"]
    assert err_cons < err_printed
    _sim, _cons, _printed, err_cons, err_printed = rows["f_route"]
    assert err_cons < err_printed


def test_ablation_route_payload(run_quick):
    """Full-table ROUTE dominates the total, increasingly with r."""
    table = run_quick("ablation-route-payload")
    shares = [row[-1] for row in table.rows]
    assert shares == sorted(shares)
    # At the largest range ROUTE is the single largest component
    # (Section 6: "ROUTE message overhead constitutes the main control
    # overhead").
    last = table.rows[-1]
    o_hello, o_cluster, o_route_full = last[2], last[3], last[5]
    assert o_route_full > o_hello
    assert o_route_full > o_cluster


def test_ablation_boundary(run_quick):
    """The torus (paper) fit is at least as good as reflecting walls."""
    table = run_quick("ablation-boundary")
    errors = {row[0]: row[3] for row in table.rows}
    assert errors["torus"] <= errors["reflect"] * 1.2


def test_ablation_beacon(run_quick):
    """Periodic beacons trade traffic for staleness vs the lower bound."""
    table = run_quick("ablation-beacon")
    event_row = table.rows[0]
    assert event_row[0] == "event"
    assert event_row[3] == 0  # event mode is exact
    periodic = [row for row in table.rows if row[0] == "periodic"]
    intervals = [row[1] for row in periodic]
    staleness = [row[3] for row in periodic]
    rates = [row[2] for row in periodic]
    assert intervals == sorted(intervals)
    # Longer intervals: fewer beacons, more staleness.
    assert rates == sorted(rates, reverse=True)
    assert staleness == sorted(staleness)
