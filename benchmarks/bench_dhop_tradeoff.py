"""d-hop trade-off — fewer clusters vs costlier membership maintenance."""

from __future__ import annotations


def test_dhop_tradeoff(run_quick):
    table = run_quick("dhop")
    ds = [row[0] for row in table.rows]
    clusters = [row[1] for row in table.rows]
    sizes = [row[3] for row in table.rows]

    assert ds == [1, 2, 3]
    # Growing d merges clusters and grows them.
    assert clusters == sorted(clusters, reverse=True)
    assert sizes == sorted(sizes)
    # Maintenance traffic is positive at every d.
    assert all(row[4] > 0.0 for row in table.rows)
