"""Backbone structure — the flooding-reduction substrate, quantified."""

from __future__ import annotations


def test_backbone_structure(run_quick):
    table = run_quick("backbone")
    backbone_ratios = [row[3] for row in table.rows]
    reachabilities = [row[4] for row in table.rows]
    separations = [row[6] for row in table.rows]

    # Restricting forwarding to the backbone loses (almost) nothing.
    assert all(value > 0.9 for value in reachabilities)
    # ...while excluding a meaningful interior population at the sparse
    # end (the flooding saving exists).
    assert backbone_ratios[0] < 0.95
    # P1 guarantee: heads are always out of each other's range.
    assert all(value > 1.0 for value in separations)
    # One-hop diameters never exceed 2.
    assert all(row[5] <= 2.0 for row in table.rows)
