"""Figure 3 — control message frequencies vs network density.

At fixed absolute ``r`` and ``v``, raising the density raises the
degree and therefore ``f_hello`` (Θ(rho)) and ``f_route`` (≈Θ(sqrt rho)
through ``P``), which the bench asserts for both simulation and
analysis curves.
"""

from __future__ import annotations

from repro.analysis import is_monotonic


def test_fig3_density_sweep(run_quick):
    table = run_quick("fig3")
    rho = [row[0] for row in table.rows]
    assert rho == sorted(rho)
    hello_sim = [row[2] for row in table.rows]
    hello_ana = [row[3] for row in table.rows]
    route_sim = [row[6] for row in table.rows]
    assert is_monotonic(hello_sim, tolerance=0.15)
    assert is_monotonic(hello_ana, tolerance=0.02)
    assert is_monotonic(route_sim, tolerance=0.3)
    # Density doubling roughly doubles f_hello (Θ(rho)).
    assert hello_ana[-1] / hello_ana[0] > 0.5 * (rho[-1] / rho[0])
