"""Figure 5 — number of LID clusters vs network size and range.

Asserts the figure's shape claims: the cluster count grows with ``N``
(5a) and falls with ``r`` (5b), for both the simulated formation and
the Eqn (16)/(17) analysis; and that in the small-degree regime the
two are close, while for dense networks the analysis overestimates —
the "slight difference ... cross each other" discrepancy the paper
itself reports.
"""

from __future__ import annotations


def test_fig5a_clusters_vs_n(run_quick):
    table = run_quick("fig5a")
    simulated = [row[2] for row in table.rows]
    analytical = [row[3] for row in table.rows]
    assert simulated == sorted(simulated)
    assert analytical == sorted(analytical)
    # Same order of magnitude throughout the sweep.
    for sim_value, ana_value in zip(simulated, analytical):
        assert 0.25 * ana_value <= sim_value <= 4.0 * ana_value


def test_fig5b_clusters_vs_r(run_quick):
    table = run_quick("fig5b")
    simulated = [row[2] for row in table.rows]
    analytical = [row[3] for row in table.rows]
    assert simulated == sorted(simulated, reverse=True)
    assert analytical == sorted(analytical, reverse=True)
    # Sparse end: close agreement (the paper's accurate regime).
    assert abs(simulated[0] - analytical[0]) / analytical[0] < 0.35
    # Dense end: the analysis overestimates (documented discrepancy).
    assert analytical[-1] >= simulated[-1]
