"""Figure 2 — control message frequencies vs node velocity.

All three frequencies are linear in ``v`` in the analysis; the bench
asserts both simulation and analysis curves grow monotonically with
``v`` and that the measured/predicted ratio stays roughly constant
(linearity of the measured curves).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import is_monotonic


def test_fig2_velocity_sweep(run_quick):
    table = run_quick("fig2")
    for column in (2, 3, 4, 5, 6, 7):  # every sim/ana series
        series = [row[column] for row in table.rows]
        assert is_monotonic(series, tolerance=0.25), f"column {column}"
    # Linearity: measured f_hello / v roughly constant.
    v_values = np.array([row[0] for row in table.rows])
    hello_sim = np.array([row[2] for row in table.rows])
    ratios = hello_sim / v_values
    assert ratios.std() / ratios.mean() < 0.25
