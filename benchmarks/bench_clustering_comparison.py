"""Clustering algorithm comparison — head ratios and maintenance traffic."""

from __future__ import annotations


def test_clustering_comparison(run_quick):
    table = run_quick("clustering")
    rows = {row[0]: row[1:] for row in table.rows}
    assert set(rows) == {
        "lid",
        "hcc",
        "dmac",
        "maxmin(d=2)",
        "lca",
        "mobdhop(d=2)",
    }
    # One-hop algorithms honour P1; mass balance P * mean_size ~ 1 for
    # every algorithm.
    for name in ("lid", "hcc", "dmac"):
        p, clusters, mean_size, p1_ok, f_cluster = rows[name]
        assert p1_ok
        assert p * mean_size == __import__("pytest").approx(1.0, rel=0.05)
        assert f_cluster != "-" and f_cluster > 0.0
    # d-hop schemes produce fewer, larger clusters than LID.
    assert rows["maxmin(d=2)"][1] < rows["lid"][1]
    assert rows["mobdhop(d=2)"][1] < rows["lid"][1]
    # HCC's degree-greedy heads cover at least as well as LID (<= heads).
    assert rows["hcc"][1] <= rows["lid"][1] * 1.2
