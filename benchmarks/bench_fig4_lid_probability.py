"""Figure 4 — the LID head-probability fixpoint and its approximation.

Figure 4(a): ``1-(1-P)^{d+1}`` approaches 1 as the closed neighborhood
grows; Figure 4(b): the ``1/sqrt(d+1)`` approximation converges to the
exact Eqn (16) root.
"""

from __future__ import annotations


def test_fig4a_member_mass(run_quick):
    table = run_quick("fig4a")
    masses = [row[2] for row in table.rows]
    assert masses == sorted(masses)
    assert masses[0] < 0.95
    assert masses[-1] > 0.999


def test_fig4b_approximation(run_quick):
    table = run_quick("fig4b")
    errors = [row[3] for row in table.rows]
    # Monotone convergence of the approximation (paper Fig. 4(b)).
    assert errors == sorted(errors, reverse=True)
    assert errors[-1] < 0.005
    exact = [row[1] for row in table.rows]
    approx = [row[2] for row in table.rows]
    assert all(a >= e for a, e in zip(approx, exact))
