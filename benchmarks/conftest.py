"""Benchmark suite configuration.

Every bench regenerates one paper artifact (a figure's data series or a
prose claim's table) at the ``quick`` scale, times it with
pytest-benchmark, saves the rendered table under
``benchmarks/results/``, and asserts the artifact's headline shape
claim.  Full-scale (`N = 400`) tables are produced by
``repro-manet run all`` and archived in EXPERIMENTS.md.

Each benchmarked experiment additionally runs under an ambient
:class:`~repro.obs.timing.PhaseTimer`, so every simulation it spawns
contributes to a per-phase wall-clock breakdown (mobility, adjacency,
link diff, each protocol hook) saved next to the table as
``results/<id>.timing.txt``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def save_table():
    """Persist a rendered experiment table and echo it to stdout."""

    def _save(name: str, table) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        text = table.render()
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return _save


@pytest.fixture
def run_quick(benchmark, save_table):
    """Benchmark one registered experiment at quick scale and save it."""

    def _run(experiment_id: str):
        from repro.experiments import run_experiment
        from repro.obs import PhaseTimer, observe

        timer = PhaseTimer()

        def _timed() -> object:
            with observe(timer=timer):
                return run_experiment(experiment_id, quick=True)

        table = benchmark.pedantic(_timed, iterations=1, rounds=1)
        save_table(experiment_id, table)
        if timer.phases:
            report = timer.report().render()
            RESULTS_DIR.mkdir(exist_ok=True)
            (RESULTS_DIR / f"{experiment_id}.timing.txt").write_text(
                report + "\n"
            )
            print()
            print(report)
        return table

    return _run
