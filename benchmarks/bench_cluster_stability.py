"""Cluster stability — head tenure and churn across one-hop algorithms."""

from __future__ import annotations


def test_cluster_stability(run_quick):
    table = run_quick("stability")
    rows = {row[0]: row[1:] for row in table.rows}
    assert set(rows) == {
        "lid",
        "hcc (static prio)",
        "hcc (dynamic prio)",
        "dmac",
    }
    for name, (p, head_tenure, affil_tenure, head_rate, affil_rate) in rows.items():
        assert 0.0 < p < 1.0, name
        assert head_tenure > 0.0, name
        # Affiliation changes include every head change's fallout.
        assert affil_rate >= head_rate, name
    # Heads outlive memberships: a head only falls to a merge, while a
    # member re-affiliates on any head-link break.
    for name, values in rows.items():
        assert values[1] >= values[2], name
