"""Mobility-pattern sensitivity — the paper's §7 future-work study.

Asserts the experiment's headline findings: isotropic uncorrelated
models track the BCV analysis; group mobility collapses the CLUSTER
maintenance rate the analysis predicts.
"""

from __future__ import annotations


def test_mobility_sensitivity(run_quick):
    table = run_quick("mobility")
    rows = {row[0]: row[1:] for row in table.rows}

    # Isotropic uncorrelated models track the BCV analysis closely.
    for name in ("cv", "epoch-rwp", "walk", "direction", "gauss-markov"):
        ratio = rows[name][1]
        assert 0.8 < ratio < 1.5, name

    # Group mobility collapses the CLUSTER rate relative to CV: whole
    # groups move together, so members rarely lose their heads.
    assert rows["rpgm"][2] < 0.6 * rows["cv"][2]
    # ...and produces far fewer cluster-heads than the isotropic models.
    assert rows["rpgm"][4] < 0.7 * rows["cv"][4]

    # Street-bound (collinear) motion generates fewer link events.
    assert rows["manhattan"][0] < rows["cv"][0]
