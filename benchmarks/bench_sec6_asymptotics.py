"""Section 6 — the Θ-notation table, measured from the closed forms."""

from __future__ import annotations

import pytest


def test_sec6_exponents(run_quick):
    table = run_quick("sec6")
    for quantity, parameter, claimed, measured, r_squared in table.rows:
        assert measured == pytest.approx(claimed, abs=0.15), (
            quantity,
            parameter,
        )
