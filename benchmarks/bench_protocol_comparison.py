"""Protocol comparison — clustered hybrid vs flat DSDV/AODV.

The introduction's motivating claim: the clustered hybrid stack incurs
less control overhead than flat proactive routing, and the gap grows
with network size.  The bench regenerates the comparison table and
asserts that ordering.
"""

from __future__ import annotations

from collections import defaultdict


def test_protocol_comparison(run_quick):
    table = run_quick("protocols")
    by_size: dict[int, dict[str, tuple]] = defaultdict(dict)
    for n, stack, overhead, messages, delivery in table.rows:
        by_size[int(n)][stack] = (overhead, messages, delivery)

    sizes = sorted(by_size)
    for n in sizes:
        rows = by_size[n]
        # Hybrid cheaper than flat proactive at every size.
        assert rows["hybrid"][0] < rows["dsdv"][0], f"N={n}"
        # On-demand stacks compute routes at request time and deliver
        # nearly everything; DSDV answers from possibly-lagging tables
        # under churn, so its bar is lower (delivery is judged at the
        # instant of the request, with no retry or buffering).
        assert rows["hybrid"][2] > 0.8, n
        assert rows["aodv"][2] > 0.8, n
        assert rows["dsdv"][2] > 0.35, n

    # The hybrid/DSDV overhead ratio improves (or holds) as N grows.
    first = by_size[sizes[0]]
    last = by_size[sizes[-1]]
    ratio_small = first["hybrid"][0] / first["dsdv"][0]
    ratio_large = last["hybrid"][0] / last["dsdv"][0]
    assert ratio_large <= ratio_small * 1.25
