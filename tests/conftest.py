"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import MessageSizes, NetworkParameters
from repro.spatial import Boundary, SquareRegion


@pytest.fixture
def params() -> NetworkParameters:
    """A mid-sized parameter point used across unit tests."""
    return NetworkParameters.from_fractions(
        n_nodes=100, range_fraction=0.15, velocity_fraction=0.05
    )


@pytest.fixture
def unit_torus() -> SquareRegion:
    """Unit square with wrap-around (the paper's simulation region)."""
    return SquareRegion(1.0, Boundary.TORUS)


@pytest.fixture
def unit_open() -> SquareRegion:
    """Unit square without wrapping (static-placement analyses)."""
    return SquareRegion(1.0, Boundary.OPEN)


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests that need randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_adjacency() -> np.ndarray:
    """A hand-checkable 6-node topology.

    Path 0-1-2 plus a triangle 3-4-5, with a bridge 2-3::

        0 - 1 - 2 - 3 - 4
                     \\ / |
                      5--+
    """
    n = 6
    adj = np.zeros((n, n), dtype=bool)
    for u, v in [(0, 1), (1, 2), (2, 3), (3, 4), (3, 5), (4, 5)]:
        adj[u, v] = adj[v, u] = True
    return adj
