"""Tests for the capacity/budget module (Gupta–Kumar motivation)."""

from __future__ import annotations

import math

import pytest

from repro.core.capacity import (
    control_overhead_fraction,
    per_node_capacity,
    saturation_network_size,
)
from repro.core.params import NetworkParameters


class TestPerNodeCapacity:
    def test_scaling_law(self):
        assert per_node_capacity(100, 1e6) == pytest.approx(
            1e6 / math.sqrt(100 * math.log(100))
        )

    def test_decreasing_in_n(self):
        values = [per_node_capacity(n, 1e6) for n in (10, 100, 1000, 10000)]
        assert values == sorted(values, reverse=True)

    def test_linear_in_bandwidth(self):
        assert per_node_capacity(50, 2e6) == pytest.approx(
            2 * per_node_capacity(50, 1e6)
        )

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            per_node_capacity(1, 1e6)
        with pytest.raises(ValueError):
            per_node_capacity(10, 0.0)
        with pytest.raises(ValueError):
            per_node_capacity(10, 1e6, constant=0.0)


class TestOverheadFraction:
    def test_defaults_to_lid_probability(self, params):
        explicit = control_overhead_fraction(params, 1e6, head_probability=None)
        from repro.core.lid_analysis import lid_head_probability

        p_head = float(
            lid_head_probability(params.n_nodes, params.density, params.tx_range)
        )
        manual = control_overhead_fraction(
            params, 1e6, head_probability=p_head
        )
        assert explicit == pytest.approx(manual)

    def test_decreasing_in_bandwidth(self, params):
        narrow = control_overhead_fraction(params, 1e5)
        wide = control_overhead_fraction(params, 1e7)
        assert wide == pytest.approx(narrow / 100.0)

    def test_grows_with_network_size_at_fixed_density(self, params):
        small = control_overhead_fraction(params, 1e6)
        big = control_overhead_fraction(params.with_(n_nodes=1000), 1e6)
        assert big > small


class TestSaturation:
    def test_saturation_point_exists_and_is_consistent(self):
        base = NetworkParameters(
            n_nodes=100, density=100.0, tx_range=0.15, velocity=0.05
        )
        bandwidth = 2e5
        n_star = saturation_network_size(base, bandwidth, max_nodes=10**7)
        assert n_star is not None
        below = control_overhead_fraction(base.with_(n_nodes=n_star - 1), bandwidth)
        at = control_overhead_fraction(base.with_(n_nodes=n_star), bandwidth)
        assert below < 1.0 <= at

    def test_none_when_budget_huge(self):
        base = NetworkParameters(
            n_nodes=100, density=100.0, tx_range=0.15, velocity=0.05
        )
        assert (
            saturation_network_size(base, 1e15, max_nodes=10_000) is None
        )

    def test_immediate_saturation(self):
        base = NetworkParameters(
            n_nodes=100, density=100.0, tx_range=0.15, velocity=0.05
        )
        assert saturation_network_size(base, 1e-6) == 100
