"""Tests for the overhead-attribution ledger and OpenMetrics export.

The contract under test: every control message a run records is tagged
with a root cause, and the resulting per-cause / per-node / per-cluster
ledgers reconcile with the run's ``MessageStats`` totals *exactly* —
the attribution analogue of the ``msg_tx`` reconciliation loop.  On
top of that: ``jobs=1`` and ``jobs=2`` runs must produce identical
attribution output after sim-id normalization, and the OpenMetrics
export (live registry or rebuilt from a trace) must carry the same
totals as ``trace-summary``.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.sweep import measure_point
from repro.core.params import NetworkParameters
from repro.mobility import EpochRandomWaypointModel
from repro.obs import (
    AuditError,
    CollectingTracer,
    MetricsRegistry,
    OverheadLedger,
    TRACE_SCHEMA_VERSION,
    attach_attribution,
    observe,
    registry_from_trace,
    render_openmetrics,
    summarize_trace,
)
from repro.obs.attribution import CAUSE_UNATTRIBUTED, attributed
from repro.scenario import ScenarioConfig, run_scenario
from repro.sim import HelloProtocol, Simulation


def _tiny_params(n_nodes: int = 30) -> NetworkParameters:
    return NetworkParameters.from_fractions(
        n_nodes=n_nodes, range_fraction=0.2, velocity_fraction=0.05
    )


def _small_sim(seed: int = 0) -> Simulation:
    params = _tiny_params()
    sim = Simulation(
        params, EpochRandomWaypointModel(params.velocity), seed=seed
    )
    sim.attach(HelloProtocol(mode="event"))
    # The accounting hook only fires inside the measurement window.
    sim.stats.start_measuring()
    return sim


def _scenario(**overrides) -> ScenarioConfig:
    config = {
        "name": "attr-test",
        "n_nodes": 50,
        "range_fraction": 0.2,
        "velocity_fraction": 0.06,
        "duration": 4.0,
        "warmup": 1.0,
        "seed": 1,
    }
    config.update(overrides)
    return ScenarioConfig(**config)


def _traced_scenario(**overrides) -> CollectingTracer:
    tracer = CollectingTracer()
    with observe(tracer=tracer):
        run_scenario(_scenario(**overrides))
    return tracer


@pytest.fixture(scope="module")
def hybrid_tracer() -> CollectingTracer:
    return _traced_scenario()


class TestLedgerReconciliation:
    def test_one_reconciled_event_per_run(self, hybrid_tracer):
        events = hybrid_tracer.of("attribution")
        assert len(events) == 1
        assert events[0]["reconciled"] is True

    def test_totals_match_msg_tx_per_category(self, hybrid_tracer):
        streamed: dict[str, int] = {}
        bits: dict[str, float] = {}
        for record in hybrid_tracer.of("msg_tx"):
            category = record["category"]
            streamed[category] = streamed.get(category, 0) + int(
                record["messages"]
            )
            bits[category] = bits.get(category, 0.0) + float(record["bits"])
        totals = hybrid_tracer.of("attribution")[0]["totals"]
        assert {c: t["messages"] for c, t in totals.items()} == streamed
        for category, tally in totals.items():
            assert tally["bits"] == pytest.approx(bits[category])

    def test_cause_sums_match_category_totals(self, hybrid_tracer):
        event = hybrid_tracer.of("attribution")[0]
        for category, breakdown in event["causes"].items():
            assert sum(t["messages"] for t in breakdown.values()) == (
                event["totals"][category]["messages"]
            )

    def test_node_cluster_heatmap_sums_agree(self, hybrid_tracer):
        event = hybrid_tracer.of("attribution")[0]
        total = sum(t["messages"] for t in event["totals"].values())
        assert sum(
            t["messages"] for t in event["nodes"].values()
        ) == pytest.approx(total)
        assert sum(
            t["messages"] for t in event["clusters"].values()
        ) == pytest.approx(total)
        assert sum(
            sum(row) for row in event["heatmap"]["messages"]
        ) == pytest.approx(total)

    def test_every_hybrid_message_has_a_cause(self, hybrid_tracer):
        event = hybrid_tracer.of("attribution")[0]
        for breakdown in event["causes"].values():
            assert CAUSE_UNATTRIBUTED not in breakdown

    def test_cells_reproduce_cause_totals(self, hybrid_tracer):
        event = hybrid_tracer.of("attribution")[0]
        from_cells: dict[tuple[str, str], float] = {}
        for category, cause, _cluster, messages, _bits in event["cells"]:
            key = (category, cause)
            from_cells[key] = from_cells.get(key, 0) + messages
        for category, breakdown in event["causes"].items():
            for cause, tally in breakdown.items():
                assert from_cells[(category, cause)] == pytest.approx(
                    tally["messages"]
                )

    def test_dsdv_periodic_and_triggered_causes(self):
        tracer = _traced_scenario(routing="dsdv", duration=3.0)
        causes = tracer.of("attribution")[0]["causes"]
        assert "dsdv-periodic" in causes.get("dsdv", {})


class TestLedgerScopes:
    def test_no_ledger_means_noop_scope(self):
        class Bare:
            attribution = None

        with attributed(Bare(), "periodic-hello", node=3):
            pass  # must not raise nor allocate ledger state

    def test_unattributed_fallback(self):
        sim = _small_sim()
        ledger = OverheadLedger()
        sim.attach(ledger)
        sim.stats.record("route", 3, 120.0)
        assert ledger.by_cause[("route", CAUSE_UNATTRIBUTED)].messages == 3
        assert ledger.reconcile() == []

    def test_scopes_nest_and_restore(self):
        sim = _small_sim()
        ledger = OverheadLedger()
        sim.attach(ledger)
        with attributed(sim, "outer-cause", node=1):
            with attributed(sim, "inner-cause", node=2):
                sim.stats.record("hello", 1, 10.0)
            sim.stats.record("hello", 1, 10.0)
        sim.stats.record("hello", 1, 10.0)
        assert ledger.by_cause[("hello", "inner-cause")].messages == 1
        assert ledger.by_cause[("hello", "outer-cause")].messages == 1
        assert ledger.by_cause[("hello", CAUSE_UNATTRIBUTED)].messages == 1
        assert ledger.by_node[1].messages == 1
        assert ledger.by_node[2].messages == 1

    def test_strict_mismatch_raises_audit_error(self):
        sim = _small_sim()
        ledger = OverheadLedger(strict=True)
        sim.attach(ledger)
        for _ in range(10):
            sim.step()
        assert ledger.reconcile() == []
        # Tamper with the ledger to simulate a send site that bypassed
        # the accounting hook: strict mode must fail the run.
        category = next(iter(ledger.totals))
        ledger.totals[category].messages += 1
        with pytest.raises(AuditError):
            sim.notify_run_end()

    def test_attach_is_noop_without_telemetry(self):
        sim = _small_sim()
        assert attach_attribution(sim) is None
        assert sim.attribution is None

    def test_attach_with_registry_only(self):
        registry = MetricsRegistry()
        with observe(registry=registry):
            sim = _small_sim()
            ledger = attach_attribution(sim)
            assert ledger is not None
            for _ in range(5):
                sim.step()
        total = sum(
            c.value
            for c in registry.collect()
            if c.name == "overhead_messages_total"
        )
        streamed = sum(t.messages for t in sim.stats.totals.values())
        assert total == pytest.approx(streamed)


class TestJobsDeterminism:
    def _attribution_events(self, jobs: int) -> list[str]:
        tracer = CollectingTracer()
        with observe(tracer=tracer):
            measure_point(
                _tiny_params(40), 0.15, seeds=2, duration=1.0, warmup=0.2,
                jobs=jobs,
            )
        events = tracer.of("attribution")
        # Sim ids differ run to run (global counter); normalize them by
        # order of appearance, then canonicalize to JSON for a bytewise
        # comparison of the full attribution tables.
        sim_order = {e["sim"]: i for i, e in enumerate(events)}
        canonical = []
        for event in events:
            fields = {
                k: v for k, v in event.items() if k not in ("sim", "schema")
            }
            fields["sim"] = sim_order[event["sim"]]
            canonical.append(json.dumps(fields, sort_keys=True))
        return sorted(canonical)

    def test_jobs2_attribution_tables_identical_to_serial(self):
        serial = self._attribution_events(jobs=1)
        parallel = self._attribution_events(jobs=2)
        assert serial, "no attribution events were traced at all"
        assert serial == parallel

    def _overhead_counters(self, jobs: int) -> dict:
        registry = MetricsRegistry()
        with observe(registry=registry):
            measure_point(
                _tiny_params(40), 0.15, seeds=2, duration=1.0, warmup=0.2,
                jobs=jobs,
            )
        folded: dict[tuple, float] = {}
        for counter in registry.collect():
            if not counter.name.startswith("overhead_"):
                continue
            labels = tuple(
                sorted(
                    (k, v) for k, v in counter.labels.items() if k != "sim"
                )
            )
            key = (counter.name, labels)
            folded[key] = folded.get(key, 0.0) + counter.value
        return folded

    def test_jobs2_overhead_counters_identical_to_serial(self):
        serial = self._overhead_counters(jobs=1)
        parallel = self._overhead_counters(jobs=2)
        assert serial, "no overhead counters were recorded at all"
        assert serial == parallel


def _fixture_trace(tmp_path, tampered: bool = False, hello_scale: int = 1):
    """A hand-built two-category trace with a matching ledger event.

    ``tampered`` makes the ledger claim one more HELLO than the
    ``msg_tx`` stream carries (a broken-accounting fixture);
    ``hello_scale`` scales the HELLO traffic consistently in *both* the
    stream and the ledger (a healthy trace with a different rate, for
    compare tests).
    """
    hello = 3 * hello_scale
    causes = {
        "cluster": {"reaffiliation": {"messages": 2, "bits": 256.0}},
        "hello": {
            "periodic-hello": {"messages": hello, "bits": 100.0 * hello}
        },
    }
    totals = {
        "cluster": {"messages": 2, "bits": 256.0},
        "hello": {"messages": hello, "bits": 100.0 * hello},
    }
    if tampered:
        causes["hello"]["periodic-hello"]["messages"] = hello + 1
        totals["hello"]["messages"] = hello + 1
    records = [
        {"event": "run_begin", "t": 0.0, "sim": 0, "n_nodes": 4,
         "duration": 1.0, "warmup": 0.0},
        {"event": "msg_tx", "t": 0.2, "sim": 0, "category": "hello",
         "messages": hello - 1, "bits": 100.0 * (hello - 1)},
        {"event": "msg_tx", "t": 0.4, "sim": 0, "category": "hello",
         "messages": 1, "bits": 100.0},
        {"event": "msg_tx", "t": 0.5, "sim": 0, "category": "cluster",
         "messages": 2, "bits": 256.0},
        {"event": "attribution", "t": 1.0, "sim": 0,
         "causes": causes,
         "nodes": {"0": {"messages": hello, "bits": 100.0 * hello},
                   "1": {"messages": 2, "bits": 256.0}},
         "clusters": {"0": {"messages": hello + 2,
                            "bits": 100.0 * hello + 256.0}},
         "cells": [["cluster", "reaffiliation", 0,
                    causes["cluster"]["reaffiliation"]["messages"], 256.0],
                   ["hello", "periodic-hello", 0,
                    causes["hello"]["periodic-hello"]["messages"],
                    100.0 * hello]],
         "heatmap": {"bins": 2, "side": 1.0,
                     "messages": [[hello, 0], [0, 2]]},
         "totals": totals, "reconciled": not tampered},
        {"event": "run_end", "t": 1.0, "sim": 0, "measured_time": 1.0,
         "totals": {"cluster": {"messages": 2, "bits": 256.0},
                    "hello": {"messages": hello,
                              "bits": 100.0 * hello}}},
    ]
    path = tmp_path / ("tampered.jsonl" if tampered else "fixture.jsonl")
    path.write_text(
        "".join(
            json.dumps({"schema": TRACE_SCHEMA_VERSION, **record}) + "\n"
            for record in records
        )
    )
    return path


class TestTraceFixture:
    def test_openmetrics_totals_match_msg_tx_counts(self, tmp_path):
        path = _fixture_trace(tmp_path)
        registry = registry_from_trace(path)
        per_category: dict[str, float] = {}
        for counter in registry.collect():
            if counter.name != "overhead_messages_total":
                continue
            protocol = counter.labels["protocol"]
            per_category[protocol] = (
                per_category.get(protocol, 0.0) + counter.value
            )
        summary = summarize_trace(path)
        assert per_category == {
            category: float(count)
            for category, count in summary.messages.items()
        }

    def test_report_flags_ledger_stream_divergence(self, tmp_path):
        from repro.obs.report import analyze_trace

        clean = analyze_trace(_fixture_trace(tmp_path))
        assert clean.attribution_mismatches() == []
        tampered = analyze_trace(_fixture_trace(tmp_path, tampered=True))
        problems = tampered.attribution_mismatches()
        assert problems, "tampered ledger must fail attribution check"
        assert any("hello" in p for p in problems)

    def test_compare_decomposes_delta_by_cause(self, tmp_path):
        from repro.obs.compare import compare_traces

        a = _fixture_trace(tmp_path)
        b_dir = tmp_path / "b"
        b_dir.mkdir()
        b = _fixture_trace(b_dir, hello_scale=2)
        comparison = compare_traces(a, b, threshold=0.10)
        lines = comparison.attributions()
        assert any(
            "hello" in line and "by cause" in line
            and "periodic-hello +100.0%" in line
            for line in lines
        )


class TestOpenMetricsFormat:
    def test_counter_family_strips_total_suffix(self):
        registry = MetricsRegistry()
        registry.counter("messages_total", category="hello").inc(5)
        text = render_openmetrics(registry)
        assert "# TYPE messages counter" in text
        assert '# HELP messages ' in text
        assert 'messages_total{category="hello"} 5' in text
        assert text.endswith("# EOF\n")

    def test_gauge_and_histogram_samples(self):
        registry = MetricsRegistry()
        registry.gauge("measured_time", sim="0").set(2.5)
        histogram = registry.histogram("latency", buckets=(1.0, 2.0))
        histogram.observe(0.5)
        histogram.observe(1.5)
        histogram.observe(9.0)
        text = render_openmetrics(registry)
        assert 'measured_time{sim="0"} 2.5' in text
        assert '# TYPE latency histogram' in text
        assert 'latency_bucket{le="1"} 1' in text
        assert 'latency_bucket{le="2"} 2' in text
        assert 'latency_bucket{le="+Inf"} 3' in text
        assert "latency_count 3" in text
        assert "latency_sum 11" in text

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("odd_total", label='a"b\\c\nd').inc()
        text = render_openmetrics(registry)
        assert 'odd_total{label="a\\"b\\\\c\\nd"} 1' in text

    def test_samples_sorted_within_family(self):
        registry = MetricsRegistry()
        registry.counter("messages_total", category="route").inc(1)
        registry.counter("messages_total", category="cluster").inc(2)
        text = render_openmetrics(registry)
        lines = [
            line for line in text.splitlines()
            if line.startswith("messages_total")
        ]
        assert lines == sorted(lines)
