"""Tests for the flat DSDV baseline."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.core.params import NetworkParameters
from repro.mobility import EpochRandomWaypointModel
from repro.routing import DsdvProtocol
from repro.sim import Simulation


def _sim(n=60, vf=0.0, seed=41, interval=1.0):
    params = NetworkParameters.from_fractions(
        n_nodes=n, range_fraction=0.25, velocity_fraction=vf
    )
    sim = Simulation(
        params, EpochRandomWaypointModel(params.velocity, 1.0), seed=seed
    )
    dsdv = sim.attach(DsdvProtocol(periodic_interval=interval))
    return sim, dsdv


class TestConstruction:
    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            DsdvProtocol(periodic_interval=0.0)

    def test_initial_convergence_is_free(self):
        sim, dsdv = _sim()
        # on_attach converged tables without recording traffic.
        assert sim.stats.message_count("dsdv") == 0


class TestConvergence:
    def test_tables_match_shortest_paths_static(self):
        sim, dsdv = _sim()
        graph = nx.from_numpy_array(sim.adjacency)
        lengths = dict(nx.all_pairs_shortest_path_length(graph))
        for source in range(0, sim.n_nodes, 7):
            for destination in range(0, sim.n_nodes, 11):
                if source == destination:
                    continue
                entry = dsdv.tables[source].get(destination)
                if destination in lengths.get(source, {}):
                    assert entry is not None and entry.reachable
                    assert entry.metric == lengths[source][destination]
                else:
                    assert entry is None or not entry.reachable

    def test_path_following_delivers(self):
        sim, dsdv = _sim(seed=42)
        graph = nx.from_numpy_array(sim.adjacency)
        for source, destination in [(0, 30), (5, 55), (12, 48)]:
            if nx.has_path(graph, source, destination):
                path = dsdv.path(sim, source, destination)
                assert path is not None
                assert path[0] == source and path[-1] == destination
                assert len(path) - 1 == nx.shortest_path_length(
                    graph, source, destination
                )

    def test_self_route(self):
        sim, dsdv = _sim()
        assert dsdv.path(sim, 3, 3) == [3]
        assert dsdv.next_hop(3, 3) == 3


class TestPeriodicTraffic:
    def test_broadcast_rate_matches_interval(self):
        sim, dsdv = _sim(vf=0.0, interval=0.5)
        sim.stats.start_measuring()
        duration = 4.0
        for _ in range(int(round(duration / sim.dt))):
            sim.step()
        rate = sim.stats.per_node_frequency("dsdv")
        assert rate == pytest.approx(2.0, rel=0.15)

    def test_update_bits_scale_with_table_size(self):
        sim, dsdv = _sim(vf=0.0)
        sim.stats.start_measuring()
        for _ in range(int(round(1.5 / sim.dt))):
            sim.step()
        messages = sim.stats.message_count("dsdv")
        bits = sim.stats.bit_count("dsdv")
        # Connected-ish network: each dump carries ~N entries.
        mean_entries = bits / (messages * sim.params.messages.p_route)
        assert mean_entries > sim.n_nodes * 0.5


class TestLinkBreakHandling:
    def test_break_marks_routes_infinite(self):
        sim, dsdv = _sim(seed=43)
        # Break one link and deliver the event directly.
        rows, cols = np.nonzero(np.triu(sim.adjacency, 1))
        u, v = int(rows[0]), int(cols[0])
        sim.adjacency[u, v] = sim.adjacency[v, u] = False
        dsdv.on_link_down(sim, u, v, 0.0)
        # Every route of u through v is now infinite with an odd seqno.
        for destination, entry in dsdv.tables[u].items():
            if entry.next_hop == v and destination != u:
                assert not entry.reachable
                assert entry.sequence % 2 == 1

    @pytest.mark.parametrize("seed", [44, 46])
    def test_reconvergence_after_churn(self, seed):
        """Churn the topology, freeze it, and require full reconvergence.

        The mobile phase scrambles routes; the static tail (several
        periodic intervals long) must let DSDV's sequence numbers
        repair every reachable pair.
        """
        from repro.mobility import TraceRecorder, TraceReplayModel

        params = NetworkParameters.from_fractions(
            n_nodes=60, range_fraction=0.25, velocity_fraction=0.03
        )
        recorder = TraceRecorder(EpochRandomWaypointModel(params.velocity, 1.0))
        scratch = Simulation(params, recorder, seed=seed)
        for _ in range(int(round(4.0 / scratch.dt))):
            scratch.step()
        # Static tail: hold the final frame for 6 more seconds.
        recorder.trace.append(scratch.time + 6.0, recorder.trace.frames[-1])

        sim = Simulation(
            params, TraceReplayModel(recorder.trace), dt=scratch.dt, seed=0
        )
        dsdv = sim.attach(DsdvProtocol(periodic_interval=1.0))
        for _ in range(int(round(10.0 / sim.dt))):
            sim.step()
        graph = nx.from_numpy_array(sim.adjacency)
        checked = passed = 0
        for source in range(0, sim.n_nodes, 7):
            for destination in range(0, sim.n_nodes, 11):
                if source == destination:
                    continue
                if not nx.has_path(graph, source, destination):
                    continue
                checked += 1
                if dsdv.path(sim, source, destination) is not None:
                    passed += 1
        assert checked > 0
        assert passed == checked

    def test_sequence_numbers_monotone(self):
        sim, dsdv = _sim(vf=0.05, seed=45)
        seen = {node: 0 for node in range(sim.n_nodes)}
        for _ in range(40):
            sim.step()
            for node in range(sim.n_nodes):
                own = dsdv.tables[node][node]
                assert own.sequence >= seen[node]
                assert own.sequence % 2 == 0  # own entries always even
                seen[node] = own.sequence

    def test_sequence_provenance_invariant(self):
        """No node may hold a sequence for destination d newer than
        d's own sequence plus one (the break-marker increment) — DSDV
        sequence numbers originate at the destination only."""
        sim, dsdv = _sim(vf=0.06, seed=46)
        for _ in range(60):
            sim.step()
            own = dsdv._own_sequence
            for node in range(0, sim.n_nodes, 7):
                seqs = dsdv._sequence[node]
                assert np.all(seqs <= own + 1)

    def test_own_entry_never_corrupted(self):
        sim, dsdv = _sim(vf=0.08, seed=47)
        for _ in range(60):
            sim.step()
            for node in range(0, sim.n_nodes, 11):
                own = dsdv.tables[node][node]
                assert own.metric == 0.0
                assert own.next_hop == node
                assert own.reachable
