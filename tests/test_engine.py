"""Tests for the simulation kernel (repro.sim.engine)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import NetworkParameters
from repro.mobility import ConstantVelocityModel, EpochRandomWaypointModel
from repro.sim import Protocol, Simulation, recommended_step
from repro.spatial import Boundary


class RecordingProtocol(Protocol):
    """Captures every hook invocation for ordering assertions."""

    def __init__(self, name: str = "recording"):
        self.name = name
        self.events = []
        self.attached_to = None

    def on_attach(self, sim):
        self.attached_to = sim

    def on_step_begin(self, sim, time):
        self.events.append(("begin", time))

    def on_link_up(self, sim, u, v, time):
        self.events.append(("up", u, v, time))

    def on_link_down(self, sim, u, v, time):
        self.events.append(("down", u, v, time))

    def on_step_end(self, sim, time):
        self.events.append(("end", time))


@pytest.fixture
def sim(params) -> Simulation:
    return Simulation(
        params, EpochRandomWaypointModel(params.velocity, 1.0), seed=3
    )


class TestRecommendedStep:
    def test_scales_with_range_over_speed(self):
        assert recommended_step(0.2, 0.1) == pytest.approx(
            2 * recommended_step(0.1, 0.1)
        )

    def test_static_default(self):
        assert recommended_step(0.1, 0.0) == 0.1

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            recommended_step(0.0, 1.0)


class TestConstruction:
    def test_initial_adjacency_matches_positions(self, sim, params):
        expected = sim.region.adjacency(sim.positions, params.tx_range)
        np.testing.assert_array_equal(sim.adjacency, expected)

    def test_region_side_from_params(self, sim, params):
        assert sim.region.side == pytest.approx(params.side)
        assert sim.region.boundary is Boundary.TORUS

    def test_rejects_bad_dt(self, params):
        with pytest.raises(ValueError):
            Simulation(
                params, ConstantVelocityModel(params.velocity), dt=0.0, seed=0
            )

    def test_deterministic_given_seed(self, params):
        counts = []
        for _ in range(2):
            sim = Simulation(
                params, EpochRandomWaypointModel(params.velocity, 1.0), seed=5
            )
            events = 0
            for _ in range(20):
                events += sim.step().change_count
            counts.append(events)
        assert counts[0] == counts[1]


class TestTopologyAccessors:
    def test_neighbors_of(self, sim):
        for node in (0, 17, 50):
            np.testing.assert_array_equal(
                sim.neighbors_of(node), np.flatnonzero(sim.adjacency[node])
            )

    def test_degree_of(self, sim):
        assert sim.degree_of(3) == int(sim.adjacency[3].sum())

    def test_has_link_symmetric(self, sim):
        u = 0
        neighbors = sim.neighbors_of(u)
        if len(neighbors):
            v = int(neighbors[0])
            assert sim.has_link(u, v) and sim.has_link(v, u)


class TestStepDelivery:
    def test_hook_ordering(self, params):
        sim = Simulation(
            params, EpochRandomWaypointModel(params.velocity, 1.0), seed=1
        )
        protocol = sim.attach(RecordingProtocol())
        assert protocol.attached_to is sim
        sim.step()
        kinds = [event[0] for event in protocol.events]
        assert kinds[0] == "begin"
        assert kinds[-1] == "end"
        middle = kinds[1:-1]
        # Downs are delivered before ups within a step.
        if "up" in middle and "down" in middle:
            assert middle.index("down") < middle.index("up")

    def test_events_match_adjacency_diff(self, params):
        sim = Simulation(
            params, EpochRandomWaypointModel(params.velocity, 1.0), seed=2
        )
        before = sim.adjacency.copy()
        events = sim.step()
        after = sim.adjacency
        for u, v in events.generated:
            assert not before[u, v] and after[u, v]
        for u, v in events.broken:
            assert before[u, v] and not after[u, v]

    def test_time_advances_by_dt(self, sim):
        dt = sim.dt
        sim.step()
        sim.step()
        assert sim.time == pytest.approx(2 * dt)

    def test_multiple_protocols_all_notified(self, params):
        sim = Simulation(
            params, EpochRandomWaypointModel(params.velocity, 1.0), seed=4
        )
        a = sim.attach(RecordingProtocol("first"))
        b = sim.attach(RecordingProtocol("second"))
        sim.step()
        assert [e for e in a.events] == [e for e in b.events]
        assert sim.protocols == (a, b)

    def test_duplicate_protocol_name_rejected(self, params):
        sim = Simulation(
            params, EpochRandomWaypointModel(params.velocity, 1.0), seed=4
        )
        sim.attach(RecordingProtocol("twin"))
        with pytest.raises(ValueError, match="twin"):
            sim.attach(RecordingProtocol("twin"))


class TestRun:
    def test_warmup_excluded_from_stats(self, params):
        sim = Simulation(
            params, EpochRandomWaypointModel(params.velocity, 1.0), seed=6
        )
        stats = sim.run(duration=1.0, warmup=0.5)
        assert stats.measured_time == pytest.approx(
            sim.dt * max(1, round(1.0 / sim.dt)), rel=0.01
        )

    def test_invalid_durations(self, sim):
        with pytest.raises(ValueError):
            sim.run(duration=0.0)
        with pytest.raises(ValueError):
            sim.run(duration=1.0, warmup=-1.0)

    def test_grid_index_used_for_large_sparse(self):
        params = NetworkParameters.from_fractions(
            n_nodes=500, range_fraction=0.05, velocity_fraction=0.02
        )
        sim = Simulation(
            params,
            EpochRandomWaypointModel(params.velocity, 1.0),
            seed=7,
            connectivity="grid",
        )
        assert sim._index is not None
        expected = sim.region.adjacency(sim.positions, params.tx_range)
        np.testing.assert_array_equal(sim.adjacency, expected)
        sim.step()
        expected = sim.region.adjacency(sim.positions, params.tx_range)
        np.testing.assert_array_equal(sim.adjacency, expected)

    def test_incremental_engine_used_for_auto_large_sparse(self):
        params = NetworkParameters.from_fractions(
            n_nodes=500, range_fraction=0.05, velocity_fraction=0.02
        )
        sim = Simulation(
            params, EpochRandomWaypointModel(params.velocity, 1.0), seed=7
        )
        assert sim.connectivity == "incremental"
        assert sim._incremental is not None
        expected = sim.region.adjacency(sim.positions, params.tx_range)
        np.testing.assert_array_equal(sim.adjacency, expected)
        sim.step()
        expected = sim.region.adjacency(sim.positions, params.tx_range)
        np.testing.assert_array_equal(sim.adjacency, expected)
