"""Span layer: hierarchy, laziness, causal links, engine integration.

The structural invariants a traced run must satisfy:

* every ``span_start`` has exactly one matching ``span_end`` (the run
  span is unwound at ``trace_run_end``);
* step spans are lazy — they appear in the trace only when a handler
  span materialized inside them;
* every ``span_link`` references two spans that were actually started;
* ``msg_tx`` events emitted inside a handler span carry its id, which
  is the attribution the compare/timeline tooling builds on.
"""

from __future__ import annotations

import pytest

from repro.clustering import ClusterMaintenanceProtocol, LowestIdClustering
from repro.mobility import EpochRandomWaypointModel
from repro.obs import NULL_TRACER, CollectingTracer, SpanTracker
from repro.obs.spans import next_span_id
from repro.sim import HelloProtocol, Simulation


class TestSpanTracker:
    def test_start_end_emits_matched_pair(self):
        tracer = CollectingTracer()
        spans = SpanTracker(tracer, sim_id=0)
        span = spans.start("outer", "run", 1.0)
        spans.end(3.5)
        starts = tracer.of("span_start")
        ends = tracer.of("span_end")
        assert len(starts) == len(ends) == 1
        assert starts[0]["span"] == ends[0]["span"] == span
        assert starts[0]["name"] == "outer"
        assert starts[0]["kind"] == "run"
        assert "parent" not in starts[0]
        assert ends[0]["duration"] == pytest.approx(2.5)

    def test_nested_spans_carry_parent(self):
        tracer = CollectingTracer()
        spans = SpanTracker(tracer, sim_id=0)
        outer = spans.start("outer", "run", 0.0)
        inner = spans.start("inner", "handler", 1.0)
        assert spans.current == inner
        spans.end(2.0)
        assert spans.current == outer
        spans.end(3.0)
        starts = {r["name"]: r for r in tracer.of("span_start")}
        assert starts["inner"]["parent"] == outer
        assert inner != outer

    def test_lazy_span_without_child_emits_nothing(self):
        tracer = CollectingTracer()
        spans = SpanTracker(tracer, sim_id=0)
        spans.start_lazy("step", "step", 0.0)
        assert spans.current is None
        assert spans.end(1.0) is None
        assert tracer.of("span_start") == []
        assert tracer.of("span_end") == []

    def test_lazy_span_materializes_with_child(self):
        tracer = CollectingTracer()
        spans = SpanTracker(tracer, sim_id=0)
        spans.start_lazy("step", "step", 0.0)
        child = spans.start("handler", "handler", 0.5)
        starts = tracer.of("span_start")
        # Outermost first: the lazy step was emitted before its child
        # and became the child's parent.
        assert [r["name"] for r in starts] == ["step", "handler"]
        assert starts[1]["parent"] == starts[0]["span"]
        assert child == starts[1]["span"]
        spans.end(0.6)
        spans.end(1.0)
        assert len(tracer.of("span_end")) == 2

    def test_unwind_closes_everything(self):
        tracer = CollectingTracer()
        spans = SpanTracker(tracer, sim_id=0)
        spans.start("a", "run", 0.0)
        spans.start("b", "phase", 0.0)
        spans.start_lazy("c", "step", 0.0)
        spans.unwind(9.0)
        assert spans.depth == 0
        assert len(tracer.of("span_end")) == 2  # lazy "c" never emitted

    def test_end_on_empty_stack_is_noop(self):
        spans = SpanTracker(CollectingTracer(), sim_id=0)
        assert spans.end(1.0) is None

    def test_link_emits_edge(self):
        tracer = CollectingTracer()
        spans = SpanTracker(tracer, sim_id=3)
        spans.link(10, 11, "cascade", 2.0)
        (link,) = tracer.of("span_link")
        assert link["src_span"] == 10
        assert link["dst_span"] == 11
        assert link["kind"] == "cascade"
        assert link["sim"] == 3

    def test_ids_are_process_unique(self):
        tracer = CollectingTracer()
        a = SpanTracker(tracer, sim_id=0)
        b = SpanTracker(tracer, sim_id=1)
        ids = {a.start("x", "run", 0.0), b.start("x", "run", 0.0),
               next_span_id()}
        assert len(ids) == 3

    def test_disabled_tracer_reports_disabled(self):
        spans = SpanTracker(NULL_TRACER, sim_id=0)
        assert not spans.enabled


def _traced_run(params, seed=0, duration=3.0):
    tracer = CollectingTracer()
    sim = Simulation(
        params,
        EpochRandomWaypointModel(params.velocity, epoch=1.0),
        seed=seed,
        tracer=tracer,
    )
    sim.attach(HelloProtocol(mode="event"))
    maintenance = ClusterMaintenanceProtocol(LowestIdClustering())
    sim.attach(maintenance)
    sim.run(duration=duration, warmup=1.0)
    return tracer, sim, maintenance


class TestEngineSpans:
    def test_every_span_start_has_matching_end(self, params):
        tracer, _sim, _m = _traced_run(params)
        started = {r["span"] for r in tracer.of("span_start")}
        ended = {r["span"] for r in tracer.of("span_end")}
        assert started
        assert started == ended

    def test_hierarchy_kinds_present(self, params):
        tracer, sim, _m = _traced_run(params)
        kinds = {r["kind"] for r in tracer.of("span_start")}
        assert {"run", "phase", "handler"} <= kinds
        runs = [r for r in tracer.of("span_start") if r["kind"] == "run"]
        assert len(runs) == 1
        assert runs[0]["sim"] == sim.sim_id

    def test_step_spans_lazy(self, params):
        tracer, _sim, _m = _traced_run(params)
        steps = [r for r in tracer.of("span_start") if r["kind"] == "step"]
        traced_steps = len(tracer.of("step"))
        # Not every step materializes a span — only those containing a
        # maintenance handler (structurally interesting steps).
        assert steps, "no step span ever materialized"
        handler_parents = {
            r.get("parent")
            for r in tracer.of("span_start")
            if r["kind"] == "handler"
        }
        step_ids = {r["span"] for r in steps}
        assert handler_parents & step_ids
        assert len(steps) <= max(traced_steps, 1) * 10  # sanity bound

    def test_links_reference_started_spans(self, params):
        tracer, _sim, _m = _traced_run(params, seed=5, duration=4.0)
        started = {r["span"] for r in tracer.of("span_start")}
        links = tracer.of("span_link")
        for link in links:
            assert link["src_span"] in started
            assert link["dst_span"] in started

    def test_maintenance_events_and_msg_tx_carry_span_ids(self, params):
        tracer, _sim, maintenance = _traced_run(params, seed=5, duration=4.0)
        started = {r["span"] for r in tracer.of("span_start")}
        reaffiliations = tracer.of("cluster_reaffiliation")
        assert reaffiliations
        for record in reaffiliations:
            assert record["span"] in started
        annotated = [
            r for r in tracer.of("msg_tx") if r.get("span") is not None
        ]
        assert annotated, "no msg_tx was attributed to a span"
        for record in annotated:
            assert record["span"] in started

    def test_counters_match_event_totals(self, params):
        tracer, _sim, maintenance = _traced_run(params, seed=5, duration=4.0)
        assert maintenance.head_changes_total == len(
            tracer.of("head_change")
        )
        assert maintenance.reaffiliations_total == len(
            tracer.of("cluster_reaffiliation")
        )

    def test_untraced_run_pays_no_spans(self, params):
        sim = Simulation(
            params,
            EpochRandomWaypointModel(params.velocity, epoch=1.0),
            seed=0,
        )
        maintenance = ClusterMaintenanceProtocol(LowestIdClustering())
        sim.attach(maintenance)
        sim.run(duration=2.0, warmup=0.5)
        assert sim.spans.depth == 0
        # Counters still accumulate (they are unconditional, which is
        # what makes the dynamics reconciliation by-construction).
        assert maintenance.reaffiliations_total >= 0
