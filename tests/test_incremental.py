"""Tests for the incremental connectivity engine (repro.spatial.incremental).

The contract is exactness: every step must return the bit-identical
sorted edge set — and, via the fast mask-diff path, bit-identical
``LinkEvents`` — that a full batch rebuild would produce.  These tests
pin that equivalence across boundaries, mobility models, teleports, and
node failure, and additionally pin the internal invariants the speedup
rests on (rebuild fallbacks, the bitwise-equal fast distance kernel).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import NetworkParameters
from repro.mobility import (
    ConstantVelocityModel,
    EpochRandomWaypointModel,
    GaussMarkovModel,
    ManhattanModel,
    MobilityModel,
    RandomDirectionModel,
    RandomWalkModel,
    RandomWaypointModel,
    ReferencePointGroupModel,
)
from repro.obs.timing import PhaseTimer
from repro.sim import Simulation
from repro.spatial import (
    Boundary,
    IncrementalConnectivityEngine,
    SquareRegion,
    compute_edges,
    diff_edge_sets,
)


def _incremental_params(n_nodes=200) -> NetworkParameters:
    return NetworkParameters.from_fractions(
        n_nodes=n_nodes, range_fraction=0.08, velocity_fraction=0.05
    )


def _assert_same_events(a, b):
    np.testing.assert_array_equal(a.generated, b.generated)
    np.testing.assert_array_equal(a.broken, b.broken)


def _assert_sims_lockstep(incremental, reference, steps):
    np.testing.assert_array_equal(incremental.edges, reference.edges)
    for _ in range(steps):
        events = incremental.step()
        expected = reference.step()
        np.testing.assert_array_equal(incremental.edges, reference.edges)
        _assert_same_events(events, expected)


def _sim_pair(params, model_factory, seed=0):
    return tuple(
        Simulation(params, model_factory(), seed=seed, connectivity=mode)
        for mode in ("incremental", "grid")
    )


class TeleportingModel(MobilityModel):
    """Drifts slowly but teleports a random batch of nodes periodically.

    The teleports exceed any displacement budget, so the engine's
    global rebuild trigger must fire — exactness may never depend on
    motion staying small.
    """

    def __init__(self, speed: float, every: int = 5, batch: int = 6):
        super().__init__()
        self.speed = speed
        self.every = every
        self.batch = batch
        self._steps = 0

    def _advance(self, dt: float) -> None:
        step = self.rng.normal(0.0, self.speed * dt, self._positions.shape)
        self._positions += step
        self._steps += 1
        if self._steps % self.every == 0:
            jump = self.rng.choice(
                len(self._positions), size=self.batch, replace=False
            )
            self._positions[jump] = self.rng.random((self.batch, 2)) * (
                self.region.side
            )
        self._positions %= self.region.side


MODEL_FACTORIES = {
    "constant": lambda v: ConstantVelocityModel(v),
    "epoch-rwp": lambda v: EpochRandomWaypointModel(v, epoch=1.0),
    "rwp": lambda v: RandomWaypointModel((0.5 * v, 1.5 * v), (0.0, 0.3)),
    "walk": lambda v: RandomWalkModel((0.5 * v, 1.5 * v), interval=0.5),
    "direction": lambda v: RandomDirectionModel((0.5 * v, 1.5 * v), pause=0.2),
    "gauss-markov": lambda v: GaussMarkovModel(v, update_interval=0.5),
    "manhattan": lambda v: ManhattanModel((0.5 * v, 1.5 * v)),
    "group": lambda v: ReferencePointGroupModel(
        n_groups=5, group_radius=0.1, member_speed=v
    ),
    "teleport": lambda v: TeleportingModel(v),
}


class TestSimulationEquivalence:
    """Engine-level lockstep equality against the batch grid engine."""

    @pytest.mark.parametrize("model_name", sorted(MODEL_FACTORIES))
    def test_every_mobility_model(self, model_name):
        params = _incremental_params()
        factory = MODEL_FACTORIES[model_name]
        incremental, reference = _sim_pair(
            params, lambda: factory(params.velocity), seed=9
        )
        assert incremental.connectivity == "incremental"
        _assert_sims_lockstep(incremental, reference, steps=40)

    def test_static_positions(self):
        params = _incremental_params()
        incremental, reference = _sim_pair(
            params, lambda: ConstantVelocityModel(0.0), seed=2
        )
        _assert_sims_lockstep(incremental, reference, steps=10)
        assert incremental._incremental.full_rebuilds == 1

    def test_fail_and_recover_mid_run(self):
        params = _incremental_params()
        incremental, reference = _sim_pair(
            params,
            lambda: EpochRandomWaypointModel(params.velocity, epoch=1.0),
            seed=3,
        )
        _assert_sims_lockstep(incremental, reference, steps=5)
        victims = [int(incremental.degrees().argmax()), 0]
        for sim in (incremental, reference):
            for node in victims:
                sim.fail_node(node)
        _assert_sims_lockstep(incremental, reference, steps=8)
        for node in victims:
            assert not np.any(incremental.edges == node)
        for sim in (incremental, reference):
            sim.recover_node(victims[0])
        _assert_sims_lockstep(incremental, reference, steps=8)

    def test_long_run_with_teleports_and_failures(self):
        params = _incremental_params(150)
        incremental, reference = _sim_pair(
            params, lambda: TeleportingModel(params.velocity), seed=4
        )
        np.testing.assert_array_equal(incremental.edges, reference.edges)
        for step in range(60):
            if step in (11, 29):
                for sim in (incremental, reference):
                    sim.fail_node(step % params.n_nodes)
            if step == 41:
                for sim in (incremental, reference):
                    sim.recover_node(11)
            events = incremental.step()
            expected = reference.step()
            np.testing.assert_array_equal(
                incremental.edges, reference.edges
            )
            _assert_same_events(events, expected)
        engine = incremental._incremental
        assert engine.full_rebuilds > 1  # teleports forced validations
        assert engine.incremental_steps > 0


class TestBareEngineEquivalence:
    """Direct engine-vs-batch equality outside the simulation loop,
    covering the non-torus boundaries the Simulation never uses."""

    @pytest.mark.parametrize(
        "boundary", [Boundary.TORUS, Boundary.OPEN, Boundary.REFLECT]
    )
    @pytest.mark.parametrize("side", [1.0, 3.7])
    def test_random_motion_stream(self, boundary, side):
        region = SquareRegion(side, boundary)
        tx_range = 0.08 * side
        rng = np.random.default_rng(7)
        positions = region.uniform_positions(150, 7)
        engine = IncrementalConnectivityEngine(region, tx_range)
        prev_edges = None
        for step in range(50):
            result = engine.step(positions)
            expected = compute_edges(region, positions, tx_range)
            np.testing.assert_array_equal(result.edges, expected)
            if result.events is not None:
                assert prev_edges is not None
                _assert_same_events(
                    result.events, diff_edge_sets(prev_edges, result.edges)
                )
            prev_edges = result.edges
            positions = positions + rng.normal(
                0.0, 0.002 * side, positions.shape
            )
            if step == 25:  # one hard teleport mid-stream
                positions = positions.copy()
                positions[rng.integers(150)] = rng.random(2) * side
            if boundary is Boundary.TORUS:
                positions = positions % side
            else:
                positions = np.clip(positions, 0.0, side)
        assert engine.incremental_steps > 0

    def test_invalidate_forces_rebuild(self, unit_torus):
        engine = IncrementalConnectivityEngine(unit_torus, 0.1)
        positions = unit_torus.uniform_positions(120, 1)
        assert engine.step(positions).rebuilt
        assert not engine.step(positions).rebuilt
        engine.invalidate()
        result = engine.step(positions)
        assert result.rebuilt
        assert result.events is None
        assert engine.full_rebuilds == 2

    def test_rebuild_cadence_amortizes(self, unit_torus):
        # recommended_step-scale motion must run many incremental steps
        # per validation, or the design has no speedup to offer.
        rng = np.random.default_rng(2)
        positions = unit_torus.uniform_positions(200, 2)
        engine = IncrementalConnectivityEngine(unit_torus, 0.1)
        for _ in range(40):
            engine.step(positions)
            positions = (
                positions + rng.normal(0.0, 0.002, positions.shape)
            ) % 1.0
        assert engine.incremental_steps >= 4 * engine.full_rebuilds

    def test_rejects_bad_parameters(self, unit_torus):
        with pytest.raises(ValueError):
            IncrementalConnectivityEngine(unit_torus, 0.0)
        with pytest.raises(ValueError):
            IncrementalConnectivityEngine(
                unit_torus, 0.1, margin_fraction=0.0
            )


class TestFastDistanceKernel:
    """`_pair_distances` must be bitwise-equal to the region metric."""

    @pytest.mark.parametrize("side", [1.0, 0.3333333333333333, 1000.0])
    def test_torus_bitwise(self, side):
        region = SquareRegion(side, Boundary.TORUS)
        engine = IncrementalConnectivityEngine(region, 0.1 * side)
        rng = np.random.default_rng(5)
        pos = rng.random((400, 2)) * side
        # Adversarial band: pairs separated by almost exactly side/2,
        # where the wrap branch choice is the closest call.
        pos[200:] = (
            pos[:200] + side / 2 + rng.normal(0.0, 1e-9 * side, (200, 2))
        ) % side
        i = rng.integers(0, 400, 5000)
        j = rng.integers(0, 400, 5000)
        fast = engine._pair_distances(pos, i, j)
        reference = region.distance(pos[i], pos[j])
        np.testing.assert_array_equal(fast, reference)

    def test_open_bitwise(self):
        region = SquareRegion(1.0, Boundary.OPEN)
        engine = IncrementalConnectivityEngine(region, 0.1)
        rng = np.random.default_rng(6)
        pos = rng.random((300, 2))
        i = rng.integers(0, 300, 3000)
        j = rng.integers(0, 300, 3000)
        np.testing.assert_array_equal(
            engine._pair_distances(pos, i, j),
            region.distance(pos[i], pos[j]),
        )


class TestPhaseTiming:
    def test_revalidate_phase_recorded(self):
        params = _incremental_params()
        timer = PhaseTimer()
        sim = Simulation(
            params,
            EpochRandomWaypointModel(params.velocity, epoch=1.0),
            seed=8,
            timer=timer,
            connectivity="incremental",
        )
        for _ in range(10):
            sim.step()
        phases = {p.phase: p for p in timer.report().phases}
        assert "incremental_revalidate" in phases
        assert phases["incremental_revalidate"].seconds >= 0.0
        assert phases["incremental_revalidate"].calls > 0
        assert phases["adjacency"].seconds >= 0.0
        # The sub-phase is disjoint from adjacency, so the report total
        # still accounts each second exactly once.
        report = timer.report()
        assert report.total_seconds == pytest.approx(
            sum(p.seconds for p in report.phases)
        )


class TestParallelDeterminism:
    def test_sweep_bitwise_identical_across_jobs(self):
        from repro.analysis.sweep import measure_point

        params = _incremental_params(120)
        # The sweep resolves connectivity="auto" with the recommended
        # step; confirm that resolution actually lands on the new mode.
        probe = Simulation(
            params,
            EpochRandomWaypointModel(params.velocity, epoch=1.0),
            seed=0,
        )
        assert probe.connectivity == "incremental"
        kwargs = dict(seeds=3, duration=2.0, warmup=0.5)
        serial = measure_point(params, params.tx_range, **kwargs, jobs=1)
        parallel = measure_point(params, params.tx_range, **kwargs, jobs=2)
        assert serial == parallel
