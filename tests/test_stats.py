"""Tests for message accounting (repro.sim.stats)."""

from __future__ import annotations

import pytest

from repro.sim import MessageStats


@pytest.fixture
def stats() -> MessageStats:
    return MessageStats(n_nodes=10)


class TestWindow:
    def test_rejects_bad_node_count(self):
        with pytest.raises(ValueError):
            MessageStats(n_nodes=0)

    def test_records_dropped_outside_window(self, stats):
        stats.record("hello", 5, 100.0)
        assert stats.message_count("hello") == 0
        stats.start_measuring()
        stats.record("hello", 5, 100.0)
        assert stats.message_count("hello") == 5
        stats.stop_measuring()
        stats.record("hello", 5, 100.0)
        assert stats.message_count("hello") == 5

    def test_time_only_accumulates_while_measuring(self, stats):
        stats.advance_time(1.0)
        assert stats.measured_time == 0.0
        stats.start_measuring()
        stats.advance_time(2.0)
        assert stats.measured_time == 2.0

    def test_negative_time_rejected(self, stats):
        with pytest.raises(ValueError):
            stats.advance_time(-1.0)

    def test_measuring_flag(self, stats):
        assert not stats.measuring
        stats.start_measuring()
        assert stats.measuring


class TestAccounting:
    def test_per_node_frequency(self, stats):
        stats.start_measuring()
        stats.advance_time(5.0)
        stats.record("cluster", 100, 200.0)
        assert stats.per_node_frequency("cluster") == pytest.approx(2.0)

    def test_per_node_overhead(self, stats):
        stats.start_measuring()
        stats.advance_time(4.0)
        stats.record("route", 10, 400.0)
        assert stats.per_node_overhead("route") == pytest.approx(10.0)

    def test_no_time_raises(self, stats):
        stats.start_measuring()
        stats.record("hello", 1, 1.0)
        with pytest.raises(ValueError):
            stats.per_node_frequency("hello")

    def test_unknown_category_zero(self, stats):
        stats.start_measuring()
        stats.advance_time(1.0)
        assert stats.per_node_frequency("nonexistent") == 0.0

    def test_negative_record_rejected(self, stats):
        stats.start_measuring()
        with pytest.raises(ValueError):
            stats.record("hello", -1)
        with pytest.raises(ValueError):
            stats.record("hello", 1, -5.0)

    def test_aggregate_views(self, stats):
        stats.start_measuring()
        stats.advance_time(2.0)
        stats.record("hello", 4, 40.0)
        stats.record("cluster", 2, 10.0)
        assert stats.frequencies() == {
            "cluster": pytest.approx(0.1),
            "hello": pytest.approx(0.2),
        }
        assert stats.overheads() == {
            "cluster": pytest.approx(0.5),
            "hello": pytest.approx(2.0),
        }
        assert stats.total_overhead() == pytest.approx(2.5)

    def test_accumulation_across_records(self, stats):
        stats.start_measuring()
        for _ in range(3):
            stats.record("hello", 2, 8.0)
        assert stats.message_count("hello") == 6
        assert stats.bit_count("hello") == pytest.approx(24.0)


class TestReadSideIsolation:
    """Reading a never-recorded category must not create it."""

    def test_reads_do_not_grow_totals(self, stats):
        stats.start_measuring()
        stats.advance_time(1.0)
        stats.record("hello", 1, 8.0)
        assert stats.message_count("typo") == 0
        assert stats.bit_count("typo") == 0.0
        assert stats.per_node_frequency("typo") == 0.0
        assert stats.per_node_overhead("typo") == 0.0
        assert set(stats.totals) == {"hello"}

    def test_reads_do_not_pollute_aggregates(self, stats):
        stats.start_measuring()
        stats.advance_time(1.0)
        stats.record("route", 3, 30.0)
        stats.message_count("cluster")  # probe an absent category
        assert set(stats.frequencies()) == {"route"}
        assert set(stats.overheads()) == {"route"}

    def test_totals_snapshot_is_detached(self, stats):
        stats.start_measuring()
        stats.record("hello", 1, 8.0)
        snapshot = stats.totals
        snapshot["hello"].messages = 999
        snapshot["bogus"] = None
        assert stats.message_count("hello") == 1
        assert set(stats.totals) == {"hello"}


class TestRegistryBacking:
    def test_counters_live_in_registry(self, stats):
        stats.start_measuring()
        stats.record("hello", 4, 32.0)
        counter = stats.registry.counter("messages_total", category="hello")
        assert counter.value == 4

    def test_shared_registry_with_labels(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        a = MessageStats(10, registry=registry, labels={"sim": "0"})
        b = MessageStats(10, registry=registry, labels={"sim": "1"})
        a.start_measuring()
        b.start_measuring()
        a.record("hello", 1, 8.0)
        b.record("hello", 5, 40.0)
        assert a.message_count("hello") == 1
        assert b.message_count("hello") == 5

    def test_on_record_fires_only_inside_window(self, stats):
        seen = []
        stats.on_record = lambda *args: seen.append(args)
        stats.record("hello", 1, 8.0)  # outside window: dropped, no hook
        stats.start_measuring()
        stats.record("hello", 2, 16.0)
        assert seen == [("hello", 2, 16.0)]
