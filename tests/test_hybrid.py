"""Tests for the hybrid routing protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import ClusterMaintenanceProtocol, LowestIdClustering
from repro.core.params import NetworkParameters
from repro.mobility import EpochRandomWaypointModel
from repro.routing import HybridRoutingProtocol, IntraClusterRoutingProtocol
from repro.sim import Simulation


def _stack(n=100, vf=0.0, seed=31):
    params = NetworkParameters.from_fractions(
        n_nodes=n, range_fraction=0.2, velocity_fraction=vf
    )
    sim = Simulation(
        params, EpochRandomWaypointModel(params.velocity, 1.0), seed=seed
    )
    maintenance = ClusterMaintenanceProtocol(LowestIdClustering())
    intra = IntraClusterRoutingProtocol(maintenance)
    sim.attach(intra)
    sim.attach(maintenance)
    hybrid = sim.attach(HybridRoutingProtocol(maintenance, intra))
    return sim, maintenance, intra, hybrid


class TestRouting:
    def test_self_route(self):
        sim, _, _, hybrid = _stack()
        assert hybrid.route(sim, 4, 4) == [4]

    def test_same_cluster_uses_proactive_tables(self):
        sim, maintenance, intra, hybrid = _stack()
        state = maintenance.state
        head = int(state.heads()[0])
        members = state.members_of(head)
        if not len(members):
            pytest.skip("head without members")
        member = int(members[0])
        sim.stats.start_measuring()
        path = hybrid.route(sim, member, head)
        assert path == [member, head]
        assert hybrid.discoveries == 0
        assert sim.stats.message_count("route_discovery") == 0

    def test_cross_cluster_triggers_discovery(self):
        sim, maintenance, _, hybrid = _stack()
        state = maintenance.state
        heads = state.heads()
        a, b = int(heads[0]), int(heads[-1])
        path = hybrid.route(sim, a, b)
        assert hybrid.discoveries == 1
        if path is not None:
            for u, v in zip(path, path[1:]):
                assert sim.has_link(u, v)

    def test_cache_hit_on_repeat(self):
        sim, maintenance, _, hybrid = _stack()
        heads = maintenance.state.heads()
        a, b = int(heads[0]), int(heads[-1])
        first = hybrid.route(sim, a, b)
        if first is None:
            pytest.skip("unreachable")
        second = hybrid.route(sim, a, b)
        assert second == first
        assert hybrid.discoveries == 1
        assert hybrid.cache_hits == 1
        assert hybrid.cached_routes == 1


class TestCacheInvalidation:
    def test_link_break_evicts_and_emits_rerr(self):
        sim, maintenance, _, hybrid = _stack()
        heads = maintenance.state.heads()
        a, b = int(heads[0]), int(heads[-1])
        path = hybrid.route(sim, a, b)
        if path is None or len(path) < 2:
            pytest.skip("no multi-hop route")
        u, v = path[0], path[1]
        sim.stats.start_measuring()
        hybrid.on_link_down(sim, min(u, v), max(u, v), 0.0)
        assert hybrid.cached_routes == 0
        assert sim.stats.message_count("route_error") >= 1

    def test_unrelated_break_keeps_cache(self):
        sim, maintenance, _, hybrid = _stack()
        heads = maintenance.state.heads()
        a, b = int(heads[0]), int(heads[-1])
        path = hybrid.route(sim, a, b)
        if path is None:
            pytest.skip("unreachable")
        on_path = {frozenset(pair) for pair in zip(path, path[1:])}
        # Find a link not on the path.
        rows, cols = np.nonzero(np.triu(sim.adjacency, 1))
        for u, v in zip(rows, cols):
            if frozenset((int(u), int(v))) not in on_path:
                hybrid.on_link_down(sim, int(u), int(v), 0.0)
                assert hybrid.cached_routes == 1
                return
        pytest.skip("every link on path")


class TestUnderMobility:
    def test_delivery_with_rediscovery(self):
        sim, maintenance, _, hybrid = _stack(vf=0.05, seed=32)
        rng = np.random.default_rng(0)
        successes = attempts = 0
        for _ in range(40):
            for _ in range(3):
                sim.step()
            u, v = rng.integers(0, sim.n_nodes, 2)
            if u == v:
                continue
            attempts += 1
            path = hybrid.route(sim, int(u), int(v))
            if path is not None:
                for a, b in zip(path, path[1:]):
                    assert sim.has_link(a, b)
                successes += 1
        # A dense connected network should deliver most requests.
        assert successes / attempts > 0.8
