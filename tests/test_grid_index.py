"""Tests for the uniform grid index (repro.spatial.grid_index)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial import Boundary, SquareRegion, UniformGridIndex


def _build(region, n, radius, seed):
    positions = region.uniform_positions(n, seed)
    index = UniformGridIndex(region, radius)
    index.rebuild(positions)
    return positions, index


class TestConstruction:
    def test_rejects_nonpositive_radius(self, unit_torus):
        with pytest.raises(ValueError):
            UniformGridIndex(unit_torus, 0.0)

    def test_cell_geometry(self, unit_torus):
        index = UniformGridIndex(unit_torus, 0.3)
        assert index.cells_per_side == 3
        assert index.cell_size == pytest.approx(1.0 / 3.0)

    def test_radius_larger_than_side(self, unit_torus):
        index = UniformGridIndex(unit_torus, 2.0)
        assert index.cells_per_side == 1

    def test_query_before_rebuild_raises(self, unit_torus):
        index = UniformGridIndex(unit_torus, 0.2)
        with pytest.raises(RuntimeError):
            index.neighbors_of(0)
        with pytest.raises(RuntimeError):
            index.neighbor_pairs()
        with pytest.raises(RuntimeError):
            index.adjacency()

    def test_bad_positions_shape(self, unit_torus):
        index = UniformGridIndex(unit_torus, 0.2)
        with pytest.raises(ValueError):
            index.rebuild(np.zeros((5, 3)))


class TestEquivalenceWithDense:
    @pytest.mark.parametrize("boundary", [Boundary.TORUS, Boundary.OPEN])
    @pytest.mark.parametrize("radius", [0.05, 0.13, 0.31])
    def test_adjacency_identical(self, boundary, radius):
        region = SquareRegion(1.0, boundary)
        positions, index = _build(region, 250, radius, seed=1)
        np.testing.assert_array_equal(
            index.adjacency(), region.adjacency(positions, radius)
        )

    def test_neighbors_of_matches_dense_row(self, unit_torus):
        positions, index = _build(unit_torus, 150, 0.12, seed=2)
        dense = unit_torus.adjacency(positions, 0.12)
        for node in range(0, 150, 17):
            np.testing.assert_array_equal(
                np.sort(index.neighbors_of(node)), np.flatnonzero(dense[node])
            )

    def test_tiny_torus_few_cells(self):
        # cells_per_side <= 3 exercises the wrapped-stencil dedup path.
        region = SquareRegion(1.0, Boundary.TORUS)
        positions, index = _build(region, 80, 0.4, seed=3)
        assert index.cells_per_side <= 3
        np.testing.assert_array_equal(
            index.adjacency(), region.adjacency(positions, 0.4)
        )

    def test_smaller_query_radius(self, unit_torus):
        positions, index = _build(unit_torus, 120, 0.2, seed=4)
        np.testing.assert_array_equal(
            index.adjacency(0.1), unit_torus.adjacency(positions, 0.1)
        )

    def test_larger_query_radius_rejected(self, unit_torus):
        _, index = _build(unit_torus, 20, 0.1, seed=5)
        with pytest.raises(ValueError):
            index.neighbors_of(0, 0.2)
        with pytest.raises(ValueError):
            index.neighbor_pairs(0.2)


class TestPairs:
    def test_pairs_sorted_and_unique(self, unit_torus):
        _, index = _build(unit_torus, 100, 0.15, seed=6)
        pairs = index.neighbor_pairs()
        assert np.all(pairs[:, 0] < pairs[:, 1])
        as_tuples = [tuple(p) for p in pairs]
        assert len(as_tuples) == len(set(as_tuples))

    def test_pair_count_matches_edges(self, unit_torus):
        positions, index = _build(unit_torus, 100, 0.15, seed=7)
        dense = unit_torus.adjacency(positions, 0.15)
        assert len(index.neighbor_pairs()) == dense.sum() // 2

    def test_empty_graph(self, unit_torus):
        positions = np.array([[0.1, 0.1], [0.5, 0.5], [0.9, 0.9]])
        index = UniformGridIndex(unit_torus, 0.05)
        index.rebuild(positions)
        assert index.neighbor_pairs().shape == (0, 2)
        assert not index.adjacency().any()


class TestEveryCellCount:
    """Exact dense equivalence at every coarse grid resolution.

    ``radius = side / (m + 0.5)`` forces ``cells_per_side == m``, so
    this sweeps the wrapped-stencil aliasing regimes one by one: m <= 2
    (offsets alias under wrap, dedup required), m = 3 (distinct mod 3),
    and the plain sparse regimes above.
    """

    @pytest.mark.parametrize(
        "boundary", [Boundary.TORUS, Boundary.OPEN, Boundary.REFLECT]
    )
    @pytest.mark.parametrize("m", [1, 2, 3, 4, 5, 6])
    def test_adjacency_matches_dense(self, m, boundary):
        region = SquareRegion(1.0, boundary)
        radius = 1.0 / (m + 0.5)
        positions = region.uniform_positions(90, m * 10 + 1)
        index = UniformGridIndex(region, radius)
        assert index.cells_per_side == m
        index.rebuild(positions)
        np.testing.assert_array_equal(
            index.adjacency(), region.adjacency(positions, radius)
        )

    @pytest.mark.parametrize("m", [1, 2, 3, 4, 5, 6])
    def test_pairs_unique_and_sorted_on_torus(self, m):
        region = SquareRegion(1.0, Boundary.TORUS)
        radius = 1.0 / (m + 0.5)
        positions = region.uniform_positions(70, m)
        index = UniformGridIndex(region, radius)
        index.rebuild(positions)
        pairs = index.neighbor_pairs()
        assert np.all(pairs[:, 0] < pairs[:, 1])
        keys = pairs[:, 0] * 70 + pairs[:, 1]
        assert len(np.unique(keys)) == len(keys)
        assert np.all(np.diff(keys) > 0)  # canonically sorted

    @pytest.mark.parametrize("m", [1, 2, 3, 4, 5, 6])
    def test_candidates_unique_per_node(self, m):
        region = SquareRegion(1.0, Boundary.TORUS)
        radius = 1.0 / (m + 0.5)
        positions = region.uniform_positions(50, m + 100)
        index = UniformGridIndex(region, radius)
        index.rebuild(positions)
        for node in range(0, 50, 7):
            candidates = index._candidate_indices(tuple(index._cell_of[node]))
            assert len(np.unique(candidates)) == len(candidates)


class TestIncrementalUpdate:
    """``update`` must be indistinguishable from a fresh ``rebuild``."""

    def _assert_matches_fresh(self, index, region, positions, radius):
        fresh = UniformGridIndex(region, radius)
        fresh.rebuild(positions)
        np.testing.assert_array_equal(
            index.neighbor_pairs(), fresh.neighbor_pairs()
        )
        np.testing.assert_array_equal(index.adjacency(), fresh.adjacency())

    @pytest.mark.parametrize(
        "boundary", [Boundary.TORUS, Boundary.OPEN, Boundary.REFLECT]
    )
    def test_small_motion_stream(self, boundary):
        region = SquareRegion(1.0, boundary)
        rng = np.random.default_rng(11)
        positions = region.uniform_positions(150, 11)
        index = UniformGridIndex(region, 0.12)
        for _ in range(12):
            positions = positions + rng.normal(0.0, 0.01, positions.shape)
            if boundary is Boundary.TORUS:
                positions %= region.side
            else:
                positions = np.clip(positions, 0.0, region.side)
            changed = index.update(positions)
            assert changed >= 0
            self._assert_matches_fresh(index, region, positions, 0.12)

    def test_teleports_handled(self, unit_torus):
        rng = np.random.default_rng(12)
        positions = unit_torus.uniform_positions(120, 12)
        index = UniformGridIndex(unit_torus, 0.15)
        index.update(positions)
        for _ in range(5):
            positions = positions.copy()
            jump = rng.choice(120, size=7, replace=False)
            positions[jump] = rng.random((7, 2))
            index.update(positions)
            self._assert_matches_fresh(index, unit_torus, positions, 0.15)

    def test_first_update_acts_as_rebuild(self, unit_torus):
        positions = unit_torus.uniform_positions(60, 13)
        index = UniformGridIndex(unit_torus, 0.2)
        index.update(positions)
        self._assert_matches_fresh(index, unit_torus, positions, 0.2)

    def test_length_change_triggers_rebuild(self, unit_torus):
        index = UniformGridIndex(unit_torus, 0.2)
        index.update(unit_torus.uniform_positions(50, 14))
        grown = unit_torus.uniform_positions(80, 15)
        index.update(grown)
        self._assert_matches_fresh(index, unit_torus, grown, 0.2)

    def test_no_motion_is_noop(self, unit_torus):
        positions = unit_torus.uniform_positions(90, 16)
        index = UniformGridIndex(unit_torus, 0.1)
        index.update(positions)
        assert index.update(positions) == 0
        self._assert_matches_fresh(index, unit_torus, positions, 0.1)


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=2, max_value=120),
    st.floats(min_value=0.03, max_value=0.6),
    st.integers(min_value=0, max_value=1000),
    st.sampled_from([Boundary.TORUS, Boundary.OPEN, Boundary.REFLECT]),
)
def test_grid_equals_dense_property(n, radius, seed, boundary):
    """The index is exactly equivalent to the dense metric, always."""
    region = SquareRegion(1.0, boundary)
    positions = region.uniform_positions(n, seed)
    index = UniformGridIndex(region, radius)
    index.rebuild(positions)
    np.testing.assert_array_equal(
        index.adjacency(), region.adjacency(positions, radius)
    )


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=2, max_value=100),
    st.floats(min_value=0.05, max_value=0.5),
    st.integers(min_value=0, max_value=1000),
    st.sampled_from([Boundary.TORUS, Boundary.OPEN, Boundary.REFLECT]),
)
def test_update_equals_rebuild_property(n, radius, seed, boundary):
    """A stream of updates (with teleports) never diverges from rebuild."""
    region = SquareRegion(1.0, boundary)
    rng = np.random.default_rng(seed)
    positions = region.uniform_positions(n, seed)
    index = UniformGridIndex(region, radius)
    for round_index in range(4):
        positions = positions + rng.normal(0.0, 0.02, positions.shape)
        if round_index == 2:
            # Teleport a node to stress the re-binning path.
            positions = positions.copy()
            positions[rng.integers(n)] = rng.random(2)
        if boundary is Boundary.TORUS:
            positions = positions % region.side
        else:
            positions = np.clip(positions, 0.0, region.side)
        index.update(positions)
        fresh = UniformGridIndex(region, radius)
        fresh.rebuild(positions)
        np.testing.assert_array_equal(
            index.neighbor_pairs(), fresh.neighbor_pairs()
        )
