"""Tests for the uniform grid index (repro.spatial.grid_index)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial import Boundary, SquareRegion, UniformGridIndex


def _build(region, n, radius, seed):
    positions = region.uniform_positions(n, seed)
    index = UniformGridIndex(region, radius)
    index.rebuild(positions)
    return positions, index


class TestConstruction:
    def test_rejects_nonpositive_radius(self, unit_torus):
        with pytest.raises(ValueError):
            UniformGridIndex(unit_torus, 0.0)

    def test_cell_geometry(self, unit_torus):
        index = UniformGridIndex(unit_torus, 0.3)
        assert index.cells_per_side == 3
        assert index.cell_size == pytest.approx(1.0 / 3.0)

    def test_radius_larger_than_side(self, unit_torus):
        index = UniformGridIndex(unit_torus, 2.0)
        assert index.cells_per_side == 1

    def test_query_before_rebuild_raises(self, unit_torus):
        index = UniformGridIndex(unit_torus, 0.2)
        with pytest.raises(RuntimeError):
            index.neighbors_of(0)
        with pytest.raises(RuntimeError):
            index.neighbor_pairs()
        with pytest.raises(RuntimeError):
            index.adjacency()

    def test_bad_positions_shape(self, unit_torus):
        index = UniformGridIndex(unit_torus, 0.2)
        with pytest.raises(ValueError):
            index.rebuild(np.zeros((5, 3)))


class TestEquivalenceWithDense:
    @pytest.mark.parametrize("boundary", [Boundary.TORUS, Boundary.OPEN])
    @pytest.mark.parametrize("radius", [0.05, 0.13, 0.31])
    def test_adjacency_identical(self, boundary, radius):
        region = SquareRegion(1.0, boundary)
        positions, index = _build(region, 250, radius, seed=1)
        np.testing.assert_array_equal(
            index.adjacency(), region.adjacency(positions, radius)
        )

    def test_neighbors_of_matches_dense_row(self, unit_torus):
        positions, index = _build(unit_torus, 150, 0.12, seed=2)
        dense = unit_torus.adjacency(positions, 0.12)
        for node in range(0, 150, 17):
            np.testing.assert_array_equal(
                np.sort(index.neighbors_of(node)), np.flatnonzero(dense[node])
            )

    def test_tiny_torus_few_cells(self):
        # cells_per_side <= 3 exercises the wrapped-stencil dedup path.
        region = SquareRegion(1.0, Boundary.TORUS)
        positions, index = _build(region, 80, 0.4, seed=3)
        assert index.cells_per_side <= 3
        np.testing.assert_array_equal(
            index.adjacency(), region.adjacency(positions, 0.4)
        )

    def test_smaller_query_radius(self, unit_torus):
        positions, index = _build(unit_torus, 120, 0.2, seed=4)
        np.testing.assert_array_equal(
            index.adjacency(0.1), unit_torus.adjacency(positions, 0.1)
        )

    def test_larger_query_radius_rejected(self, unit_torus):
        _, index = _build(unit_torus, 20, 0.1, seed=5)
        with pytest.raises(ValueError):
            index.neighbors_of(0, 0.2)
        with pytest.raises(ValueError):
            index.neighbor_pairs(0.2)


class TestPairs:
    def test_pairs_sorted_and_unique(self, unit_torus):
        _, index = _build(unit_torus, 100, 0.15, seed=6)
        pairs = index.neighbor_pairs()
        assert np.all(pairs[:, 0] < pairs[:, 1])
        as_tuples = [tuple(p) for p in pairs]
        assert len(as_tuples) == len(set(as_tuples))

    def test_pair_count_matches_edges(self, unit_torus):
        positions, index = _build(unit_torus, 100, 0.15, seed=7)
        dense = unit_torus.adjacency(positions, 0.15)
        assert len(index.neighbor_pairs()) == dense.sum() // 2

    def test_empty_graph(self, unit_torus):
        positions = np.array([[0.1, 0.1], [0.5, 0.5], [0.9, 0.9]])
        index = UniformGridIndex(unit_torus, 0.05)
        index.rebuild(positions)
        assert index.neighbor_pairs().shape == (0, 2)
        assert not index.adjacency().any()


class TestEveryCellCount:
    """Exact dense equivalence at every coarse grid resolution.

    ``radius = side / (m + 0.5)`` forces ``cells_per_side == m``, so
    this sweeps the wrapped-stencil aliasing regimes one by one: m <= 2
    (offsets alias under wrap, dedup required), m = 3 (distinct mod 3),
    and the plain sparse regimes above.
    """

    @pytest.mark.parametrize(
        "boundary", [Boundary.TORUS, Boundary.OPEN, Boundary.REFLECT]
    )
    @pytest.mark.parametrize("m", [1, 2, 3, 4, 5, 6])
    def test_adjacency_matches_dense(self, m, boundary):
        region = SquareRegion(1.0, boundary)
        radius = 1.0 / (m + 0.5)
        positions = region.uniform_positions(90, m * 10 + 1)
        index = UniformGridIndex(region, radius)
        assert index.cells_per_side == m
        index.rebuild(positions)
        np.testing.assert_array_equal(
            index.adjacency(), region.adjacency(positions, radius)
        )

    @pytest.mark.parametrize("m", [1, 2, 3, 4, 5, 6])
    def test_pairs_unique_and_sorted_on_torus(self, m):
        region = SquareRegion(1.0, Boundary.TORUS)
        radius = 1.0 / (m + 0.5)
        positions = region.uniform_positions(70, m)
        index = UniformGridIndex(region, radius)
        index.rebuild(positions)
        pairs = index.neighbor_pairs()
        assert np.all(pairs[:, 0] < pairs[:, 1])
        keys = pairs[:, 0] * 70 + pairs[:, 1]
        assert len(np.unique(keys)) == len(keys)
        assert np.all(np.diff(keys) > 0)  # canonically sorted

    @pytest.mark.parametrize("m", [1, 2, 3, 4, 5, 6])
    def test_candidates_unique_per_node(self, m):
        region = SquareRegion(1.0, Boundary.TORUS)
        radius = 1.0 / (m + 0.5)
        positions = region.uniform_positions(50, m + 100)
        index = UniformGridIndex(region, radius)
        index.rebuild(positions)
        for node in range(0, 50, 7):
            candidates = index._candidate_indices(tuple(index._cell_of[node]))
            assert len(np.unique(candidates)) == len(candidates)


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=2, max_value=120),
    st.floats(min_value=0.03, max_value=0.6),
    st.integers(min_value=0, max_value=1000),
    st.sampled_from([Boundary.TORUS, Boundary.OPEN, Boundary.REFLECT]),
)
def test_grid_equals_dense_property(n, radius, seed, boundary):
    """The index is exactly equivalent to the dense metric, always."""
    region = SquareRegion(1.0, boundary)
    positions = region.uniform_positions(n, seed)
    index = UniformGridIndex(region, radius)
    index.rebuild(positions)
    np.testing.assert_array_equal(
        index.adjacency(), region.adjacency(positions, radius)
    )
