"""Tests for parameter bundles (repro.core.params)."""

from __future__ import annotations

import math

import pytest

from repro.core.params import MessageSizes, NetworkParameters


class TestMessageSizes:
    def test_defaults_positive(self):
        sizes = MessageSizes()
        assert sizes.p_hello > 0 and sizes.p_cluster > 0 and sizes.p_route > 0

    @pytest.mark.parametrize("field", ["p_hello", "p_cluster", "p_route"])
    def test_rejects_nonpositive(self, field):
        with pytest.raises(ValueError, match=field):
            MessageSizes(**{field: 0.0})

    def test_custom_values(self):
        sizes = MessageSizes(p_hello=10.0, p_cluster=20.0, p_route=30.0)
        assert (sizes.p_hello, sizes.p_cluster, sizes.p_route) == (10.0, 20.0, 30.0)


class TestNetworkParameters:
    def test_derived_geometry(self):
        params = NetworkParameters(
            n_nodes=400, density=4.0, tx_range=1.0, velocity=0.5
        )
        assert params.area == pytest.approx(100.0)
        assert params.side == pytest.approx(10.0)
        assert params.range_fraction == pytest.approx(0.1)
        assert params.velocity_fraction == pytest.approx(0.05)

    def test_from_side(self):
        params = NetworkParameters.from_side(
            n_nodes=100, side=2.0, tx_range=0.3, velocity=0.1
        )
        assert params.density == pytest.approx(25.0)
        assert params.side == pytest.approx(2.0)

    def test_from_fractions(self):
        params = NetworkParameters.from_fractions(
            n_nodes=100, range_fraction=0.15, velocity_fraction=0.05
        )
        assert params.side == pytest.approx(1.0)
        assert params.tx_range == pytest.approx(0.15)
        assert params.velocity == pytest.approx(0.05)
        assert params.density == pytest.approx(100.0)

    def test_rejects_range_at_least_side(self):
        with pytest.raises(ValueError, match="r < a"):
            NetworkParameters(n_nodes=100, density=100.0, tx_range=1.0, velocity=0.0)

    def test_rejects_tiny_network(self):
        with pytest.raises(ValueError, match="n_nodes"):
            NetworkParameters(n_nodes=1, density=1.0, tx_range=0.1, velocity=0.0)

    def test_rejects_negative_velocity(self):
        with pytest.raises(ValueError, match="velocity"):
            NetworkParameters(n_nodes=10, density=1.0, tx_range=0.1, velocity=-1.0)

    def test_rejects_nonpositive_density(self):
        with pytest.raises(ValueError, match="density"):
            NetworkParameters(n_nodes=10, density=0.0, tx_range=0.1, velocity=0.0)

    def test_rejects_nonpositive_range(self):
        with pytest.raises(ValueError, match="tx_range"):
            NetworkParameters(n_nodes=10, density=1.0, tx_range=0.0, velocity=0.0)

    def test_with_replaces_fields(self, params):
        faster = params.with_(velocity=0.5)
        assert faster.velocity == 0.5
        assert faster.tx_range == params.tx_range
        # Original unchanged (frozen dataclass semantics).
        assert params.velocity == pytest.approx(0.05)

    def test_with_revalidates(self, params):
        with pytest.raises(ValueError):
            params.with_(tx_range=10.0)

    def test_frozen(self, params):
        with pytest.raises(AttributeError):
            params.n_nodes = 7

    def test_side_consistency(self):
        params = NetworkParameters(
            n_nodes=250, density=7.3, tx_range=0.5, velocity=0.1
        )
        assert params.side == pytest.approx(math.sqrt(250 / 7.3))
