"""Tests for d-hop reactive cluster maintenance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import (
    DHopClusterMaintenanceProtocol,
    MaxMinDCluster,
    MobDHopClustering,
)
from repro.core.params import NetworkParameters
from repro.mobility import EpochRandomWaypointModel
from repro.sim import Simulation


def _dhop_sim(d=2, algorithm=None, n=80, vf=0.04, seed=0, rf=0.12):
    params = NetworkParameters.from_fractions(
        n_nodes=n, range_fraction=rf, velocity_fraction=vf
    )
    sim = Simulation(
        params, EpochRandomWaypointModel(params.velocity, 1.0), seed=seed
    )
    maintenance = DHopClusterMaintenanceProtocol(
        algorithm or MobDHopClustering(d), d=d
    )
    sim.attach(maintenance)
    return sim, maintenance


class TestConstruction:
    def test_rejects_bad_d(self):
        with pytest.raises(ValueError):
            DHopClusterMaintenanceProtocol(MobDHopClustering(2), d=0)

    def test_initial_structure_valid(self):
        sim, maintenance = _dhop_sim()
        assert maintenance.violations(sim) == []

    def test_works_with_maxmin(self):
        sim, maintenance = _dhop_sim(algorithm=MaxMinDCluster(2))
        assert maintenance.violations(sim) == []


class TestInvariantUnderMobility:
    @pytest.mark.parametrize("d", [1, 2, 3])
    def test_p2d_holds_after_every_step(self, d):
        sim, maintenance = _dhop_sim(d=d, algorithm=MobDHopClustering(d), seed=d)
        for _ in range(100):
            sim.step()
            assert maintenance.violations(sim) == [], f"d={d}"

    def test_fast_mobility_stress(self):
        sim, maintenance = _dhop_sim(vf=0.15, seed=4)
        for _ in range(80):
            sim.step()
            assert maintenance.violations(sim) == []

    def test_under_node_failures(self):
        sim, maintenance = _dhop_sim(seed=5)
        rng = np.random.default_rng(0)
        for _ in range(10):
            victim = int(rng.integers(0, sim.n_nodes))
            if sim.active[victim]:
                sim.fail_node(victim)
            for _ in range(5):
                sim.step()
                assert maintenance.violations(sim) == []


class TestRepairSemantics:
    def test_orphan_rehomes_or_becomes_head(self):
        sim, maintenance = _dhop_sim(vf=0.0, seed=6)
        state = maintenance.state
        # Find a member at depth >= 1 whose sole connection runs through
        # one bridge node: break that bridge link.
        for head in state.heads():
            head = int(head)
            members = state.members_of(head)
            for member in members:
                member = int(member)
                # Break every link of the member inside its cluster.
                cluster = set(int(x) for x in state.cluster_nodes(head))
                sim.stats.start_measuring()
                for neighbor in np.flatnonzero(sim.adjacency[member]):
                    neighbor = int(neighbor)
                    if neighbor in cluster:
                        sim.adjacency[member, neighbor] = False
                        sim.adjacency[neighbor, member] = False
                        maintenance.on_link_down(
                            sim, min(member, neighbor), max(member, neighbor), 0.0
                        )
                assert maintenance.violations(sim) == []
                assert sim.stats.message_count("cluster") >= 1
                # The orphan either switched clusters or heads one.
                assert (
                    state.head_of[member] != head
                    or state.is_head(member)
                )
                return
        pytest.skip("no member found")

    def test_cross_cluster_break_is_free(self):
        sim, maintenance = _dhop_sim(vf=0.0, seed=7)
        state = maintenance.state
        rows, cols = np.nonzero(np.triu(sim.adjacency, 1))
        for u, v in zip(rows, cols):
            if state.head_of[u] != state.head_of[v]:
                sim.stats.start_measuring()
                sim.adjacency[u, v] = sim.adjacency[v, u] = False
                maintenance.on_link_down(sim, int(u), int(v), 0.0)
                assert sim.stats.message_count("cluster") == 0
                return
        pytest.skip("no cross-cluster link")


class TestMaintenanceCost:
    def test_deeper_clusters_fewer_heads(self):
        """d=2 forms fewer clusters than d=1 on the same topology."""
        sim1, m1 = _dhop_sim(d=1, algorithm=MobDHopClustering(1), seed=8)
        sim2, m2 = _dhop_sim(d=2, algorithm=MobDHopClustering(2), seed=8)
        assert m2.cluster_count() < m1.cluster_count()

    def test_maintenance_traffic_measured(self):
        sim, maintenance = _dhop_sim(seed=9)
        sim.stats.start_measuring()
        for _ in range(200):
            sim.step()
        assert sim.stats.message_count("cluster") > 0
