"""Tests for the process-parallel task runner (repro.analysis.parallel).

The contract under test: any ``jobs`` value produces results identical
to a serial run (determinism), results come back in task order, and
telemetry captured in workers merges into the parent's observability
context so traced parallel runs still reconcile end-to-end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.parallel import (
    TaskTelemetry,
    merge_telemetry,
    resolve_jobs,
    run_tasks,
    task_chunk_size,
)
from repro.analysis.sweep import measure_point
from repro.core.params import NetworkParameters
from repro.obs import (
    JsonlTracer,
    MetricsRegistry,
    PhaseTimer,
    current,
    observe,
    summarize_trace,
)


def _square_task(task):
    return task * task


def _seeded_draw_task(seed):
    return float(np.random.default_rng(seed).random())


def _tiny_params():
    return NetworkParameters.from_fractions(
        n_nodes=40, range_fraction=0.15, velocity_fraction=0.05
    )


class TestResolveJobs:
    def test_none_means_serial(self):
        assert resolve_jobs(None, 10) == 1

    def test_capped_at_task_count(self):
        assert resolve_jobs(8, 3) == 3

    def test_zero_means_cpu_count(self):
        import os

        assert resolve_jobs(0, 100) == min(os.cpu_count() or 1, 100)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-1, 5)

    def test_at_least_one(self):
        assert resolve_jobs(4, 0) == 1


class TestTaskChunkSize:
    def test_four_chunks_per_worker(self):
        assert task_chunk_size(32, 2) == 4
        assert task_chunk_size(100, 4) == 6

    def test_never_below_one(self):
        assert task_chunk_size(3, 4) == 1
        assert task_chunk_size(0, 1) == 1

    def test_serial_batches_too(self):
        # jobs=1 still amortizes: one worker, ~4 submissions.
        assert task_chunk_size(40, 1) == 10


class TestWorkerChunking:
    def test_chunked_results_in_order(self):
        # 32 tasks / 2 jobs -> chunk_size 4: exercises multi-task chunks.
        tasks = list(range(32))
        assert run_tasks(_square_task, tasks, jobs=2) == [
            t * t for t in tasks
        ]

    def test_chunk_size_surfaces_in_metrics(self):
        registry = MetricsRegistry()
        with observe(registry=registry):
            run_tasks(_square_task, list(range(16)), jobs=2)
        gauges = {
            row["name"]: row["value"]
            for row in registry.to_dict()["gauges"]
        }
        assert gauges["worker_chunk_size"] == task_chunk_size(16, 2)

    def test_pool_reused_across_sweeps(self):
        from repro.analysis import parallel as parallel_mod

        run_tasks(_square_task, list(range(8)), jobs=2)
        first = parallel_mod._POOL
        assert first is not None
        run_tasks(_square_task, list(range(8)), jobs=2)
        assert parallel_mod._POOL is first

    def test_pool_recreated_on_jobs_change(self):
        from repro.analysis import parallel as parallel_mod

        run_tasks(_square_task, list(range(8)), jobs=2)
        first = parallel_mod._POOL
        run_tasks(_square_task, list(range(9)), jobs=3)
        assert parallel_mod._POOL is not first


class TestRunTasks:
    def test_serial_results_in_order(self):
        assert run_tasks(_square_task, [3, 1, 4, 1, 5]) == [9, 1, 16, 1, 25]

    def test_parallel_results_in_order(self):
        tasks = list(range(9))
        assert run_tasks(_square_task, tasks, jobs=3) == [
            t * t for t in tasks
        ]

    def test_serial_equals_parallel_with_rng(self):
        seeds = list(range(6))
        serial = run_tasks(_seeded_draw_task, seeds)
        parallel = run_tasks(_seeded_draw_task, seeds, jobs=2)
        assert serial == parallel

    def test_empty_task_list(self):
        assert run_tasks(_square_task, [], jobs=4) == []


class TestSweepDeterminism:
    def test_point_bitwise_identical_across_jobs(self):
        params = _tiny_params()
        kwargs = dict(seeds=3, duration=2.0, warmup=0.5)
        serial = measure_point(params, params.tx_range, **kwargs, jobs=1)
        parallel = measure_point(params, params.tx_range, **kwargs, jobs=4)
        assert serial.measured == parallel.measured
        assert serial.predicted == parallel.predicted
        assert serial.measured_head_ratio == parallel.measured_head_ratio
        assert serial == parallel


class TestTelemetryMerge:
    def test_phase_timings_merged(self):
        timer = PhaseTimer()
        with observe(timer=timer):
            measure_point(
                _tiny_params(), 0.15, seeds=2, duration=1.0, warmup=0.2, jobs=2
            )
        phases = {p.phase: p for p in timer.report().phases}
        for phase in ("mobility", "adjacency", "link_diff"):
            assert phase in phases
            assert phases[phase].seconds > 0.0
            assert phases[phase].calls > 0

    def test_metrics_merged_with_distinct_sim_ids(self):
        registry = MetricsRegistry()
        with observe(registry=registry):
            measure_point(
                _tiny_params(), 0.15, seeds=3, duration=1.0, warmup=0.2, jobs=3
            )
        counters = registry.to_dict()["counters"]
        sims = {
            row["labels"]["sim"]
            for row in counters
            if "sim" in row["labels"]
        }
        assert len(sims) == 3  # one remapped id per worker run

    def test_traced_parallel_run_reconciles(self, tmp_path):
        trace_path = tmp_path / "parallel.jsonl"
        tracer = JsonlTracer(str(trace_path), step_every=5)
        registry = MetricsRegistry()
        with observe(tracer=tracer, registry=registry, timer=PhaseTimer()):
            measure_point(
                _tiny_params(), 0.15, seeds=2, duration=1.0, warmup=0.2, jobs=2
            )
        tracer.close()
        summary = summarize_trace(str(trace_path))
        assert summary.reconciles()
        assert len(summary.runs) == 2

    def test_merge_remaps_sim_labels(self):
        telemetry = TaskTelemetry(
            records=[
                {"event": "msg_tx", "t": 0.1, "sim": 0, "category": "hello",
                 "messages": 2, "bits": 64.0},
            ],
            phases=[("mobility", 0.5, 10)],
            metrics={
                "counters": [
                    {
                        "name": "messages_total",
                        "labels": {"sim": "0", "category": "hello"},
                        "value": 2,
                    }
                ],
                "gauges": [],
                "histograms": [],
            },
        )
        from repro.obs.tracer import CollectingTracer

        tracer = CollectingTracer()
        registry = MetricsRegistry()
        timer = PhaseTimer()
        with observe(tracer=tracer, registry=registry, timer=timer):
            merge_telemetry(telemetry, current())
        # The worker's sim 0 must NOT stay 0 — it is remapped through
        # the parent's id counter to avoid collisions.
        record = tracer.records[0]
        assert record["event"] == "msg_tx"
        counter_rows = registry.to_dict()["counters"]
        assert counter_rows[0]["labels"]["sim"] == str(record["sim"])
        phases = {p.phase: p for p in timer.report().phases}
        assert phases["mobility"].seconds == 0.5
        assert phases["mobility"].calls == 10


class TestSpanMergeDeterminism:
    """Span ids survive the worker merge with identical structure.

    Workers allocate span ids from their own process-local counters, so
    ``merge_telemetry`` remaps them through the parent's counter exactly
    like sim ids.  After normalizing ids by order of first appearance
    within each run, a ``--jobs 2`` trace must carry the same span
    content as a serial one.
    """

    _SPAN_EVENTS = (
        "span_start",
        "span_end",
        "span_link",
        "cluster_reaffiliation",
        "head_change",
        "cluster_window",
        "gateway_change",
    )

    def _span_events(self, jobs):
        from repro.obs import CollectingTracer

        tracer = CollectingTracer()
        with observe(tracer=tracer):
            measure_point(
                _tiny_params(), 0.15, seeds=2, duration=1.5, warmup=0.3,
                jobs=jobs,
            )
        by_sim: dict[int, list[dict]] = {}
        for record in tracer.records:
            if record["event"] in self._SPAN_EVENTS:
                by_sim.setdefault(record["sim"], []).append(record)
        canonical = []
        for records in by_sim.values():
            local: dict[int, int] = {}

            def rename(span_id):
                if span_id not in local:
                    local[span_id] = len(local)
                return local[span_id]

            run = []
            for record in records:
                fields = {}
                for key, value in record.items():
                    if key in ("sim", "schema"):
                        continue
                    if key in ("span", "parent", "src_span", "dst_span"):
                        value = rename(value)
                    fields[key] = value
                run.append(tuple(sorted(fields.items())))
            canonical.append(run)
        return sorted(canonical)

    def test_jobs2_trace_matches_serial_after_remap(self):
        serial = self._span_events(jobs=1)
        parallel = self._span_events(jobs=2)
        assert serial, "no span events were traced at all"
        assert any(
            dict(fields)["event"] == "span_start"
            for run in serial
            for fields in run
        )
        assert serial == parallel

    def test_merged_span_ids_globally_unique(self):
        from repro.obs import CollectingTracer

        tracer = CollectingTracer()
        with observe(tracer=tracer):
            measure_point(
                _tiny_params(), 0.15, seeds=3, duration=1.0, warmup=0.2,
                jobs=3,
            )
        starts = [r for r in tracer.records if r["event"] == "span_start"]
        ids = [r["span"] for r in starts]
        assert len(ids) == len(set(ids))
        assert len({r["sim"] for r in starts}) == 3


class TestRunHealthPropagation:
    """Workers must inherit the ambient RunHealthConfig (satellite 3)."""

    def _health_events(self, jobs):
        from repro.obs import CollectingTracer, RunHealthConfig

        tracer = CollectingTracer()
        config = RunHealthConfig(
            audit_every=0.5, strict=False, residual_window=0.5,
            residual_rtol=0.5,
        )
        with observe(tracer=tracer, health=config):
            measure_point(
                _tiny_params(), 0.15, seeds=2, duration=1.0, warmup=0.2,
                jobs=jobs,
            )
        # Group the health events by sim id, then drop the id: parallel
        # runs get remapped ids, but per-run event content must match.
        by_sim: dict[int, list[tuple]] = {}
        for record in tracer.records:
            if record["event"] not in ("invariant_audit", "residual"):
                continue
            fields = tuple(
                sorted(
                    (k, v)
                    for k, v in record.items()
                    if k not in ("sim", "schema")
                )
            )
            by_sim.setdefault(record["sim"], []).append(fields)
        return sorted(by_sim.values())

    def test_parallel_run_carries_identical_health_events(self):
        serial = self._health_events(jobs=1)
        parallel = self._health_events(jobs=2)
        assert serial  # the health layer actually ran
        assert any(
            any(dict(fields)["event"] == "invariant_audit" for fields in run)
            for run in serial
        )
        assert serial == parallel
