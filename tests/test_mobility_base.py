"""Tests for the mobility interface and the paper's models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mobility import ConstantVelocityModel, EpochRandomWaypointModel
from repro.spatial import Boundary, SquareRegion


class TestLifecycle:
    def test_requires_reset(self):
        model = ConstantVelocityModel(0.1)
        with pytest.raises(RuntimeError, match="reset"):
            model.advance(0.1)
        with pytest.raises(RuntimeError, match="reset"):
            _ = model.positions

    def test_reset_returns_initial_positions(self, unit_torus):
        model = ConstantVelocityModel(0.1)
        positions = model.reset(50, unit_torus, 0)
        assert positions.shape == (50, 2)
        assert model.n_nodes == 50
        assert model.time == 0.0

    def test_positions_read_only(self, unit_torus):
        model = ConstantVelocityModel(0.1)
        model.reset(10, unit_torus, 0)
        with pytest.raises(ValueError):
            model.positions[0, 0] = 0.5

    def test_negative_dt_rejected(self, unit_torus):
        model = ConstantVelocityModel(0.1)
        model.reset(10, unit_torus, 0)
        with pytest.raises(ValueError):
            model.advance(-0.1)

    def test_zero_dt_noop(self, unit_torus):
        model = ConstantVelocityModel(0.1)
        before = model.reset(10, unit_torus, 0).copy()
        after = model.advance(0.0)
        np.testing.assert_array_equal(before, after)
        assert model.time == 0.0

    def test_time_accumulates(self, unit_torus):
        model = ConstantVelocityModel(0.1)
        model.reset(10, unit_torus, 0)
        for _ in range(5):
            model.advance(0.25)
        assert model.time == pytest.approx(1.25)

    def test_deterministic_given_seed(self, unit_torus):
        runs = []
        for _ in range(2):
            model = ConstantVelocityModel(0.1)
            model.reset(20, unit_torus, 7)
            for _ in range(10):
                model.advance(0.1)
            runs.append(np.asarray(model.positions).copy())
        np.testing.assert_array_equal(runs[0], runs[1])

    def test_invalid_node_count(self, unit_torus):
        with pytest.raises(ValueError):
            ConstantVelocityModel(0.1).reset(0, unit_torus)


class TestConstantVelocity:
    def test_rejects_negative_speed(self):
        with pytest.raises(ValueError):
            ConstantVelocityModel(-1.0)

    def test_constant_speed_maintained(self, unit_torus):
        model = ConstantVelocityModel(0.3)
        model.reset(100, unit_torus, 1)
        speeds = np.hypot(model.velocities[:, 0], model.velocities[:, 1])
        np.testing.assert_allclose(speeds, 0.3)
        model.advance(1.0)
        speeds = np.hypot(model.velocities[:, 0], model.velocities[:, 1])
        np.testing.assert_allclose(speeds, 0.3)

    def test_straight_line_on_torus(self):
        region = SquareRegion(10.0, Boundary.TORUS)
        model = ConstantVelocityModel(1.0)
        model.reset(5, region, 2)
        start = np.asarray(model.positions).copy()
        velocity = np.asarray(model.velocities).copy()
        model.advance(0.5)
        expected, _ = region.apply_boundary(start + 0.5 * velocity)
        np.testing.assert_allclose(model.positions, expected)

    def test_headings_uniform(self, unit_torus):
        model = ConstantVelocityModel(1.0)
        model.reset(20_000, unit_torus, 3)
        angles = np.arctan2(model.velocities[:, 1], model.velocities[:, 0])
        # Mean direction vector of a uniform distribution is ~0.
        assert abs(np.mean(np.cos(angles))) < 0.02
        assert abs(np.mean(np.sin(angles))) < 0.02

    def test_reflect_boundary_flips_velocity(self):
        region = SquareRegion(1.0, Boundary.REFLECT)
        model = ConstantVelocityModel(0.4)
        model.reset(200, region, 4)
        for _ in range(50):
            positions = model.advance(0.1)
            assert np.all(region.contains(positions))
        # Speed magnitude preserved through reflections.
        speeds = np.hypot(model.velocities[:, 0], model.velocities[:, 1])
        np.testing.assert_allclose(speeds, 0.4, rtol=1e-9)

    def test_uniform_distribution_preserved(self, unit_torus):
        # The CV/BCV stationarity property the analysis depends on.
        model = ConstantVelocityModel(0.2)
        model.reset(5000, unit_torus, 5)
        for _ in range(40):
            model.advance(0.25)
        positions = np.asarray(model.positions)
        for axis in range(2):
            assert np.mean(positions[:, axis] < 0.5) == pytest.approx(0.5, abs=0.03)


class TestEpochRandomWaypoint:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            EpochRandomWaypointModel(-0.1)
        with pytest.raises(ValueError):
            EpochRandomWaypointModel(0.1, epoch=0.0)

    def test_constant_speed_between_epochs(self, unit_torus):
        model = EpochRandomWaypointModel(0.25, epoch=10.0)
        model.reset(50, unit_torus, 0)
        start = np.asarray(model.positions).copy()
        model.advance(0.5)  # well within the first epoch
        displacement = np.asarray(model.positions) - start
        # Wrap-aware displacement length equals v * dt.
        wrapped = displacement - np.round(displacement)
        lengths = np.hypot(wrapped[:, 0], wrapped[:, 1])
        np.testing.assert_allclose(lengths, 0.125, atol=1e-9)

    def test_headings_change_at_epoch(self, unit_torus):
        model = EpochRandomWaypointModel(0.2, epoch=1.0)
        model.reset(100, unit_torus, 1)
        v_before = model._velocities.copy()
        model.advance(1.5)  # crosses the epoch boundary
        assert not np.allclose(v_before, model._velocities)

    def test_headings_stable_within_epoch(self, unit_torus):
        model = EpochRandomWaypointModel(0.2, epoch=5.0)
        model.reset(100, unit_torus, 1)
        v_before = model._velocities.copy()
        model.advance(1.0)
        np.testing.assert_array_equal(v_before, model._velocities)

    def test_multi_epoch_advance(self, unit_torus):
        model = EpochRandomWaypointModel(0.2, epoch=0.3)
        model.reset(30, unit_torus, 2)
        positions = model.advance(1.0)  # spans 3 epoch boundaries
        assert np.all(unit_torus.contains(positions))
        assert model.time == pytest.approx(1.0)

    def test_uniform_distribution_preserved(self, unit_torus):
        model = EpochRandomWaypointModel(0.15, epoch=1.0)
        model.reset(5000, unit_torus, 3)
        for _ in range(30):
            model.advance(0.5)
        positions = np.asarray(model.positions)
        for axis in range(2):
            assert np.mean(positions[:, axis] < 0.5) == pytest.approx(0.5, abs=0.03)
